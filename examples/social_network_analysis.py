#!/usr/bin/env python
"""Social-network analysis: clustering coefficients, transitivity, sybil hints.

The paper's introduction motivates triangle listing with social-network
metrics: the clustering coefficient and transitivity ratio identify
high-density vertices, and anomalously *low* clustering at high degree is a
classic signal of fake ("sybil") accounts that befriend many unrelated
users.  This example computes those metrics on a LiveJournal-like analogue
graph using PDTL's per-vertex triangle counts.

Run it with:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import PDTLConfig, PDTLRunner
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.edgelist import EdgeList
from repro.graph.properties import clustering_coefficient, transitivity
from repro.utils import as_rng


def inject_sybil_accounts(graph: CSRGraph, num_sybils: int, degree: int, seed: int = 0) -> CSRGraph:
    """Add vertices that befriend many random users but close no triangles.

    Real users' friends tend to know each other (high clustering); a sybil's
    randomly harvested contacts rarely do, which is exactly the signature the
    detection step below looks for.
    """
    rng = as_rng(seed)
    n = graph.num_vertices
    edges = [graph.edge_array()]
    new_edges = []
    for s in range(num_sybils):
        sybil = n + s
        targets = rng.choice(n, size=degree, replace=False)
        for t in targets:
            new_edges.append((sybil, int(t)))
    edges.append(np.array(new_edges, dtype=np.int64))
    combined = EdgeList(np.vstack(edges), n + num_sybils)
    return CSRGraph.from_edgelist(combined)


def main() -> None:
    # A LiveJournal-like analogue: community-structured, triangle rich.
    base = load_dataset("livejournal", seed=7)
    print(f"base graph: {base.num_vertices} users, {base.num_undirected_edges} friendships")

    # Plant a handful of sybil accounts with many random friendships.
    num_sybils = 15
    graph = inject_sybil_accounts(base, num_sybils=num_sybils, degree=60, seed=3)
    sybil_ids = set(range(base.num_vertices, graph.num_vertices))

    # ------------------------------------------------------------------ #
    # Per-vertex triangle counts through the full PDTL pipeline.
    # ------------------------------------------------------------------ #
    config = PDTLConfig(num_nodes=1, procs_per_node=4, memory_per_proc="4MB")
    result = PDTLRunner(config, backend="threads").run(graph, sink_kind="per-vertex")
    triangles_per_vertex = result.per_vertex_counts
    print(f"total triangles: {result.triangles}")

    # ------------------------------------------------------------------ #
    # Clustering coefficient and transitivity (Watts–Strogatz / Newman).
    # ------------------------------------------------------------------ #
    coeffs = clustering_coefficient(graph, triangles_per_vertex)
    global_transitivity = transitivity(graph, result.triangles)
    honest_mask = np.ones(graph.num_vertices, dtype=bool)
    honest_mask[list(sybil_ids)] = False
    print(f"global transitivity          : {global_transitivity:.4f}")
    print(f"mean clustering (honest)     : {coeffs[honest_mask].mean():.4f}")
    print(f"mean clustering (sybils)     : {coeffs[~honest_mask].mean():.4f}")

    # ------------------------------------------------------------------ #
    # Rank high-degree vertices by clustering coefficient: sybils sink to
    # the bottom because their neighbourhoods close almost no triangles.
    # ------------------------------------------------------------------ #
    degrees = graph.degrees
    candidates = np.where(degrees >= 40)[0]
    ranked = sorted(candidates, key=lambda v: coeffs[v])
    flagged = ranked[: 2 * num_sybils]
    caught = sum(1 for v in flagged if v in sybil_ids)
    print(f"\nflagged the {len(flagged)} least-clustered high-degree accounts;")
    print(f"{caught}/{num_sybils} planted sybils are among them")

    print("\nlowest-clustering high-degree accounts:")
    for v in ranked[:10]:
        marker = "SYBIL" if v in sybil_ids else "     "
        print(f"  {marker} vertex {v:6d}: degree {int(degrees[v]):4d}, "
              f"triangles {int(triangles_per_vertex[v]):5d}, clustering {coeffs[v]:.4f}")


if __name__ == "__main__":
    main()
