#!/usr/bin/env python
"""Social-network analysis on the one-call analytics pipeline.

The paper's introduction motivates triangle listing with social-network
metrics: clustering coefficients and the transitivity ratio identify
high-density vertices, truss decomposition extracts cohesive cores, and
anomalously *low* clustering at high degree is a classic signal of fake
("sybil") accounts that befriend many unrelated users.

This example computes all of it with **one** call -- ``run_analytics``
runs PDTL once with the edge-support sink and derives per-vertex counts,
clustering, transitivity and edge trussness from the merged supports::

                        ┌─ total triangles
    PDTL (edge-support) ┼─ per-vertex counts ── clustering ── sybil ranking
      supports per edge ┼─ transitivity
                        └─ k-truss decomposition ── cohesive cores

Run it with:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import run_analytics
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.edgelist import EdgeList
from repro.utils import as_rng


def inject_sybil_accounts(graph: CSRGraph, num_sybils: int, degree: int, seed: int = 0) -> CSRGraph:
    """Add vertices that befriend many random users but close no triangles.

    Real users' friends tend to know each other (high clustering); a sybil's
    randomly harvested contacts rarely do, which is exactly the signature the
    detection step below looks for.
    """
    rng = as_rng(seed)
    n = graph.num_vertices
    edges = [graph.edge_array()]
    new_edges = []
    for s in range(num_sybils):
        sybil = n + s
        targets = rng.choice(n, size=degree, replace=False)
        for t in targets:
            new_edges.append((sybil, int(t)))
    edges.append(np.array(new_edges, dtype=np.int64))
    combined = EdgeList(np.vstack(edges), n + num_sybils)
    return CSRGraph.from_edgelist(combined)


def main() -> None:
    # A LiveJournal-like analogue: community-structured, triangle rich.
    base = load_dataset("livejournal", seed=7)
    print(f"base graph: {base.num_vertices} users, {base.num_undirected_edges} friendships")

    # Plant a handful of sybil accounts with many random friendships.
    num_sybils = 15
    graph = inject_sybil_accounts(base, num_sybils=num_sybils, degree=60, seed=3)
    sybil_ids = set(range(base.num_vertices, graph.num_vertices))

    # ------------------------------------------------------------------ #
    # One analytics pass: PDTL edge supports -> every derived metric.
    # ------------------------------------------------------------------ #
    result = run_analytics(
        graph,
        num_nodes=1,
        procs_per_node=4,
        memory_per_proc="4MB",
        scheduling="dynamic",
        backend="threads",
    )
    print()
    print(result.report())

    coeffs = result.clustering
    degrees = graph.degrees

    # ------------------------------------------------------------------ #
    # Cohesive cores: the max-k truss is the tightest community; sybil
    # friendships close no triangles, so their edges peel at k = 2 and
    # sybils can never reach any truss core.
    # ------------------------------------------------------------------ #
    core = result.truss.truss_subgraph(result.max_truss_k)
    core_vertices = np.nonzero(core.degrees)[0]
    print(f"\nmax-truss core (k={result.max_truss_k}): "
          f"{core_vertices.shape[0]} users, {core.num_undirected_edges} edges, "
          f"{sum(1 for v in core_vertices if int(v) in sybil_ids)} sybils inside")
    sybil_edge_mask = np.isin(result.edges, list(sybil_ids)).any(axis=1)
    if sybil_edge_mask.any():
        print(f"max trussness of a sybil edge : "
              f"{int(result.truss.trussness[sybil_edge_mask].max())} (honest max: "
              f"{int(result.truss.trussness[~sybil_edge_mask].max())})")

    # ------------------------------------------------------------------ #
    # Clustering-based sybil ranking (Watts–Strogatz / Newman metrics).
    # ------------------------------------------------------------------ #
    honest_mask = np.ones(graph.num_vertices, dtype=bool)
    honest_mask[list(sybil_ids)] = False
    print(f"\nglobal transitivity          : {result.transitivity:.4f}")
    print(f"mean clustering (honest)     : {coeffs[honest_mask].mean():.4f}")
    print(f"mean clustering (sybils)     : {coeffs[~honest_mask].mean():.4f}")

    # Rank high-degree vertices by clustering coefficient: sybils sink to
    # the bottom because their neighbourhoods close almost no triangles.
    candidates = np.where(degrees >= 40)[0]
    ranked = sorted(candidates, key=lambda v: coeffs[v])
    flagged = ranked[: 2 * num_sybils]
    caught = sum(1 for v in flagged if v in sybil_ids)
    print(f"\nflagged the {len(flagged)} least-clustered high-degree accounts;")
    print(f"{caught}/{num_sybils} planted sybils are among them")

    print("\nlowest-clustering high-degree accounts:")
    for v in ranked[:10]:
        marker = "SYBIL" if v in sybil_ids else "     "
        print(f"  {marker} vertex {v:6d}: degree {int(degrees[v]):4d}, "
              f"triangles {int(result.per_vertex_counts[v]):5d}, "
              f"clustering {coeffs[v]:.4f}")


if __name__ == "__main__":
    main()
