#!/usr/bin/env python
"""External-memory workflow: from a raw unsorted edge dump to triangle counts.

The paper assumes graphs arrive in its sorted binary format, and notes
(Theorem IV.2) that an unsorted input costs an extra external sort before
orientation.  This example exercises that full ingestion path on a
deliberately tiny memory budget, and shows the block-level I/O accounting
the external-memory model is built on:

  raw unsorted edges  --external sort-->  sorted edge file
                      --symmetrise/store-->  degree + adjacency files
                      --orient-->  oriented graph
                      --MGT (several memory windows)-->  triangle count

Run it with:  python examples/external_memory_workflow.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.analysis.cost_model import estimate_mgt_cost
from repro.core.config import PDTLConfig
from repro.core.mgt import MGTWorker
from repro.core.orientation import orient_graph
from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import external_sort_edges, read_edge_file, write_edge_file
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import rmat
from repro.utils import format_size


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="pdtl_extmem_")
    device = BlockDevice(workdir, block_size=4096)
    print(f"simulated disk at {device.root} (block size {device.block_size} bytes)")

    # ------------------------------------------------------------------ #
    # 1. A raw, unsorted, bidirectional edge dump lands on disk.
    # ------------------------------------------------------------------ #
    edges = rmat(scale=11, edge_factor=12, seed=5).symmetrized().shuffled(seed=9)
    write_edge_file(device, "raw_edges.bin", edges.edges)
    print(f"raw edge dump : {edges.num_edges} directed edges "
          f"({format_size(device.file_size('raw_edges.bin'))}), unsorted")

    # ------------------------------------------------------------------ #
    # 2. External merge sort under a 64 KiB memory cap (forces many runs).
    # ------------------------------------------------------------------ #
    sort_result = external_sort_edges(
        device, "raw_edges.bin", "sorted_edges.bin", memory_bytes=64 * 1024
    )
    print(f"external sort : {sort_result.num_runs} runs, "
          f"{sort_result.merge_passes} merge pass(es)")

    # ------------------------------------------------------------------ #
    # 3. Store in the degree/adjacency binary format and orient.
    # ------------------------------------------------------------------ #
    sorted_edges = EdgeList(read_edge_file(device, "sorted_edges.bin"), edges.num_vertices)
    graph = CSRGraph.from_edgelist(sorted_edges, symmetrize=False)
    graph_file = write_graph(device, "graph", graph)
    orientation = orient_graph(graph_file, num_workers=2)
    print(f"oriented graph: {orientation.num_edges} edges, "
          f"d*_max = {orientation.max_out_degree}")

    # ------------------------------------------------------------------ #
    # 4. Run MGT with a tiny per-processor budget so several memory windows
    #    are needed, and compare the measured I/O with Theorem IV.2.
    # ------------------------------------------------------------------ #
    config = PDTLConfig(memory_per_proc="96KB", block_size=4096)
    worker = MGTWorker(orientation.oriented, config)
    result = worker.run()
    estimate = estimate_mgt_cost(orientation.oriented, config)

    print(f"\nMGT under a {format_size(config.memory_per_proc)} budget:")
    print(f"  triangles          : {result.triangles}")
    print(f"  memory windows (h) : {result.iterations} "
          f"(model predicts {estimate.iterations})")
    print(f"  peak memory        : {format_size(result.peak_memory_bytes)}")
    print(f"  blocks read        : {result.io_stats.blocks_read} "
          f"(model's dominant term ≈ {estimate.io_blocks:.0f})")
    print(f"  sorted intersections: {result.intersections}")

    print("\ndevice-level I/O counters (whole workflow):")
    stats = device.stats
    print(f"  bytes read    : {format_size(stats.bytes_read)}")
    print(f"  bytes written : {format_size(stats.bytes_written)}")
    print(f"  blocks        : {stats.total_blocks} "
          f"({stats.sequential_reads} sequential / {stats.random_reads} random reads)")
    print(f"  modelled time : {stats.device_seconds * 1000:.1f} ms on a 500 MB/s SSD")


if __name__ == "__main__":
    main()
