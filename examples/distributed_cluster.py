#!/usr/bin/env python
"""Distributed scaling study on a simulated cluster (the Figure 4 workflow).

This example reproduces, at laptop scale, the experiment behind the paper's
Figure 4 and Table III: take a large scale-free graph, run PDTL on 1-4
simulated machines with a fixed number of cores per machine, and report

* total time (orientation + copy + calculation, per the paper's convention),
* average graph-copy time per remote node,
* the per-node CPU / I/O split (Figures 6-8), and
* the speed-up over single-core MGT (Figure 11).

Run it with:  python examples/distributed_cluster.py
"""

from __future__ import annotations

from repro import PDTLConfig, PDTLRunner
from repro.baselines.mgt_single import run_single_core_mgt
from repro.graph.datasets import load_dataset
from repro.utils import format_seconds, format_size


def main() -> None:
    graph = load_dataset("rmat-12", seed=11)
    print(
        f"dataset rmat-12 (analogue of the paper's RMAT-28): "
        f"{graph.num_vertices} vertices, {graph.num_undirected_edges} edges"
    )

    # Baseline: single-core external-memory MGT, as in Figures 10/11.
    baseline = run_single_core_mgt(graph, memory_per_proc="2MB")
    print(
        f"\nsingle-core MGT baseline: {baseline.triangles} triangles in "
        f"{format_seconds(baseline.total_seconds)} "
        f"(orientation {format_seconds(baseline.orientation_seconds)})"
    )

    cores_per_node = 4
    print(f"\nPDTL with {cores_per_node} cores/node, 1 MiB of memory per core:")
    header = f"{'nodes':>5} | {'triangles':>10} | {'total':>10} | {'calc':>10} | {'avg copy':>9} | {'speedup':>7}"
    print(header)
    print("-" * len(header))

    for num_nodes in (1, 2, 3, 4):
        config = PDTLConfig(
            num_nodes=num_nodes,
            procs_per_node=cores_per_node,
            memory_per_proc="1MB",
            load_balanced=True,
        )
        result = PDTLRunner(config, backend="threads").run(graph)
        speedup = baseline.calc_seconds / max(result.calc_seconds, 1e-9)
        print(
            f"{num_nodes:>5} | {result.triangles:>10} | "
            f"{format_seconds(result.total_seconds):>10} | "
            f"{format_seconds(result.calc_seconds):>10} | "
            f"{format_seconds(result.average_copy_seconds):>9} | "
            f"{speedup:>6.1f}x"
        )

    # Per-node breakdown of the largest configuration (Figures 7/8 layout).
    config = PDTLConfig(num_nodes=4, procs_per_node=cores_per_node, memory_per_proc="1MB")
    result = PDTLRunner(config, backend="threads").run(graph)
    print("\nper-node breakdown at 4 nodes:")
    for row in result.node_breakdown():
        print(
            f"  node {int(row['node'])}: cpu {format_seconds(row['cpu_seconds'])}, "
            f"io {format_seconds(row['io_seconds'])}, "
            f"copy {format_seconds(row['copy_seconds'])}, "
            f"received {format_size(row['bytes_received'])}"
        )
    print(f"\nnode-imbalance ratio (max/min calc time): {result.metrics.imbalance_ratio():.2f}")
    print(f"total network traffic: {format_size(result.network_bytes)}")


if __name__ == "__main__":
    main()
