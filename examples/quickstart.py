#!/usr/bin/env python
"""Quickstart: count and list triangles with PDTL.

This example walks through the minimal public API:

1. build (or load) an undirected graph,
2. count its triangles with a single call,
3. re-run on a simulated multi-node cluster and inspect the result's
   per-node resource breakdown,
4. list the actual triangles of a small graph.

Run it with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PDTLConfig, PDTLRunner, count_triangles, list_triangles
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, rmat
from repro.utils import format_seconds, format_size


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a graph.  Any (m, 2) edge iterable works; here we use the
    #    R-MAT generator the paper's synthetic datasets come from.
    # ------------------------------------------------------------------ #
    edges = rmat(scale=9, edge_factor=8, seed=42)
    graph = CSRGraph.from_edgelist(edges)
    print(f"graph: {graph.num_vertices} vertices, "
          f"{graph.num_undirected_edges} edges, max degree {graph.max_degree}")

    # ------------------------------------------------------------------ #
    # 2. Count triangles with the defaults (single node, single core).
    # ------------------------------------------------------------------ #
    result = count_triangles(graph)
    print(f"\nsingle-core PDTL: {result.triangles} triangles "
          f"(orientation {format_seconds(result.orientation_seconds)}, "
          f"calculation {format_seconds(result.calc_seconds)})")

    # ------------------------------------------------------------------ #
    # 3. The same count on a simulated 2-node x 4-core cluster with only
    #    1 MiB of memory per core -- PDTL is an external-memory algorithm,
    #    so tiny memory budgets still work.
    # ------------------------------------------------------------------ #
    config = PDTLConfig(
        num_nodes=2,
        procs_per_node=4,
        memory_per_proc="1MB",
        load_balanced=True,
    )
    runner = PDTLRunner(config, backend="threads")
    distributed = runner.run(graph)
    print(f"\ndistributed PDTL ({config.describe()}):")
    print(f"  triangles        : {distributed.triangles}")
    print(f"  network traffic  : {format_size(distributed.network_bytes)}")
    print(f"  avg copy time    : {format_seconds(distributed.average_copy_seconds)}")
    print("  per-node breakdown:")
    for row in distributed.node_breakdown():
        print(
            f"    node {int(row['node'])}: "
            f"cpu {format_seconds(row['cpu_seconds'])}, "
            f"io {format_seconds(row['io_seconds'])}, "
            f"{int(row['triangles'])} triangles from {int(row['workers'])} workers"
        )

    # ------------------------------------------------------------------ #
    # 4. Triangle *listing* on a small graph: every triangle is reported as
    #    (cone vertex, v, w) in the paper's cone/pivot orientation.
    # ------------------------------------------------------------------ #
    k5 = CSRGraph.from_edgelist(complete_graph(5))
    listing = list_triangles(k5)
    print(f"\nK5 contains {listing.triangles} triangles:")
    for triangle in sorted(listing.triangle_list):
        print(f"  cone={triangle.cone}  pivot=({triangle.v}, {triangle.w})")


if __name__ == "__main__":
    main()
