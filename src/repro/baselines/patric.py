"""A PATRIC-style vertex-partitioning triangle counter.

PATRIC (Arifuzzaman et al., CIKM'13) is an MPI program: vertices are
partitioned across processors, each processor stores the adjacency lists of
its *core* vertices **plus** the adjacency lists of every neighbour of a
core vertex (the overlapping "surrogate" region), and then counts the
triangles whose lowest-ordered vertex is a core vertex entirely locally.
The paper's two criticisms, both reproduced here, are that

* each partition (core + surrogate adjacency) must fit in memory -- the
  overlap means total memory across processors can far exceed ``|E|``; and
* the partitioning/exchange phase generates substantial message traffic.

The counting itself is exact; partitions that exceed the per-processor
budget flag ``oom`` in the result.  Degree-based load balancing (one of
PATRIC's contributions) is approximated by partitioning vertices so the sum
of ``d(v)²`` per partition is even, which is the surrogate-size proxy the
original paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.orientation import orient_csr
from repro.errors import OutOfMemoryError
from repro.externalmem.memory import MemoryBudget
from repro.graph.csr import CSRGraph
from repro.utils import Timer, even_splits, parse_size

__all__ = ["PatricResult", "run_patric"]

_ITEM_BYTES = 8


@dataclass(frozen=True)
class PatricResult:
    """Outcome of a simulated PATRIC run."""

    triangles: int | None
    oom: bool
    setup_seconds: float
    calc_seconds: float
    num_processors: int
    peak_memory_bytes: int
    message_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + self.calc_seconds

    @property
    def succeeded(self) -> bool:
        return not self.oom


def run_patric(
    graph: CSRGraph,
    num_processors: int = 4,
    memory_per_processor: int | str = 256 * 1024 * 1024,
) -> PatricResult:
    """Simulate a PATRIC triangle count with ``num_processors`` MPI ranks."""
    if graph.directed:
        raise ValueError("run_patric expects an undirected graph")
    if num_processors <= 0:
        raise ValueError("num_processors must be positive")
    memory = parse_size(memory_per_processor)

    setup_timer = Timer().start()
    oriented = orient_csr(graph)
    degrees = graph.degrees.astype(np.float64)
    # degree-squared balanced contiguous vertex partitions (PATRIC's
    # surrogate-cost load balancing)
    weights = degrees**2 + 1.0
    vertex_ranges = even_splits(weights, num_processors)

    indptr, indices = oriented.indptr, oriented.indices
    budgets = [MemoryBudget(memory) for _ in range(num_processors)]
    peak = 0
    message_bytes = 0
    oom = False

    partitions: list[tuple[int, int]] = []
    try:
        for rank, (lo, hi) in enumerate(vertex_ranges):
            partitions.append((lo, hi))
            core_vertices = np.arange(lo, hi, dtype=np.int64)
            core_adj_entries = int(
                (graph.indptr[hi] - graph.indptr[lo])
            )  # undirected adjacency of the core
            # surrogate region: adjacency of every neighbour of a core vertex
            if core_adj_entries:
                neighbours = np.unique(graph.indices[graph.indptr[lo] : graph.indptr[hi]])
            else:
                neighbours = np.empty(0, dtype=np.int64)
            surrogate_entries = int(graph.degrees[neighbours].sum()) if neighbours.size else 0
            budget = budgets[rank]
            budget.allocate("core", core_adj_entries * _ITEM_BYTES)
            budget.allocate("surrogate", surrogate_entries * _ITEM_BYTES)
            budget.allocate("vertices", int(core_vertices.shape[0]) * _ITEM_BYTES)
            # the surrogate adjacency has to be shipped from the owners
            message_bytes += surrogate_entries * _ITEM_BYTES
            peak = max(peak, budget.peak_usage)
    except OutOfMemoryError:
        oom = True
    setup_timer.stop()

    if oom:
        return PatricResult(
            triangles=None,
            oom=True,
            setup_seconds=setup_timer.elapsed,
            calc_seconds=0.0,
            num_processors=num_processors,
            peak_memory_bytes=peak,
            message_bytes=message_bytes,
        )

    # --- local counting: each rank counts triangles whose cone vertex is core,
    # whole core ranges per kernel call (the rank's surrogate region holds
    # every N⁺(v) the gather touches, so the counting stays partition-local)
    calc_timer = Timer().start()
    total = 0
    for lo, hi in partitions:
        total += kernels.count_cone_range(indptr, indices, lo, hi)
    calc_timer.stop()

    return PatricResult(
        triangles=total,
        oom=False,
        setup_seconds=setup_timer.elapsed,
        calc_seconds=calc_timer.elapsed,
        num_processors=num_processors,
        peak_memory_bytes=peak,
        message_bytes=message_bytes,
    )
