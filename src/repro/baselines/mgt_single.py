"""Single-core MGT: the external-memory baseline of Figures 10 and 11.

Section V-E1 of the paper compares PDTL against "our implementation of
MGT" -- that is, PDTL restricted to one node and one processor, without
the load-balancing or replication machinery.  This wrapper runs exactly
that configuration over an on-disk graph and measures orientation and
calculation time separately, so the speed-up curves
``speedup = MGT_time / PDTL_time`` can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.config import PDTLConfig
from repro.core.mgt import MGTResult, MGTWorker
from repro.core.orientation import orient_graph
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import GraphFile, write_graph
from repro.graph.csr import CSRGraph
from repro.utils import Timer

__all__ = ["MGTBaselineResult", "run_single_core_mgt"]


@dataclass(frozen=True)
class MGTBaselineResult:
    """Outcome of a single-core MGT run (orientation + calculation)."""

    triangles: int
    orientation_seconds: float
    calc_seconds: float
    cpu_seconds: float
    io_seconds: float
    iterations: int
    mgt: MGTResult

    @property
    def total_seconds(self) -> float:
        return self.orientation_seconds + self.calc_seconds


def run_single_core_mgt(
    graph: CSRGraph | GraphFile,
    memory_per_proc: int | str = 64 * 1024 * 1024,
    block_size: int = 4096,
    device: BlockDevice | None = None,
    storage_root: str | Path | None = None,
) -> MGTBaselineResult:
    """Run single-core, single-node MGT on an undirected graph.

    ``graph`` may be an in-memory CSR graph (written to a scratch device
    first) or an on-disk undirected graph.  Orientation runs sequentially,
    matching the naive baseline the paper's multicore orientation is
    compared against.
    """
    import tempfile

    config = PDTLConfig(
        num_nodes=1,
        procs_per_node=1,
        memory_per_proc=memory_per_proc,
        block_size=block_size,
        load_balanced=False,
        parallel_orientation=False,
    )

    tempdir: tempfile.TemporaryDirectory | None = None
    try:
        if isinstance(graph, GraphFile):
            source = graph
        else:
            if device is None:
                if storage_root is not None:
                    device = BlockDevice(storage_root, block_size=block_size)
                else:
                    tempdir = tempfile.TemporaryDirectory(prefix="mgt_single_")
                    device = BlockDevice(tempdir.name, block_size=block_size)
            source = write_graph(device, "mgt_input", graph)

        orientation = orient_graph(source, num_workers=1, parallel=False)
        calc_timer = Timer().start()
        worker = MGTWorker(orientation.oriented, config)
        result = worker.run()
        calc_timer.stop()

        return MGTBaselineResult(
            triangles=result.triangles,
            orientation_seconds=orientation.elapsed_seconds,
            calc_seconds=result.cpu_seconds + result.io_seconds,
            cpu_seconds=result.cpu_seconds,
            io_seconds=result.io_seconds,
            iterations=result.iterations,
            mgt=result,
        )
    finally:
        if tempdir is not None:
            tempdir.cleanup()
