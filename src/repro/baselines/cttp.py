"""A CTTP-style MapReduce-round triangle counter.

CTTP (Park et al., CIKM'14) counts triangles with a constant number of
MapReduce rounds; the key practical observation the paper makes about the
whole MapReduce family is that the *intermediate shuffle data* (open
wedges emitted by the mappers) dwarfs the input and makes the approach
uncompetitive: "CTTP takes 2× longer on the Twitter dataset using 40 nodes
compared to a single-core MGT."

The re-implementation executes the canonical two-round scheme:

* **round 1** -- map each vertex to the set of *wedges* (pairs of oriented
  out-neighbours) it closes as a cone vertex; the shuffle volume is the
  total number of wedges, which is recorded as ``shuffle_bytes``;
* **round 2** -- join each wedge ``(v, w)`` against the edge set; a wedge
  whose closing edge exists contributes one triangle.

Counts are exact; the point of the baseline is its shuffle-volume and
round-structure accounting, which the "other frameworks" benchmark compares
against PDTL's network traffic on the same graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.orientation import orient_csr
from repro.graph.csr import CSRGraph
from repro.utils import Timer

__all__ = ["CTTPResult", "run_cttp"]

_WEDGE_BYTES = 24  # (cone, v, w) as three int64 ids on the wire


@dataclass(frozen=True)
class CTTPResult:
    """Outcome of a simulated CTTP (MapReduce) run."""

    triangles: int
    rounds: int
    map_seconds: float
    reduce_seconds: float
    shuffle_bytes: int
    num_wedges: int

    @property
    def total_seconds(self) -> float:
        return self.map_seconds + self.reduce_seconds


def run_cttp(graph: CSRGraph, num_reducers: int = 4) -> CTTPResult:
    """Simulate a two-round MapReduce triangle count on ``graph``."""
    if graph.directed:
        raise ValueError("run_cttp expects an undirected graph")
    if num_reducers <= 0:
        raise ValueError("num_reducers must be positive")

    oriented = orient_csr(graph)
    indptr, indices = oriented.indptr, oriented.indices

    # ---- round 1: emit wedges -----------------------------------------------------
    # Vertices are grouped by out-degree so each group's out-lists stack
    # into one rectangular matrix and a single ``triu_indices`` fan-out
    # emits every wedge of the group -- one numpy call per distinct degree
    # instead of one Python iteration per vertex.
    map_timer = Timer().start()
    degrees = np.diff(indptr).astype(np.int64)
    wedge_v: list[np.ndarray] = []
    wedge_w: list[np.ndarray] = []
    for d in np.unique(degrees):
        d = int(d)
        if d < 2:
            continue
        vertices = np.nonzero(degrees == d)[0]
        lists, _ = kernels.segment_gather(
            indices, indptr[vertices], np.full(vertices.shape[0], d, dtype=np.int64)
        )
        matrix = lists.reshape(vertices.shape[0], d)
        iu, iw = np.triu_indices(d, k=1)
        wedge_v.append(matrix[:, iu].reshape(-1))
        wedge_w.append(matrix[:, iw].reshape(-1))
    if wedge_v:
        all_v = np.concatenate(wedge_v)
        all_w = np.concatenate(wedge_w)
    else:
        all_v = np.empty(0, dtype=np.int64)
        all_w = np.empty(0, dtype=np.int64)
    num_wedges = int(all_v.shape[0])
    shuffle_bytes = num_wedges * _WEDGE_BYTES
    map_timer.stop()

    # ---- round 2: join wedges against the edge set -----------------------------------
    reduce_timer = Timer().start()
    # partition wedges across reducers by hash of the closing edge, then each
    # reducer probes the oriented adjacency for (v, w) -- all of its wedges
    # in one packed-key membership batch.  The closing edge is stored once
    # in G*, oriented from the ≺-smaller endpoint, so both directions are
    # probed.
    total = 0
    if num_wedges:
        n = oriented.num_vertices
        edge_keys = kernels.csr_packed_keys(indptr, indices)
        reducer_of = (all_v * 1000003 + all_w) % num_reducers
        for r in range(num_reducers):
            mask = reducer_of == r
            vs = all_v[mask]
            ws = all_w[mask]
            closed = kernels.sorted_membership(
                edge_keys, kernels.packed_keys(vs, ws, n)
            ) | kernels.sorted_membership(edge_keys, kernels.packed_keys(ws, vs, n))
            total += int(np.count_nonzero(closed))
    reduce_timer.stop()

    return CTTPResult(
        triangles=total,
        rounds=2,
        map_seconds=map_timer.elapsed,
        reduce_seconds=reduce_timer.elapsed,
        shuffle_bytes=shuffle_bytes,
        num_wedges=num_wedges,
    )
