"""Pre-vectorisation reference implementations, kept for equivalence testing.

When the per-vertex Python loops of the baselines were rewritten onto
:mod:`repro.core.kernels`, the original interpreted loops moved here
verbatim.  They are deliberately *slow* -- one Python bytecode dispatch per
adjacency entry -- which makes them useful twice over:

* the golden equivalence suite and the CI perf-smoke job pin every
  vectorised path against them (any count divergence fails loudly);
* the ``benchmarks/perf`` harness times them as the "before" leg of the
  before/after speedup tables recorded in ``BENCH_pdtl.json``.

Nothing in the library's production paths calls these functions.
"""

from __future__ import annotations

import numpy as np

from repro.core.orientation import orient_csr
from repro.graph.csr import CSRGraph

__all__ = [
    "count_cone_range_scalar",
    "forward_count_scalar",
    "edge_intersections_scalar",
]


def count_cone_range_scalar(
    indptr: np.ndarray, indices: np.ndarray, lo: int, hi: int
) -> int:
    """The original per-vertex counting loop: ``Σ |N⁺(u) ∩ N⁺(v)|`` for
    ``u ∈ [lo, hi)``, ``v ∈ N⁺(u)``, one ``searchsorted`` per pair."""
    total = 0
    for u in range(lo, hi):
        out_u = indices[indptr[u] : indptr[u + 1]]
        if out_u.shape[0] == 0:
            continue
        for v in out_u:
            out_v = indices[indptr[v] : indptr[v + 1]]
            if out_v.shape[0] == 0:
                continue
            pos = np.searchsorted(out_u, out_v)
            pos = np.minimum(pos, out_u.shape[0] - 1)
            total += int(np.count_nonzero(out_u[pos] == out_v))
    return total


def forward_count_scalar(graph: CSRGraph) -> int:
    """The pre-refactor compact-forward triangle count (scalar outer loops)."""
    oriented = graph if graph.directed else orient_csr(graph)
    return count_cone_range_scalar(
        oriented.indptr, oriented.indices, 0, oriented.num_vertices
    )


def edge_intersections_scalar(
    indptr: np.ndarray, indices: np.ndarray, us: np.ndarray, vs: np.ndarray
) -> int:
    """The original per-edge intersection loop (PowerGraph's gather/apply)."""
    total = 0
    for u, v in zip(us, vs):
        out_u = indices[indptr[u] : indptr[u + 1]]
        out_v = indices[indptr[v] : indptr[v + 1]]
        if out_u.shape[0] == 0 or out_v.shape[0] == 0:
            continue
        pos = np.searchsorted(out_u, out_v)
        pos = np.minimum(pos, out_u.shape[0] - 1)
        total += int(np.count_nonzero(out_u[pos] == out_v))
    return total
