"""Baseline triangle-counting systems PDTL is compared against.

The paper's evaluation (section V-E) compares PDTL with the single-core
MGT baseline, OPT, PowerGraph, PATRIC and CTTP.  None of those systems'
binaries are available to this reproduction (and several were closed
source even at publication time), so each is re-implemented here as a
working counter that follows the *algorithmic family* of the original:

* :mod:`~repro.baselines.inmemory` -- textbook node-iterator and
  compact-forward counters; the correctness reference for every test.
* :mod:`~repro.baselines.mgt_single` -- single-core external-memory MGT
  (PDTL with ``N = P = 1``), the baseline of Figures 10/11.
* :mod:`~repro.baselines.powergraph` -- a vertex-program (GAS) counter with
  per-machine partition + ghost replication and strict memory accounting;
  runs out of memory on large graphs exactly the way Table VI's "F"
  entries do.
* :mod:`~repro.baselines.patric` -- an MPI-style vertex-partitioning
  counter with overlapping adjacency storage and message passing.
* :mod:`~repro.baselines.opt` -- a two-phase (database creation +
  calculation) single-machine counter in the spirit of OPT.
* :mod:`~repro.baselines.cttp` -- a MapReduce-round wedge-join counter that
  materialises its intermediate shuffle data, reproducing the "too much
  intermediate networking data" behaviour the paper cites.

All of them return a result object exposing ``triangles`` plus the
setup/calculation/memory/traffic figures the benchmark tables need.
"""

from repro.baselines.inmemory import (
    forward_count,
    node_iterator_count,
    per_vertex_triangle_counts,
    reference_triangle_count,
)
from repro.baselines.mgt_single import MGTBaselineResult, run_single_core_mgt
from repro.baselines.powergraph import PowerGraphResult, run_powergraph
from repro.baselines.patric import PatricResult, run_patric
from repro.baselines.opt import OPTResult, run_opt
from repro.baselines.cttp import CTTPResult, run_cttp

__all__ = [
    "node_iterator_count",
    "forward_count",
    "per_vertex_triangle_counts",
    "reference_triangle_count",
    "run_single_core_mgt",
    "MGTBaselineResult",
    "run_powergraph",
    "PowerGraphResult",
    "run_patric",
    "PatricResult",
    "run_opt",
    "OPTResult",
    "run_cttp",
    "CTTPResult",
]
