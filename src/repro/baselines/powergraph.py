"""A PowerGraph-style vertex-program triangle counter with memory accounting.

PowerGraph (Gonzalez et al., OSDI'12) executes gather-apply-scatter vertex
programs over a vertex-cut partitioning: every machine holds a set of
edges plus *replicas* ("mirrors") of every vertex incident to them, and the
triangle-counting program ships each vertex's neighbour list to the
machines holding its edges.  Two consequences matter for the paper's
comparison (section V-E3, Table VI):

* each machine must hold its whole partition -- edges plus the neighbour
  lists gathered onto them -- **in memory**; with natural graphs the
  per-machine footprint grows with ``|E|/N`` *plus* the replication factor,
  so on large graphs the system exhausts memory (the "F" entries) even when
  PDTL runs happily in a fraction of the RAM;
* the setup (ingress/partitioning) phase is expensive relative to PDTL's
  orientation (Table II).

This re-implementation follows that structure faithfully: edges are
hash-partitioned across machines, per-machine memory is charged for the
local edges, the mirror vertex set, and the gathered neighbour lists, and
an :class:`~repro.errors.OutOfMemoryError` propagates as
``oom = True`` in the result instead of a count.  The actual counting uses
the same gather-intersect identity the real vertex program uses, so the
returned counts are exact whenever the run fits in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.orientation import orient_csr
from repro.errors import OutOfMemoryError
from repro.externalmem.memory import MemoryBudget
from repro.graph.csr import CSRGraph
from repro.utils import Timer, parse_size

__all__ = ["PowerGraphResult", "run_powergraph"]

_ITEM_BYTES = 8
#: replication overhead per mirror vertex (vertex data + program state), a
#: coarse stand-in for PowerGraph's per-replica bookkeeping.
_MIRROR_BYTES = 64


@dataclass(frozen=True)
class PowerGraphResult:
    """Outcome of a simulated PowerGraph triangle-count run."""

    triangles: int | None
    oom: bool
    setup_seconds: float
    calc_seconds: float
    num_machines: int
    peak_memory_bytes: int
    replication_factor: float
    network_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + self.calc_seconds

    @property
    def succeeded(self) -> bool:
        return not self.oom


def run_powergraph(
    graph: CSRGraph,
    num_machines: int = 1,
    memory_per_machine: int | str = 256 * 1024 * 1024,
    seed: int = 0,
) -> PowerGraphResult:
    """Simulate a PowerGraph triangle count on ``num_machines`` machines.

    Returns a :class:`PowerGraphResult`; when the per-machine memory budget
    is exceeded the result has ``oom=True`` and ``triangles=None`` (the
    paper's "F"), mirroring how the real system aborts rather than spills
    to disk.
    """
    if graph.directed:
        raise ValueError("run_powergraph expects an undirected graph")
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")
    memory = parse_size(memory_per_machine)

    setup_timer = Timer().start()
    oriented = orient_csr(graph)
    sources = oriented.edge_sources()
    destinations = oriented.indices
    # vertex-cut ingress: hash-partition the oriented edges across machines
    rng = np.random.default_rng(seed)
    salt = int(rng.integers(1, 1 << 30))
    owners = ((sources * 2654435761 + destinations + salt) % num_machines).astype(
        np.int64
    )
    budgets = [MemoryBudget(memory) for _ in range(num_machines)]
    peak = 0
    total_mirrors = 0
    network_bytes = 0
    oom = False

    per_machine_edges: list[np.ndarray] = []
    try:
        for machine in range(num_machines):
            mask = owners == machine
            local_src = sources[mask]
            local_dst = destinations[mask]
            local_edges = np.stack([local_src, local_dst], axis=1)
            per_machine_edges.append(local_edges)
            mirrors = np.union1d(local_src, local_dst)
            total_mirrors += int(mirrors.shape[0])
            budget = budgets[machine]
            budget.allocate("edges", local_edges.nbytes)
            budget.allocate("mirrors", int(mirrors.shape[0]) * _MIRROR_BYTES)
            # the gather phase keeps, for every mirror vertex, the neighbour
            # ids collected from this machine's local edges (each local edge
            # contributes its two endpoints' gather lists once)
            gather_bytes = 2 * int(local_edges.shape[0]) * _ITEM_BYTES
            budget.allocate("gather", gather_bytes)
            network_bytes += gather_bytes + int(mirrors.shape[0]) * _MIRROR_BYTES
            peak = max(peak, budget.peak_usage)
    except OutOfMemoryError:
        oom = True
    setup_timer.stop()

    replication = (
        total_mirrors / max(graph.num_vertices, 1) if graph.num_vertices else 0.0
    )

    if oom:
        return PowerGraphResult(
            triangles=None,
            oom=True,
            setup_seconds=setup_timer.elapsed,
            calc_seconds=0.0,
            num_machines=num_machines,
            peak_memory_bytes=peak,
            replication_factor=replication,
            network_bytes=network_bytes,
        )

    # --- gather/apply: for every oriented local edge (u, v), count the
    # intersection of the two out-neighbour lists (exact, like the real
    # triangle_count vertex program over an oriented graph).  A machine's
    # vertex-cut edges are not a contiguous cone range, so membership is
    # probed against the packed keys of the whole oriented graph, one
    # kernel call per machine instead of one Python iteration per edge.
    calc_timer = Timer().start()
    indptr, indices = oriented.indptr, oriented.indices
    csr_keys = kernels.csr_packed_keys(indptr, indices)
    total = 0
    for local_edges in per_machine_edges:
        if local_edges.shape[0] == 0:
            continue
        total += kernels.edge_intersections(
            indptr, indices, local_edges[:, 0], local_edges[:, 1], csr_keys=csr_keys
        )
    calc_timer.stop()

    return PowerGraphResult(
        triangles=total,
        oom=False,
        setup_seconds=setup_timer.elapsed,
        calc_seconds=calc_timer.elapsed,
        num_machines=num_machines,
        peak_memory_bytes=peak,
        replication_factor=replication,
        network_bytes=network_bytes,
    )
