"""An OPT-style two-phase (database creation + calculation) counter.

OPT (Kim et al., SIGMOD'14) is a single-machine, disk-based system that
first builds an on-disk *database* -- a degree-sorted, indexed re-encoding
of the graph -- and then streams it with overlapped I/O and multi-core CPU
parallelism.  The paper measures the two phases separately (Table V,
Figure 12) and finds the database-creation phase far more expensive than
PDTL's orientation, while the calculation phases are comparable (PDTL up to
2× faster).

The re-implementation keeps that two-phase structure:

* **database creation** sorts the graph by the degree order, re-labels the
  vertices, writes the re-encoded graph to the device (all through the
  block layer, so it pays real scan + sort I/O), and builds a per-vertex
  index -- strictly more work than PDTL's filter-only orientation, which is
  what makes it slower in the same proportion;
* **calculation** splits the oriented edge set across ``num_threads``
  workers, streams the on-disk database back through the block layer (OPT
  is a disk-based system: every run re-reads the database with overlapped
  I/O) and counts with the same sorted-intersection kernel the other
  baselines use (exact counts).  ``calc_seconds`` is the measured compute
  time plus the *modelled* device time of the database scan -- the same
  cpu-plus-modelled-I/O convention PDTL's ``calc_seconds`` uses, so the
  Table V / Figure 12 comparisons stay like for like.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import kernels
from repro.core.orientation import orient_csr
from repro.externalmem.blockio import BlockDevice
from repro.graph.csr import CSRGraph
from repro.utils import Timer, chunk_ranges, parse_size

__all__ = ["OPTResult", "run_opt"]


@dataclass(frozen=True)
class OPTResult:
    """Outcome of a simulated OPT run (two measured phases)."""

    triangles: int
    database_seconds: float
    calc_seconds: float
    num_threads: int
    database_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.database_seconds + self.calc_seconds


def run_opt(
    graph: CSRGraph,
    num_threads: int = 1,
    memory: int | str = 256 * 1024 * 1024,
    device: BlockDevice | None = None,
    storage_root: str | Path | None = None,
) -> OPTResult:
    """Simulate an OPT triangle count on a single machine.

    ``memory`` is accepted for interface parity with the other baselines
    (OPT is disk-based and does not OOM in the paper's experiments); it is
    currently only used to size the write buffers.
    """
    if graph.directed:
        raise ValueError("run_opt expects an undirected graph")
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    parse_size(memory)  # validate

    tempdir: tempfile.TemporaryDirectory | None = None
    if device is None:
        if storage_root is not None:
            device = BlockDevice(storage_root)
        else:
            tempdir = tempfile.TemporaryDirectory(prefix="opt_db_")
            device = BlockDevice(tempdir.name)

    try:
        # ---- phase 1: database creation -------------------------------------------
        db_timer = Timer().start()
        degrees = graph.degrees
        # OPT requires the input sorted by vertex degree: build the degree
        # permutation, relabel the whole graph, and re-sort the adjacency.
        order = np.lexsort((np.arange(graph.num_vertices), degrees))
        relabel = np.empty(graph.num_vertices, dtype=np.int64)
        relabel[order] = np.arange(graph.num_vertices, dtype=np.int64)
        edges = graph.edge_array()
        relabelled = relabel[edges]
        sort_order = np.lexsort((relabelled[:, 1], relabelled[:, 0]))
        relabelled = relabelled[sort_order]
        # write the re-encoded database (degree index + adjacency + reverse map)
        db_file = device.open("opt_database.bin")
        db_file.truncate(0)
        db_file.append_array(relabelled.reshape(-1))
        index_file = device.open("opt_index.bin")
        index_file.truncate(0)
        counts = np.bincount(relabelled[:, 0], minlength=graph.num_vertices)
        index_file.append_array(np.cumsum(counts))
        map_file = device.open("opt_vertex_map.bin")
        map_file.truncate(0)
        map_file.append_array(order.astype(np.int64))
        database_bytes = (
            device.file_size("opt_database.bin")
            + device.file_size("opt_index.bin")
            + device.file_size("opt_vertex_map.bin")
        )
        db_timer.stop()

        # ---- phase 2: overlapped calculation ----------------------------------------
        calc_timer = Timer().start()
        device_seconds_before = device.stats.device_seconds
        oriented = orient_csr(graph)
        indptr, indices = oriented.indptr, oriented.indices
        ranges = chunk_ranges(oriented.num_vertices, num_threads)
        db_items = db_file.num_items()
        db_chunk = max(parse_size(memory) // (8 * max(num_threads, 1)), 1024)
        db_offset = 0
        total = 0
        for lo, hi in ranges:
            # stream this worker's share of the on-disk database (the input
            # of the real system's calculation phase) through the block
            # layer, so the scan's I/O is charged like every other system's
            share = db_items // num_threads if num_threads else db_items
            share_end = db_items if hi == oriented.num_vertices else db_offset + share
            while db_offset < share_end:
                count = min(db_chunk, share_end - db_offset)
                db_file.read_array(db_offset, count)
                db_offset += count
            total += kernels.count_cone_range(indptr, indices, lo, hi)
        calc_timer.stop()
        calc_io_seconds = device.stats.device_seconds - device_seconds_before

        return OPTResult(
            triangles=total,
            database_seconds=db_timer.elapsed,
            calc_seconds=calc_timer.elapsed + calc_io_seconds,
            num_threads=num_threads,
            database_bytes=database_bytes,
        )
    finally:
        if tempdir is not None:
            tempdir.cleanup()
