"""In-memory reference triangle counters.

Two classic algorithms, both exact:

* **node-iterator**: for every vertex ``v`` and every pair of neighbours
  ``u < w`` of ``v``, test whether ``(u, w)`` is an edge.  Simple and the
  easiest to convince oneself is correct, so it is the ultimate reference
  in the tests (on small graphs).
* **compact-forward** (Latapy 2008): orient the graph by the degree order
  and, for every oriented edge ``(u, v)``, count
  ``|N⁺(u) ∩ N⁺(v)|`` with a sorted-array merge.  This is the same
  counting identity MGT uses, evaluated fully in memory; it is fast enough
  to act as the reference on every graph the benchmarks touch.

The compact-forward family is evaluated with the shared vectorised kernels
of :mod:`repro.core.kernels`: whole vertex ranges are processed per call
(segment gather + one packed-key binary search) instead of one interpreted
loop iteration per edge.  ``node_iterator_count`` intentionally stays a
plain per-vertex loop -- it is the convince-yourself-by-reading reference
the vectorised paths are tested against (see also
:mod:`repro.baselines.reference_impl`).

Both operate directly on :class:`~repro.graph.csr.CSRGraph` and never touch
disk; they are *not* external-memory algorithms and exist purely as
correctness references and as the in-memory leg of the comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.orientation import orient_csr
from repro.graph.csr import CSRGraph

__all__ = [
    "node_iterator_count",
    "forward_count",
    "per_vertex_triangle_counts",
    "reference_triangle_count",
    "forward_list",
]


def node_iterator_count(graph: CSRGraph) -> int:
    """Exact triangle count by the node-iterator algorithm (O(Σ d(v)²))."""
    if graph.directed:
        raise ValueError("node_iterator_count expects an undirected graph")
    count = 0
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors(v)
        deg = nbrs.shape[0]
        if deg < 2:
            continue
        for i in range(deg):
            u = int(nbrs[i])
            if u <= v:
                continue
            # neighbours w of v with w > u, check edge (u, w)
            rest = nbrs[i + 1 :]
            rest = rest[rest > u]
            if rest.shape[0] == 0:
                continue
            u_nbrs = graph.neighbors(u)
            pos = np.searchsorted(u_nbrs, rest)
            pos = np.minimum(pos, u_nbrs.shape[0] - 1)
            count += int(np.count_nonzero(u_nbrs[pos] == rest))
    return count


def forward_count(graph: CSRGraph) -> int:
    """Exact triangle count by the compact-forward algorithm.

    Orients by the degree order then counts ``|N⁺(u) ∩ N⁺(v)|`` over all
    oriented edges ``(u, v)``, whole vertex ranges per kernel call.
    """
    if graph.directed:
        oriented = graph
    else:
        oriented = orient_csr(graph)
    return kernels.count_cone_range(oriented.indptr, oriented.indices)


def forward_list(graph: CSRGraph) -> set[frozenset[int]]:
    """Exact triangle *listing* (as unordered vertex sets) by compact-forward."""
    oriented = graph if graph.directed else orient_csr(graph)
    triangles: set[frozenset[int]] = set()
    indptr, indices = oriented.indptr, oriented.indices
    for lo, hi in kernels.iter_vertex_batches(indptr, 0, oriented.num_vertices):
        cones, vs, ws, _ = kernels.triangle_range(indptr, indices, lo, hi, want_triples=True)
        triangles.update(
            frozenset(t) for t in zip(cones.tolist(), vs.tolist(), ws.tolist())
        )
    return triangles


def per_vertex_triangle_counts(graph: CSRGraph) -> np.ndarray:
    """Per-vertex triangle participation counts (reference for the per-vertex sink)."""
    if graph.directed:
        raise ValueError("per_vertex_triangle_counts expects an undirected graph")
    oriented = orient_csr(graph)
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    indptr, indices = oriented.indptr, oriented.indices
    for lo, hi in kernels.iter_vertex_batches(indptr, 0, oriented.num_vertices):
        cones, vs, ws, _ = kernels.triangle_range(indptr, indices, lo, hi, want_triples=True)
        if cones.shape[0] == 0:
            continue
        # O(hits) scatter-add; a bincount(minlength=n) per batch would make
        # the accumulation O(n * num_batches) on large sparse graphs
        np.add.at(counts, np.concatenate([cones, vs, ws]), 1)
    return counts


def reference_triangle_count(graph: CSRGraph) -> int:
    """The reference count used across the test suite (compact-forward)."""
    return forward_count(graph)
