"""Exception hierarchy for the PDTL reproduction library.

All library-specific errors derive from :class:`PDTLError` so callers can
catch a single base class.  The most important subclass is
:class:`OutOfMemoryError`, which the simulated memory budgets and the
partition-based baselines (PowerGraph/PATRIC-style) raise when a requested
allocation exceeds the configured per-machine memory -- this is how the
reproduction models the "F" (out-of-memory) entries of Table VI and
Table XIV of the paper.
"""

from __future__ import annotations


class PDTLError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphFormatError(PDTLError):
    """Raised when an on-disk or in-memory graph violates format invariants.

    The modified MGT algorithm (paper section IV-A1) requires the adjacency
    file to be sorted by source vertex and, within each adjacency list, by
    destination vertex.  Violations of that contract raise this error rather
    than silently missing triangles (the failure mode the paper observed in
    the original MGT binary).
    """


class OutOfMemoryError(PDTLError):
    """Raised when an allocation exceeds a simulated memory budget.

    Mirrors the out-of-memory failures ("F") the paper reports for
    PowerGraph on Yahoo and RMAT-28/29 (Table VI, Table XIV).
    """

    def __init__(self, requested: int, available: int, context: str = "") -> None:
        self.requested = int(requested)
        self.available = int(available)
        self.context = context
        msg = (
            f"allocation of {requested} bytes exceeds available budget of "
            f"{available} bytes"
        )
        if context:
            msg += f" ({context})"
        super().__init__(msg)


class ConfigurationError(PDTLError):
    """Raised for invalid cluster / PDTL configurations.

    Examples: zero processors, block size larger than memory, or a memory
    budget too small to satisfy the small-degree assumption
    (``d*_max <= c * M / 2``) for the graph being processed.
    """


class NetworkError(PDTLError):
    """Raised for simulated network failures (unknown node, link down)."""


class SchedulingError(PDTLError):
    """Raised when the dynamic chunk scheduler cannot make progress.

    The only way this happens is that every simulated worker has been killed
    by the failure-injection spec while chunks are still pending: with at
    least one surviving worker the pull-based queue always drains, because a
    lost worker's unfinished chunk is re-enqueued for the survivors.
    """


class ProtocolError(PDTLError):
    """Raised when the master/worker protocol receives an unexpected message."""
