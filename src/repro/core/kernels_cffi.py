"""C (cffi) implementations of the hot kernels, bit-identical to numpy.

This is the compiled tier used where a C compiler is available but numba
is not: the same fused loops as :mod:`repro.core.kernels_compiled`,
written once as C and built with cffi's out-of-line API mode into an
extension module cached on disk (``PDTL_KERNEL_CACHE`` or a per-user
temp directory, keyed by a hash of the source).  The first process to
run pays one ``gcc`` invocation (~1-2 s); every later process loads the
cached ``.so``.

Semantics are pinned to the numpy twins in
:data:`repro.core.kernels.NUMPY_IMPLS`:

* membership-style intersection counts each *query* element independently
  (duplicate queries each count, duplicate haystack entries do not);
* emission order of ``triangle_range``/``mgt_block_scan`` triples is the
  numpy gather order: adjacency entries by (source, position), hits within
  an entry in ``N⁺(v)`` order;
* ``operations`` is the deterministic scanned + gathered work measure, so
  modelled CPU seconds are identical under either tier;
* ``edge_support_accumulate`` rolls back every applied increment before
  reporting a bad pair, matching the numpy sink's check-before-mutate
  contract.

C calls release the GIL (cffi does so around every call), so the threads
execution backend scales the same way the numba tier's ``nogil`` loops do.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import tempfile
from typing import Callable

import numpy as np

_MODULE_NAME = "_pdtl_kernels_cffi"

_CDEF = """
int64_t pdtl_sorted_membership(const int64_t *hay, int64_t nh,
                               const int64_t *q, int64_t nq, uint8_t *out);
void pdtl_merge_positions(const int64_t *a, int64_t na,
                          const int64_t *b, int64_t nb,
                          int64_t *pa, int64_t *pb);
int64_t pdtl_intersect_sorted(const int64_t *a, int64_t na,
                              const int64_t *b, int64_t nb, int64_t *out);
int64_t pdtl_count_cone_range(const int64_t *indptr, const int64_t *indices,
                              int64_t lo, int64_t hi);
int64_t pdtl_triangle_gathered(const int64_t *indptr, const int64_t *indices,
                               int64_t lo, int64_t hi);
int64_t pdtl_triangle_count(const int64_t *indptr, const int64_t *indices,
                            int64_t lo, int64_t hi, int64_t *ops);
int64_t pdtl_triangle_list(const int64_t *indptr, const int64_t *indices,
                           int64_t lo, int64_t hi, int64_t *cones,
                           int64_t *vs, int64_t *ws, int64_t *ops);
int64_t pdtl_edge_intersections(const int64_t *indptr, const int64_t *indices,
                                const int64_t *us, const int64_t *vs,
                                int64_t ne, int64_t *per_edge);
void pdtl_mgt_block_bound(const int64_t *block_adj, const int64_t *block_offsets,
                          int64_t nbv, int64_t vlow, int64_t vhigh,
                          const int64_t *win_degrees,
                          int64_t *pairs, int64_t *total);
int64_t pdtl_mgt_block_scan(const int64_t *block_adj, const int64_t *block_offsets,
                            int64_t nbv, const int64_t *edg,
                            int64_t vlow, int64_t vhigh,
                            const int64_t *win_offsets, const int64_t *win_degrees,
                            int64_t want, int64_t *cones, int64_t *vs, int64_t *ws,
                            int64_t *pairs, int64_t *total);
int64_t pdtl_edge_support_accumulate(const int64_t *edge_keys, int64_t m,
                                     int64_t nvert, const int64_t *us,
                                     const int64_t *vs, const int64_t *ws,
                                     int64_t n, int64_t *support);
int64_t pdtl_truss_peel_level(int64_t k, uint8_t *alive, int64_t *support,
                              int64_t *trussness, const int64_t *inc_ptr,
                              const int64_t *inc_tri, const int64_t *tri_edges,
                              uint8_t *tri_alive, int64_t m,
                              int64_t *frontier, uint8_t *in_touched,
                              int64_t *rounds_out);
int64_t pdtl_triangle_edge_ids(const int64_t *indptr, const int64_t *indices,
                               const int64_t *keys, const int64_t *row_start,
                               int64_t n, int64_t lo, int64_t hi,
                               int64_t *slot_to_id, int64_t *out);
void pdtl_incidence_csr(const int64_t *flat, int64_t nslots, int64_t m,
                        int64_t *inc_ptr, int64_t *inc_tri, int64_t *cursor);
"""

_C_SOURCE = r"""
#include <stdint.h>

/* first index with a[i] >= key */
static int64_t pdtl_lower_bound(const int64_t *a, int64_t n, int64_t key) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (a[mid] < key) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* first index with a[i] > key (avoids key + 1 overflow at INT64_MAX) */
static int64_t pdtl_upper_bound(const int64_t *a, int64_t n, int64_t key) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (a[mid] <= key) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* |{ j : b[j] in a }| for sorted a, b -- numpy membership semantics:
 * every b element is tested independently (duplicate b's each count,
 * duplicate a's count once).  Galloping when the sizes are lopsided,
 * linear merge otherwise. */
static int64_t pdtl_isect_count(const int64_t *a, int64_t na,
                                const int64_t *b, int64_t nb) {
    int64_t c = 0;
    if (na == 0 || nb == 0) return 0;
    if (na > 32 * nb) {
        for (int64_t j = 0; j < nb; j++) {
            int64_t pos = pdtl_lower_bound(a, na, b[j]);
            if (pos < na && a[pos] == b[j]) c++;
        }
        return c;
    }
    if (nb > 32 * na) {
        for (int64_t i = 0; i < na; i++) {
            if (i > 0 && a[i] == a[i - 1]) continue;
            c += pdtl_upper_bound(b, nb, a[i]) - pdtl_lower_bound(b, nb, a[i]);
        }
        return c;
    }
    {
        int64_t i = 0, j = 0;
        while (i < na && j < nb) {
            if (a[i] < b[j]) i++;
            else if (a[i] > b[j]) j++;
            else { c++; j++; } /* keep i: the next b may repeat this value */
        }
    }
    return c;
}

int64_t pdtl_sorted_membership(const int64_t *hay, int64_t nh,
                               const int64_t *q, int64_t nq, uint8_t *out) {
    int64_t hits = 0;
    for (int64_t i = 0; i < nq; i++) {
        int64_t pos = pdtl_lower_bound(hay, nh, q[i]);
        uint8_t hit = (uint8_t)(pos < nh && hay[pos] == q[i]);
        out[i] = hit;
        hits += hit;
    }
    return hits;
}

/* stable merge positions: ties place a's elements first */
void pdtl_merge_positions(const int64_t *a, int64_t na,
                          const int64_t *b, int64_t nb,
                          int64_t *pa, int64_t *pb) {
    int64_t i = 0, j = 0;
    while (i < na || j < nb) {
        if (j >= nb || (i < na && a[i] <= b[j])) { pa[i] = i + j; i++; }
        else { pb[j] = i + j; j++; }
    }
}

int64_t pdtl_intersect_sorted(const int64_t *a, int64_t na,
                              const int64_t *b, int64_t nb, int64_t *out) {
    int64_t n = 0, i = 0;
    for (int64_t j = 0; j < nb; j++) {
        while (i < na && a[i] < b[j]) i++;
        if (i >= na) break;
        if (a[i] == b[j]) out[n++] = b[j];
    }
    return n;
}

int64_t pdtl_count_cone_range(const int64_t *indptr, const int64_t *indices,
                              int64_t lo, int64_t hi) {
    int64_t total = 0;
    for (int64_t u = lo; u < hi; u++) {
        const int64_t *nu = indices + indptr[u];
        int64_t du = indptr[u + 1] - indptr[u];
        for (int64_t p = 0; p < du; p++) {
            int64_t v = nu[p];
            total += pdtl_isect_count(nu, du, indices + indptr[v],
                                      indptr[v + 1] - indptr[v]);
        }
    }
    return total;
}

int64_t pdtl_triangle_gathered(const int64_t *indptr, const int64_t *indices,
                               int64_t lo, int64_t hi) {
    int64_t g = 0;
    for (int64_t p = indptr[lo]; p < indptr[hi]; p++) {
        int64_t v = indices[p];
        g += indptr[v + 1] - indptr[v];
    }
    return g;
}

int64_t pdtl_triangle_count(const int64_t *indptr, const int64_t *indices,
                            int64_t lo, int64_t hi, int64_t *ops) {
    int64_t count = 0, gathered = 0;
    for (int64_t u = lo; u < hi; u++) {
        const int64_t *nu = indices + indptr[u];
        int64_t du = indptr[u + 1] - indptr[u];
        for (int64_t p = 0; p < du; p++) {
            int64_t v = nu[p];
            int64_t dv = indptr[v + 1] - indptr[v];
            gathered += dv;
            count += pdtl_isect_count(nu, du, indices + indptr[v], dv);
        }
    }
    *ops = (indptr[hi] - indptr[lo]) + gathered;
    return count;
}

int64_t pdtl_triangle_list(const int64_t *indptr, const int64_t *indices,
                           int64_t lo, int64_t hi, int64_t *cones,
                           int64_t *vs, int64_t *ws, int64_t *ops) {
    int64_t nhit = 0, gathered = 0;
    for (int64_t u = lo; u < hi; u++) {
        const int64_t *nu = indices + indptr[u];
        int64_t du = indptr[u + 1] - indptr[u];
        for (int64_t p = 0; p < du; p++) {
            int64_t v = nu[p];
            const int64_t *nv = indices + indptr[v];
            int64_t dv = indptr[v + 1] - indptr[v];
            gathered += dv;
            if (du > 32 * dv) {
                /* lopsided pair (hub cone list): binary-search each w --
                 * emission order (ascending j) matches the merge loop */
                for (int64_t j = 0; j < dv; j++) {
                    int64_t w = nv[j];
                    int64_t pos = pdtl_lower_bound(nu, du, w);
                    if (pos < du && nu[pos] == w) {
                        cones[nhit] = u; vs[nhit] = v; ws[nhit] = w; nhit++;
                    }
                }
            } else {
                int64_t i = 0;
                for (int64_t j = 0; j < dv; j++) {
                    int64_t w = nv[j];
                    while (i < du && nu[i] < w) i++;
                    if (i >= du) break;
                    if (nu[i] == w) {
                        cones[nhit] = u; vs[nhit] = v; ws[nhit] = w; nhit++;
                    }
                }
            }
        }
    }
    *ops = (indptr[hi] - indptr[lo]) + gathered;
    return nhit;
}

int64_t pdtl_edge_intersections(const int64_t *indptr, const int64_t *indices,
                                const int64_t *us, const int64_t *vs,
                                int64_t ne, int64_t *per_edge) {
    int64_t total = 0;
    for (int64_t e = 0; e < ne; e++) {
        int64_t u = us[e], v = vs[e];
        int64_t c = pdtl_isect_count(indices + indptr[u],
                                     indptr[u + 1] - indptr[u],
                                     indices + indptr[v],
                                     indptr[v + 1] - indptr[v]);
        if (per_edge) per_edge[e] = c;
        total += c;
    }
    return total;
}

void pdtl_mgt_block_bound(const int64_t *block_adj, const int64_t *block_offsets,
                          int64_t nbv, int64_t vlow, int64_t vhigh,
                          const int64_t *win_degrees,
                          int64_t *pairs, int64_t *total) {
    int64_t npairs = 0, t = 0;
    for (int64_t p = block_offsets[0]; p < block_offsets[nbv]; p++) {
        int64_t v = block_adj[p];
        if (v >= vlow && v <= vhigh) {
            int64_t d = win_degrees[v - vlow];
            if (d > 0) { npairs++; t += d; }
        }
    }
    *pairs = npairs;
    *total = t;
}

int64_t pdtl_mgt_block_scan(const int64_t *block_adj, const int64_t *block_offsets,
                            int64_t nbv, const int64_t *edg,
                            int64_t vlow, int64_t vhigh,
                            const int64_t *win_offsets, const int64_t *win_degrees,
                            int64_t want, int64_t *cones, int64_t *vs, int64_t *ws,
                            int64_t *pairs, int64_t *total) {
    int64_t npairs = 0, t = 0, nhit = 0;
    for (int64_t bu = 0; bu < nbv; bu++) {
        const int64_t *nu = block_adj + block_offsets[bu];
        int64_t du = block_offsets[bu + 1] - block_offsets[bu];
        for (int64_t p = 0; p < du; p++) {
            int64_t v = nu[p];
            int64_t d;
            const int64_t *ev;
            if (v < vlow || v > vhigh) continue;
            d = win_degrees[v - vlow];
            if (d <= 0) continue;
            npairs++;
            t += d;
            ev = edg + win_offsets[v - vlow];
            if (want) {
                if (du > 32 * d) {
                    for (int64_t j = 0; j < d; j++) {
                        int64_t w = ev[j];
                        int64_t pos = pdtl_lower_bound(nu, du, w);
                        if (pos < du && nu[pos] == w) {
                            cones[nhit] = bu; vs[nhit] = v; ws[nhit] = w; nhit++;
                        }
                    }
                } else {
                    int64_t i = 0;
                    for (int64_t j = 0; j < d; j++) {
                        int64_t w = ev[j];
                        while (i < du && nu[i] < w) i++;
                        if (i >= du) break;
                        if (nu[i] == w) {
                            cones[nhit] = bu; vs[nhit] = v; ws[nhit] = w; nhit++;
                        }
                    }
                }
            } else {
                nhit += pdtl_isect_count(nu, du, ev, d);
            }
        }
    }
    *pairs = npairs;
    *total = t;
    return nhit;
}

int64_t pdtl_edge_support_accumulate(const int64_t *edge_keys, int64_t m,
                                     int64_t nvert, const int64_t *us,
                                     const int64_t *vs, const int64_t *ws,
                                     int64_t n, int64_t *support) {
    for (int64_t i = 0; i < n; i++) {
        int64_t s[3], d[3];
        s[0] = us[i]; s[1] = us[i]; s[2] = vs[i];
        d[0] = vs[i]; d[1] = ws[i]; d[2] = ws[i];
        for (int sl = 0; sl < 3; sl++) {
            int64_t key = s[sl] * nvert + d[sl];
            int64_t pos = pdtl_lower_bound(edge_keys, m, key);
            if (pos >= m || edge_keys[pos] != key) {
                /* bad pair: undo every increment already applied so the
                 * caller can raise with the sink untouched */
                for (int64_t ri = 0; ri <= i; ri++) {
                    int64_t rs[3], rd[3];
                    int rmax = (ri == i) ? sl : 3;
                    rs[0] = us[ri]; rs[1] = us[ri]; rs[2] = vs[ri];
                    rd[0] = vs[ri]; rd[1] = ws[ri]; rd[2] = ws[ri];
                    for (int rsl = 0; rsl < rmax; rsl++) {
                        int64_t rkey = rs[rsl] * nvert + rd[rsl];
                        support[pdtl_lower_bound(edge_keys, m, rkey)]--;
                    }
                }
                return 0;
            }
            support[pos]++;
        }
    }
    return 1;
}

int64_t pdtl_truss_peel_level(int64_t k, uint8_t *alive, int64_t *support,
                              int64_t *trussness, const int64_t *inc_ptr,
                              const int64_t *inc_tri, const int64_t *tri_edges,
                              uint8_t *tri_alive, int64_t m,
                              int64_t *frontier, uint8_t *in_touched,
                              int64_t *rounds_out) {
    int64_t rounds = 0, peeled = 0;
    int64_t thresh = k - 2;
    /* round 1: full scan.  Later rounds draw their frontier from the
     * edges whose support was decremented this round (the touched set,
     * staged at frontier[nf..]) -- an edge can newly cross the threshold
     * only by losing support, so the frontier sets, the round count and
     * every output array are identical to rescanning all m edges. */
    int64_t nf = 0;
    for (int64_t e = 0; e < m; e++)
        if (alive[e] && support[e] <= thresh) frontier[nf++] = e;
    while (nf > 0) {
        int64_t nt = 0;
        rounds++;
        for (int64_t f = 0; f < nf; f++) {
            alive[frontier[f]] = 0;
            trussness[frontier[f]] = k;
        }
        peeled += nf;
        for (int64_t f = 0; f < nf; f++) {
            int64_t e = frontier[f];
            for (int64_t q = inc_ptr[e]; q < inc_ptr[e + 1]; q++) {
                int64_t tri = inc_tri[q];
                if (!tri_alive[tri]) continue;
                tri_alive[tri] = 0;
                for (int sl = 0; sl < 3; sl++) {
                    int64_t te = tri_edges[3 * tri + sl];
                    if (alive[te]) {
                        support[te]--;
                        if (!in_touched[te]) {
                            in_touched[te] = 1;
                            frontier[nf + nt] = te;
                            nt++;
                        }
                    }
                }
            }
        }
        {
            /* dead frontier and alive touched edges are disjoint, so
             * nf + nt <= m; compacting the next frontier to the front
             * trails the reads (nf >= 1) and never overwrites them */
            int64_t start = nf, nnext = 0;
            for (int64_t i = 0; i < nt; i++) {
                int64_t te = frontier[start + i];
                in_touched[te] = 0;
                if (alive[te] && support[te] <= thresh) frontier[nnext++] = te;
            }
            nf = nnext;
        }
    }
    *rounds_out = rounds;
    return peeled;
}

/* the triangle_list enumeration (same traversal, same emission order)
 * fused with the edge-id mapping.  First every oriented adjacency slot is
 * mapped to its canonical edge id: the pair is canonicalised to
 * (min, max), packed into min*n+max and looked up with the same
 * lower_bound np.searchsorted uses, confined to the source row
 * [row_start[x], row_start[x+1]) (row_start[u] = lower bound of u*n in
 * keys, which brackets every key of row x, so the position equals the
 * global searchsorted result).  The enumeration then emits each hit's
 * three ids by direct slot lookup -- (u,v) at the scanned slot, (u,w) at
 * the matched position in N(u), (v,w) at the gathered slot -- with no
 * per-triangle searching at all. */
int64_t pdtl_triangle_edge_ids(const int64_t *indptr, const int64_t *indices,
                               const int64_t *keys, const int64_t *row_start,
                               int64_t n, int64_t lo, int64_t hi,
                               int64_t *slot_to_id, int64_t *out) {
    int64_t nhit = 0;
    for (int64_t u = 0; u < n; u++) {
        for (int64_t p = indptr[u]; p < indptr[u + 1]; p++) {
            int64_t v = indices[p];
            int64_t x = u < v ? u : v;
            int64_t y = u < v ? v : u;
            int64_t rs = row_start[x];
            slot_to_id[p] = rs + pdtl_lower_bound(
                keys + rs, row_start[x + 1] - rs, x * n + y);
        }
    }
    for (int64_t u = lo; u < hi; u++) {
        const int64_t *nu = indices + indptr[u];
        int64_t du = indptr[u + 1] - indptr[u];
        for (int64_t p = 0; p < du; p++) {
            int64_t v = nu[p];
            const int64_t *nv = indices + indptr[v];
            int64_t dv = indptr[v + 1] - indptr[v];
            int64_t uv = slot_to_id[indptr[u] + p];
            if (du > 32 * dv) {
                for (int64_t j = 0; j < dv; j++) {
                    int64_t w = nv[j];
                    int64_t pos = pdtl_lower_bound(nu, du, w);
                    if (pos < du && nu[pos] == w) {
                        out[3 * nhit] = uv;
                        out[3 * nhit + 1] = slot_to_id[indptr[u] + pos];
                        out[3 * nhit + 2] = slot_to_id[indptr[v] + j];
                        nhit++;
                    }
                }
            } else {
                int64_t i = 0;
                for (int64_t j = 0; j < dv; j++) {
                    int64_t w = nv[j];
                    while (i < du && nu[i] < w) i++;
                    if (i >= du) break;
                    if (nu[i] == w) {
                        out[3 * nhit] = uv;
                        out[3 * nhit + 1] = slot_to_id[indptr[u] + i];
                        out[3 * nhit + 2] = slot_to_id[indptr[v] + j];
                        nhit++;
                    }
                }
            }
        }
    }
    return nhit;
}

/* edge -> incident-triangle CSR by stable counting sort of the 3T slots:
 * slots are visited in increasing index order and appended to their edge's
 * bucket, which is exactly np.argsort(flat, kind="stable") // 3 */
void pdtl_incidence_csr(const int64_t *flat, int64_t nslots, int64_t m,
                        int64_t *inc_ptr, int64_t *inc_tri, int64_t *cursor) {
    for (int64_t e = 0; e <= m; e++) inc_ptr[e] = 0;
    for (int64_t s = 0; s < nslots; s++) inc_ptr[flat[s] + 1]++;
    for (int64_t e = 0; e < m; e++) {
        inc_ptr[e + 1] += inc_ptr[e];
        cursor[e] = inc_ptr[e];
    }
    for (int64_t s = 0; s < nslots; s++) {
        int64_t e = flat[s];
        inc_tri[cursor[e]++] = s / 3;
    }
}
"""

_loaded: tuple | None = None


def _cache_dir() -> str:
    root = os.environ.get("PDTL_KERNEL_CACHE")
    if not root:
        try:
            user = os.getlogin()
        except OSError:
            user = str(os.getuid()) if hasattr(os, "getuid") else "user"
        root = os.path.join(tempfile.gettempdir(), f"pdtl-kernels-{user}")
    digest = hashlib.sha256((_CDEF + _C_SOURCE).encode()).hexdigest()[:16]
    return os.path.join(root, digest)


def _build(cache: str) -> str:
    """Compile the extension into the cache dir; returns the .so path."""
    from cffi import FFI

    builder = FFI()
    builder.cdef(_CDEF)
    builder.set_source(_MODULE_NAME, _C_SOURCE, extra_compile_args=["-O3"])
    build_dir = os.path.join(cache, f"build-{os.getpid()}")
    os.makedirs(build_dir, exist_ok=True)
    try:
        so_path = builder.compile(tmpdir=build_dir)
        final = os.path.join(cache, os.path.basename(so_path))
        os.replace(so_path, final)  # atomic: concurrent builders converge
        return final
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)


def _get_lib():
    """Load (building once if needed) the cached extension: ``(ffi, lib)``."""
    global _loaded
    if _loaded is not None:
        return _loaded
    cache = _cache_dir()
    os.makedirs(cache, exist_ok=True)
    so_path = None
    for entry in sorted(os.listdir(cache)):
        if entry.startswith(_MODULE_NAME) and entry.endswith(".so"):
            so_path = os.path.join(cache, entry)
            break
    if so_path is None:
        so_path = _build(cache)
    spec = importlib.util.spec_from_file_location(_MODULE_NAME, so_path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load compiled kernels from {so_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    _loaded = (module.ffi, module.lib)
    return _loaded


def build_registry() -> dict[str, Callable]:
    """Kernel registry for :func:`repro.core.kernel_backend.activate`.

    Raises when cffi or the C toolchain is unavailable -- the caller treats
    that as "backend unavailable" and falls back.
    """
    ffi, lib = _get_lib()

    def as_i64(arr: np.ndarray) -> np.ndarray:
        a = np.asarray(arr)
        if a.dtype != np.int64:
            a = a.astype(np.int64)
        elif not a.flags.c_contiguous:
            a = np.ascontiguousarray(a)
        return a

    def ptr(a: np.ndarray):
        return ffi.NULL if a.shape[0] == 0 else ffi.from_buffer("int64_t[]", a)

    def wptr(a: np.ndarray):
        if a.shape[0] == 0:
            return ffi.NULL
        return ffi.from_buffer("int64_t[]", a, require_writable=True)

    def bptr(a: np.ndarray):
        if a.shape[0] == 0:
            return ffi.NULL
        return ffi.from_buffer("uint8_t[]", a, require_writable=True)

    def integer_kinds(*arrays: np.ndarray) -> bool:
        return all(np.asarray(a).dtype.kind in "iu" for a in arrays)

    def sorted_membership(haystack, queries):
        from repro.core.kernels import NUMPY_IMPLS

        if not integer_kinds(haystack, queries):
            return NUMPY_IMPLS["sorted_membership"](haystack, queries)
        haystack = as_i64(haystack)
        queries = as_i64(queries)
        out = np.zeros(queries.shape[0], dtype=bool)
        if queries.shape[0] and haystack.shape[0]:
            lib.pdtl_sorted_membership(
                ptr(haystack), haystack.shape[0], ptr(queries), queries.shape[0], bptr(out)
            )
        return out

    def merge_positions(a, b):
        from repro.core.kernels import NUMPY_IMPLS

        if not integer_kinds(a, b):
            return NUMPY_IMPLS["merge_positions"](a, b)
        a = as_i64(a)
        b = as_i64(b)
        pos_a = np.empty(a.shape[0], dtype=np.int64)
        pos_b = np.empty(b.shape[0], dtype=np.int64)
        lib.pdtl_merge_positions(
            ptr(a), a.shape[0], ptr(b), b.shape[0], wptr(pos_a), wptr(pos_b)
        )
        return pos_a, pos_b

    def intersect_sorted(a, b):
        from repro.core.kernels import NUMPY_IMPLS

        if not integer_kinds(a, b):
            return NUMPY_IMPLS["intersect_sorted"](a, b)
        a = as_i64(a)
        b = as_i64(b)
        out = np.empty(b.shape[0], dtype=np.int64)
        n = lib.pdtl_intersect_sorted(ptr(a), a.shape[0], ptr(b), b.shape[0], wptr(out))
        return out[: int(n)]

    def triangle_range(indptr, indices, lo, hi, want_triples=False):
        indptr = as_i64(indptr)
        indices = as_i64(indices)
        lo = int(lo)
        hi = int(hi)
        ops = ffi.new("int64_t *")
        if not want_triples:
            count = lib.pdtl_triangle_count(ptr(indptr), ptr(indices), lo, hi, ops)
            return int(count), int(ops[0])
        cap = int(lib.pdtl_triangle_gathered(ptr(indptr), ptr(indices), lo, hi))
        cones = np.empty(cap, dtype=np.int64)
        vs = np.empty(cap, dtype=np.int64)
        ws = np.empty(cap, dtype=np.int64)
        nhit = int(
            lib.pdtl_triangle_list(
                ptr(indptr), ptr(indices), lo, hi, wptr(cones), wptr(vs), wptr(ws), ops
            )
        )
        return cones[:nhit], vs[:nhit], ws[:nhit], int(ops[0])

    def count_cone_range(indptr, indices, lo, hi):
        indptr = as_i64(indptr)
        indices = as_i64(indices)
        return int(lib.pdtl_count_cone_range(ptr(indptr), ptr(indices), int(lo), int(hi)))

    def edge_intersections(indptr, indices, us, vs, per_edge=False):
        indptr = as_i64(indptr)
        indices = as_i64(indices)
        us = as_i64(us)
        vs = as_i64(vs)
        ne = us.shape[0]
        if per_edge:
            out = np.zeros(ne, dtype=np.int64)
            lib.pdtl_edge_intersections(
                ptr(indptr), ptr(indices), ptr(us), ptr(vs), ne, wptr(out)
            )
            return out
        total = lib.pdtl_edge_intersections(
            ptr(indptr), ptr(indices), ptr(us), ptr(vs), ne, ffi.NULL
        )
        return int(total)

    def mgt_block_scan(
        block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees, want_triples
    ):
        block_adj = as_i64(block_adj)
        block_offsets = as_i64(block_offsets)
        edg = as_i64(edg)
        win_offsets = as_i64(win_offsets)
        win_degrees = as_i64(win_degrees)
        nbv = block_offsets.shape[0] - 1
        pairs = ffi.new("int64_t *")
        total = ffi.new("int64_t *")
        if not want_triples:
            nhit = lib.pdtl_mgt_block_scan(
                ptr(block_adj), ptr(block_offsets), nbv, ptr(edg),
                int(vlow), int(vhigh), ptr(win_offsets), ptr(win_degrees),
                0, ffi.NULL, ffi.NULL, ffi.NULL, pairs, total,
            )
            return int(pairs[0]), int(total[0]), int(nhit), None, None, None
        lib.pdtl_mgt_block_bound(
            ptr(block_adj), ptr(block_offsets), nbv, int(vlow), int(vhigh),
            ptr(win_degrees), pairs, total,
        )
        cap = int(total[0])
        cones = np.empty(cap, dtype=np.int64)
        vs = np.empty(cap, dtype=np.int64)
        ws = np.empty(cap, dtype=np.int64)
        nhit = int(
            lib.pdtl_mgt_block_scan(
                ptr(block_adj), ptr(block_offsets), nbv, ptr(edg),
                int(vlow), int(vhigh), ptr(win_offsets), ptr(win_degrees),
                1, wptr(cones), wptr(vs), wptr(ws), pairs, total,
            )
        )
        return int(pairs[0]), int(total[0]), nhit, cones[:nhit], vs[:nhit], ws[:nhit]

    def edge_support_accumulate(edge_keys, us, vs, ws, num_vertices, support):
        if support.dtype != np.int64 or not support.flags.c_contiguous:
            raise TypeError("support must be a contiguous int64 array")
        edge_keys = as_i64(edge_keys)
        us = as_i64(us)
        vs = as_i64(vs)
        ws = as_i64(ws)
        ok = lib.pdtl_edge_support_accumulate(
            ptr(edge_keys), edge_keys.shape[0], int(num_vertices),
            ptr(us), ptr(vs), ptr(ws), ws.shape[0], wptr(support),
        )
        return bool(ok)

    def truss_peel_level(
        k, alive, support, trussness, inc_ptr, inc_triangles, tri_edges_flat, tri_alive
    ):
        if alive.dtype != np.bool_ or tri_alive.dtype != np.bool_:
            raise TypeError("alive masks must be bool arrays")
        if support.dtype != np.int64 or trussness.dtype != np.int64:
            raise TypeError("support/trussness must be int64 arrays")
        inc_ptr = as_i64(inc_ptr)
        inc_triangles = as_i64(inc_triangles)
        tri_edges_flat = as_i64(tri_edges_flat)
        m = alive.shape[0]
        frontier = np.empty(m, dtype=np.int64)
        in_touched = np.zeros(m, dtype=np.uint8)
        rounds = ffi.new("int64_t *")
        peeled = lib.pdtl_truss_peel_level(
            int(k), bptr(alive), wptr(support), wptr(trussness),
            ptr(inc_ptr), ptr(inc_triangles), ptr(tri_edges_flat), bptr(tri_alive),
            m, wptr(frontier), bptr(in_touched), rounds,
        )
        return int(peeled), int(rounds[0])

    def triangle_edge_ids(indptr, indices, keys, row_start, num_vertices, lo, hi):
        indptr = as_i64(indptr)
        indices = as_i64(indices)
        keys = as_i64(keys)
        row_start = as_i64(row_start)
        cap = int(lib.pdtl_triangle_gathered(ptr(indptr), ptr(indices), int(lo), int(hi)))
        slot_to_id = np.empty(indices.shape[0], dtype=np.int64)
        out = np.empty(3 * cap, dtype=np.int64)
        nhit = int(
            lib.pdtl_triangle_edge_ids(
                ptr(indptr), ptr(indices), ptr(keys), ptr(row_start),
                int(num_vertices), int(lo), int(hi), wptr(slot_to_id), wptr(out),
            )
        )
        return out[: 3 * nhit].reshape(nhit, 3)

    def incidence_csr(flat_edges, num_edges):
        flat_edges = as_i64(flat_edges)
        m = int(num_edges)
        nslots = flat_edges.shape[0]
        inc_ptr = np.zeros(m + 1, dtype=np.int64)
        inc_tri = np.empty(nslots, dtype=np.int64)
        cursor = np.empty(m, dtype=np.int64)
        if m:
            lib.pdtl_incidence_csr(
                ptr(flat_edges), nslots, m, wptr(inc_ptr), wptr(inc_tri), wptr(cursor)
            )
        return inc_ptr, inc_tri

    return {
        "sorted_membership": sorted_membership,
        "merge_positions": merge_positions,
        "intersect_sorted": intersect_sorted,
        "triangle_range": triangle_range,
        "count_cone_range": count_cone_range,
        "edge_intersections": edge_intersections,
        "mgt_block_scan": mgt_block_scan,
        "edge_support_accumulate": edge_support_accumulate,
        "truss_peel_level": truss_peel_level,
        "triangle_edge_ids": triangle_edge_ids,
        "incidence_csr": incidence_csr,
    }
