"""Dynamic chunk scheduling: pull-based work distribution with fault tolerance.

The paper's PDTL protocol hands every processor one *static* contiguous
edge range computed up front (section IV-B1).  Figure 9 shows that even
the in-degree-balanced split leaves imbalance on skewed graphs, and a
straggling or failed worker stalls the whole run because nobody else can
take over its range.  This module replaces the one-shot assignment with a
**pull-based chunk queue**:

* the oriented adjacency file is cut into many small contiguous
  :class:`Chunk` s, each a whole number of MGT memory windows (so a chunk
  never pays a partial-window scan -- the chunk size is derived from ``M``
  exactly like the window size is);
* workers *pull* the next chunk off a shared deque the moment they finish
  their previous one, so fast workers naturally absorb the heavy chunks a
  static split would have pinned onto one struggler;
* a failure-injection hook can kill a worker mid-run: the chunk it was
  holding is re-enqueued at the back of the deque and re-executed by a
  surviving worker, so the run always completes with exact counts;
* per-chunk results are merged **by chunk index**, never by completion
  order, so the output is deterministic no matter how the race for the
  queue plays out.

Two concerns are deliberately decoupled, mirroring the repository-wide
split between *measured host execution* and *modelled cluster time*:

1. chunk **computation** is a pure function of ``(graph, config, range)``
   -- :func:`execute_chunk_task` is a picklable, placement-independent task
   executed on any :class:`~repro.cluster.executor.ExecutionBackend` (the
   processes backend finally works for PDTL because of this);
2. chunk **assignment** is replayed as a deterministic greedy simulation in
   modelled time by :class:`DynamicScheduler`: the simulated worker with
   the smallest accumulated modelled time pulls next, which is exactly the
   "first to finish pulls first" behaviour of a real pull loop, minus the
   host-scheduler noise.  This keeps every modelled metric bit-identical
   across backends, hosts and repetitions.
"""

from __future__ import annotations

import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import PDTLConfig
from repro.core.mgt import MGTResult, MGTWorker
from repro.core.shm import SharedGraphDescriptor, attach_view
from repro.core.triangles import CHUNK_SINK_KINDS, make_sink, normalize_sink_kind
from repro.errors import ConfigurationError, SchedulingError
from repro.externalmem.blockio import BlockDevice, DiskModel
from repro.externalmem.iostats import IOStats
from repro.graph.binfmt import GraphFile
from repro.obs.metrics import counter_delta, snapshot_process_counters
from repro.obs.tracer import NULL_TRACER, SpanEvent, Tracer
from repro.utils import ceil_div, chunk_ranges

__all__ = [
    "DEFAULT_CHUNKS_PER_WORKER",
    "Chunk",
    "ChunkOutcome",
    "ChunkTask",
    "chunk_seed",
    "chunks_cover_exactly",
    "DynamicScheduler",
    "ScheduleResult",
    "execute_chunk_task",
    "make_chunks",
    "merge_mgt_results",
    "resolve_chunk_edges",
]

#: How many chunks each worker should see on average when ``chunk_edges`` is
#: not set explicitly.  More chunks per worker means finer balancing but more
#: per-chunk overhead (each chunk re-reads the degree file and pays its own
#: full-graph scan per window).
DEFAULT_CHUNKS_PER_WORKER = 4


# ---------------------------------------------------------------------------
# chunking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Chunk:
    """A contiguous half-open range ``[start, stop)`` of oriented edge
    positions, the unit of work a worker pulls from the queue."""

    index: int
    start: int
    stop: int

    @property
    def num_edges(self) -> int:
        return self.stop - self.start


def resolve_chunk_edges(config: PDTLConfig, num_edges: int) -> int:
    """The effective chunk size for a run: whole memory windows, always.

    An explicit ``config.chunk_edges`` is rounded **up** to a multiple of
    ``window_edges``; otherwise the size targets
    :data:`DEFAULT_CHUNKS_PER_WORKER` chunks per processor, again in whole
    windows.  A chunk is therefore never smaller than one window, so dynamic
    scheduling performs the same per-window full-graph scans a static range
    of equal size would.
    """
    window = config.window_edges
    if config.chunk_edges is not None:
        return max(1, ceil_div(config.chunk_edges, window)) * window
    if num_edges <= 0:
        return window
    target = ceil_div(num_edges, config.total_processors * DEFAULT_CHUNKS_PER_WORKER)
    return max(1, ceil_div(target, window)) * window


def make_chunks(num_edges: int, chunk_edges: int) -> list[Chunk]:
    """Cut ``[0, num_edges)`` into consecutive chunks of ``chunk_edges``.

    The chunks partition the edge positions exactly: no overlap, no gap,
    the last chunk absorbing the remainder.  ``num_edges == 0`` yields no
    chunks at all.
    """
    if chunk_edges <= 0:
        raise ConfigurationError(f"chunk_edges must be positive, got {chunk_edges}")
    if num_edges < 0:
        raise ConfigurationError(f"num_edges must be non-negative, got {num_edges}")
    chunks: list[Chunk] = []
    start = 0
    while start < num_edges:
        stop = min(start + chunk_edges, num_edges)
        chunks.append(Chunk(index=len(chunks), start=start, stop=stop))
        start = stop
    return chunks


def chunks_cover_exactly(chunks: Sequence[Chunk], num_edges: int) -> bool:
    """True when the chunks tile ``[0, num_edges)`` exactly once, in order."""
    expected = 0
    for chunk in chunks:
        if chunk.start != expected or chunk.stop < chunk.start:
            return False
        expected = chunk.stop
    return expected == num_edges


# ---------------------------------------------------------------------------
# chunk execution (picklable, placement-independent)
# ---------------------------------------------------------------------------


def chunk_seed(base_seed: int, chunk_index: int) -> int:
    """Deterministic per-chunk RNG seed, independent of the executing worker.

    Derived from the run seed and the *chunk id* with a
    :class:`numpy.random.SeedSequence`, never from the pool worker id or
    pid -- a persistent pool hands the same chunk to different workers on
    different runs, and replay must not care.
    """
    return int(np.random.SeedSequence([int(base_seed), int(chunk_index)]).generate_state(1)[0])


@dataclass(frozen=True)
class ChunkTask:
    """Everything a worker process needs to execute one chunk.

    The task carries plain data only (paths, sizes, descriptors, the frozen
    config), so it crosses a :class:`~concurrent.futures.ProcessPoolExecutor`
    boundary by pickle; the worker re-opens the on-disk graph from
    ``device_root``, or -- when ``shm`` carries a
    :class:`~repro.core.shm.SharedGraphDescriptor` -- attaches the published
    shared-memory segments and slices its windows zero-copy (no file I/O at
    all).  All replicas of the oriented graph are byte-identical and the
    MGT worker's I/O accounting is analytic, so the outcome is independent
    of which machine's copy (or which shared segment) the task reads.

    ``seed`` is the deterministic per-chunk seed (:func:`chunk_seed`);
    every stochastic worker-side effect (currently the host-jitter
    straggler injection) draws from it, so replay is reproducible no
    matter which pool worker picks the chunk up.
    """

    index: int
    device_root: str
    device_block_size: int
    disk_model: DiskModel
    graph_name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    config: PDTLConfig
    start: int
    stop: int
    sink_kind: str
    shm: SharedGraphDescriptor | None = None
    seed: int = 0
    #: pid of the process that built the task; lets a traced chunk decide
    #: whether it runs in a worker process (where per-task process-counter
    #: deltas are exact) or in the master (where the run-level delta wins)
    master_pid: int = 0

    @classmethod
    def from_graph(
        cls,
        index: int,
        graph: GraphFile,
        config: PDTLConfig,
        start: int,
        stop: int,
        sink_kind: str,
        shm: SharedGraphDescriptor | None = None,
    ) -> "ChunkTask":
        return cls(
            index=index,
            device_root=str(graph.device.root),
            device_block_size=graph.device.block_size,
            disk_model=graph.device.model,
            graph_name=graph.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            max_degree=graph.max_degree,
            config=config,
            start=start,
            stop=stop,
            sink_kind=sink_kind,
            shm=shm,
            seed=chunk_seed(config.seed, index),
            master_pid=os.getpid(),
        )

    def rng(self) -> np.random.Generator:
        """The chunk's private deterministic generator."""
        return np.random.default_rng(self.seed)


@dataclass
class ChunkOutcome:
    """The result of one chunk execution, keyed by chunk index for merging.

    ``triples`` holds the listed triangles as an ``(k, 3)`` int64 array when
    the sink kind is ``"list"``; ``per_vertex`` the per-vertex counts when it
    is ``"per-vertex"``; ``support_positions``/``support_counts`` the chunk's
    partial edge supports in sparse aggregated form (strictly increasing
    oriented-edge positions with their counts -- the shape both the dense
    and the budget-bound spilling :class:`~repro.core.triangles.EdgeSupportSink`
    produce) when it is ``"edge-support"``.  Arrays pickle cleanly, so the
    same payload shape serves every backend.
    """

    index: int
    result: MGTResult
    triangles: int
    triples: np.ndarray | None = None
    per_vertex: np.ndarray | None = None
    support_positions: np.ndarray | None = None
    support_counts: np.ndarray | None = None
    #: traced-run payload (empty/None when tracing is off): the chunk's span
    #: events and its host-cache counter deltas, both picklable plain data
    events: tuple[SpanEvent, ...] = ()
    counters: dict[str, float] | None = None


def execute_chunk_task(task: ChunkTask) -> ChunkOutcome:
    """Run modified MGT over one chunk; module-level so it pickles.

    Each execution gets a private sink and private I/O counters, so
    outcomes can be merged in chunk-index order without caring which
    worker, thread or process produced them -- the "deterministic merge
    regardless of completion order" half of the scheduler contract.

    With a shared-memory descriptor the chunk runs against a zero-copy
    :class:`~repro.core.shm.SharedGraphView` (attached once per process,
    then cached); otherwise it re-opens the on-disk graph.  Both paths
    feed the identical analytic accounting, so every modelled number is
    bit-identical between them.
    """
    trace = task.config.trace
    tracer = Tracer(track=f"chunk{task.index}") if trace else NULL_TRACER
    # process-global counters (shm attach cache, kernel dispatch) are only
    # delta'd per task inside a worker process, where tasks run one at a
    # time so the delta is exact; in the master process (serial/threads)
    # the runner's run-level delta covers them without double counting
    counters_before = (
        snapshot_process_counters()
        if trace and os.getpid() != task.master_pid
        else None
    )
    if task.config.host_jitter_seconds > 0.0:
        # deterministic straggler injection: the delay is a pure function
        # of the chunk id (never of the worker that happens to hold it),
        # and wall-clock only -- no modelled counter moves
        with tracer.span("jitter", cat="host"):
            time.sleep(
                float(task.rng().uniform(0.0, task.config.host_jitter_seconds))
            )
    device = None
    if task.shm is not None:
        graph = attach_view(task.shm, task.disk_model)
    else:
        device = BlockDevice(
            task.device_root,
            block_size=task.device_block_size,
            model=task.disk_model,
            mmap_reads=task.config.mmap_reads,
        )
        graph = GraphFile(
            device=device,
            name=task.graph_name,
            num_vertices=task.num_vertices,
            num_edges=task.num_edges,
            directed=True,
            max_degree=task.max_degree,
        )
    sink_kind = normalize_sink_kind(task.sink_kind)
    if sink_kind not in CHUNK_SINK_KINDS:
        raise ConfigurationError(
            f"sink kind {task.sink_kind!r} cannot run as a chunk task; "
            f"supported kinds: {', '.join(CHUNK_SINK_KINDS)}"
        )
    # single registry dispatch -- an unregistered kind raises in make_sink
    # instead of silently degrading to a default sink.  The edge-support
    # sink honours the worker's memory budget M: when the dense per-edge
    # support array would exceed it, positions spill as sorted runs to a
    # private host-side scratch file (below the modelled accounting) and
    # the outcome is assembled from the bounded external merge.
    spill_scratch: tempfile.TemporaryDirectory | None = None
    spill_device: BlockDevice | None = None
    if sink_kind == "edge-support":
        spill_scratch = tempfile.TemporaryDirectory(prefix="pdtl_spill_")
        spill_device = BlockDevice(
            spill_scratch.name,
            block_size=task.device_block_size,
            model=task.disk_model,
        )
        sink = make_sink(
            sink_kind,
            num_vertices=task.num_vertices,
            graph=graph,
            spill_file=spill_device.open("supports.run"),
            memory_budget_bytes=task.config.memory_per_proc,
        )
    else:
        sink = make_sink(sink_kind, num_vertices=task.num_vertices, graph=graph)
    try:
        worker = MGTWorker(
            graph,
            task.config,
            range_start=task.start,
            range_stop=task.stop,
            tracer=tracer,
        )
        with tracer.span(
            "chunk",
            cat="chunk",
            chunk=task.index,
            start=task.start,
            stop=task.stop,
            sink=sink_kind,
        ) as chunk_span:
            result = worker.run(sink)
            chunk_span.annotate(
                triangles=result.triangles, windows=result.iterations
            )
        triples: np.ndarray | None = None
        per_vertex: np.ndarray | None = None
        support_positions: np.ndarray | None = None
        support_counts: np.ndarray | None = None
        if sink_kind == "list":
            triples = np.array(
                [(t.cone, t.v, t.w) for t in sink.triangles], dtype=np.int64
            ).reshape(-1, 3)
        elif sink_kind == "per-vertex":
            per_vertex = sink.per_vertex
        elif sink_kind == "edge-support":
            parts = list(sink.iter_position_counts())
            if parts:
                support_positions = np.concatenate([p for p, _ in parts])
                support_counts = np.concatenate([c for _, c in parts])
            else:
                support_positions = np.empty(0, dtype=np.int64)
                support_counts = np.empty(0, dtype=np.int64)
    finally:
        if spill_scratch is not None:
            spill_scratch.cleanup()
    events: tuple[SpanEvent, ...] = ()
    counters: dict[str, float] | None = None
    if trace:
        events = tracer.events
        counters = {}
        if counters_before is not None:
            counters.update(
                counter_delta(snapshot_process_counters(), counters_before)
            )
        if device is not None:
            for key, value in device.host_counters.as_dict().items():
                if value:
                    counters[f"blockio.{key}"] = value
        if spill_device is not None:
            for key, value in spill_device.host_counters.as_dict().items():
                if value:
                    counters[f"spill.{key}"] = value
        if sink_kind == "edge-support":
            if sink.spill_run_count:
                counters["sink.spill_runs"] = sink.spill_run_count
                counters["sink.spilled_positions"] = sink.spilled_positions
    return ChunkOutcome(
        index=task.index,
        result=result,
        triangles=result.triangles,
        triples=triples,
        per_vertex=per_vertex,
        support_positions=support_positions,
        support_counts=support_counts,
        events=events,
        counters=counters,
    )


def merge_mgt_results(results: Sequence[MGTResult], block_size: int) -> MGTResult:
    """Fold the per-chunk results of one worker into a single report.

    Sums are taken in the given (chunk-index) order so the floating-point
    accumulation is reproducible.  ``range_start``/``range_stop`` become the
    envelope of the worker's chunks, which need not be contiguous under
    dynamic scheduling.
    """
    io_stats = IOStats(block_size=block_size)
    if not results:
        return MGTResult(
            triangles=0,
            iterations=0,
            cpu_seconds=0.0,
            io_seconds=0.0,
            io_stats=io_stats,
            intersections=0,
            edges_processed=0,
            range_start=0,
            range_stop=0,
            peak_memory_bytes=0,
            cpu_operations=0,
        )
    cpu = 0.0
    io = 0.0
    for result in results:
        cpu += result.cpu_seconds
        io += result.io_seconds
        io_stats.merge(result.io_stats)
    return MGTResult(
        triangles=sum(r.triangles for r in results),
        iterations=sum(r.iterations for r in results),
        cpu_seconds=cpu,
        io_seconds=io,
        io_stats=io_stats,
        intersections=sum(r.intersections for r in results),
        edges_processed=sum(r.edges_processed for r in results),
        range_start=min(r.range_start for r in results),
        range_stop=max(r.range_stop for r in results),
        peak_memory_bytes=max(r.peak_memory_bytes for r in results),
        cpu_operations=sum(r.cpu_operations for r in results),
    )


# ---------------------------------------------------------------------------
# the pull-based schedule
# ---------------------------------------------------------------------------


@dataclass
class ScheduleResult:
    """Who ran what, in modelled time, under the pull-based protocol.

    ``assignments[w]`` lists the chunk indices worker ``w`` completed, in
    pull order; ``stolen[w]`` counts how many of them a naive contiguous
    chunk split would have given to a different worker; ``retried[w]`` the
    chunks ``w`` re-executed after their original holder was killed.
    """

    assignments: list[list[int]]
    worker_seconds: list[float]
    stolen: list[int]
    retried: list[list[int]]
    failed_workers: list[int] = field(default_factory=list)
    #: queue depth observed at every pull attempt (including the pull on
    #: which a worker dies), in pull order -- deterministic observability
    queue_depths: list[int] = field(default_factory=list)

    @property
    def num_workers(self) -> int:
        return len(self.assignments)

    @property
    def max_queue_depth(self) -> int:
        return max(self.queue_depths, default=0)

    @property
    def total_steals(self) -> int:
        return sum(self.stolen)

    @property
    def total_retries(self) -> int:
        return sum(len(r) for r in self.retried)

    def owner_of(self) -> dict[int, int]:
        """Map every completed chunk index to the worker that completed it."""
        owners: dict[int, int] = {}
        for worker, indices in enumerate(self.assignments):
            for index in indices:
                owners[index] = worker
        return owners


class DynamicScheduler:
    """Deterministic replay of the pull-based chunk protocol in modelled time.

    Parameters
    ----------
    chunks:
        the window-aligned chunks, in file order; they seed the shared deque.
    num_workers:
        the ``N·P`` simulated processors pulling from the deque.
    failure_after:
        fault injection -- ``{worker: k}`` kills worker ``w`` the moment it
        pulls its ``k+1``-th chunk; the chunk it was holding goes to the back
        of the deque for the survivors (``k = 0`` means the worker dies on
        its very first pull and completes nothing).
    straggler_factors:
        heterogeneity injection -- ``{worker: factor}`` multiplies the
        modelled cost of every chunk that worker completes, modelling a slow
        machine; the greedy pull order automatically routes fewer chunks to
        it.

    :meth:`schedule` replays the protocol against the per-chunk modelled
    costs: the alive worker with the smallest accumulated time pulls the
    next chunk, which is exactly the completion-order behaviour of a real
    shared-queue crew.  The replay is a pure function of its inputs, so
    every backend (and every host) produces the same schedule.
    """

    def __init__(
        self,
        chunks: Sequence[Chunk],
        num_workers: int,
        failure_after: Mapping[int, int] | None = None,
        straggler_factors: Mapping[int, float] | None = None,
    ) -> None:
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        self.chunks = list(chunks)
        self.num_workers = int(num_workers)
        self.failure_after = dict(failure_after or {})
        self.straggler_factors = dict(straggler_factors or {})
        for worker in (*self.failure_after, *self.straggler_factors):
            if not 0 <= worker < self.num_workers:
                raise ConfigurationError(
                    f"injection spec names worker {worker}, but only "
                    f"{self.num_workers} workers exist"
                )

    def static_owners(self) -> list[int]:
        """The naive contiguous chunk split, the baseline for steal counting.

        Chunk ``c``'s *home* worker is the one a static equal split of the
        chunk list would assign it to; a pull by anyone else is a steal.
        """
        owners = [0] * len(self.chunks)
        for worker, (lo, hi) in enumerate(
            chunk_ranges(len(self.chunks), self.num_workers)
        ):
            for index in range(lo, hi):
                owners[index] = worker
        return owners

    def schedule(self, costs: Sequence[float]) -> ScheduleResult:
        """Replay the pull protocol against per-chunk modelled costs."""
        if len(costs) != len(self.chunks):
            raise ConfigurationError(
                f"got {len(costs)} costs for {len(self.chunks)} chunks"
            )
        pending: deque[Chunk] = deque(self.chunks)
        times = [0.0] * self.num_workers
        completed = [0] * self.num_workers
        alive = [True] * self.num_workers
        assignments: list[list[int]] = [[] for _ in range(self.num_workers)]
        stolen = [0] * self.num_workers
        retried: list[list[int]] = [[] for _ in range(self.num_workers)]
        failed_workers: list[int] = []
        needs_retry: set[int] = set()
        homes = self.static_owners()
        queue_depths: list[int] = []

        while pending:
            queue_depths.append(len(pending))
            puller = min(
                (w for w in range(self.num_workers) if alive[w]),
                key=lambda w: (times[w], w),
                default=None,
            )
            if puller is None:
                raise SchedulingError(
                    f"all {self.num_workers} workers were killed by the failure "
                    f"spec with {len(pending)} chunks still pending"
                )
            chunk = pending.popleft()
            threshold = self.failure_after.get(puller)
            if threshold is not None and completed[puller] >= threshold:
                # the worker dies holding this chunk: hand it to the survivors
                alive[puller] = False
                failed_workers.append(puller)
                needs_retry.add(chunk.index)
                pending.append(chunk)
                continue
            times[puller] += costs[chunk.index] * self.straggler_factors.get(
                puller, 1.0
            )
            completed[puller] += 1
            assignments[puller].append(chunk.index)
            if homes[chunk.index] != puller:
                stolen[puller] += 1
            if chunk.index in needs_retry:
                needs_retry.discard(chunk.index)
                retried[puller].append(chunk.index)

        return ScheduleResult(
            assignments=assignments,
            worker_seconds=times,
            stolen=stolen,
            retried=retried,
            failed_workers=failed_workers,
            queue_depths=queue_depths,
        )
