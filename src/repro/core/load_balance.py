"""Edge-range assignment: naive equal splits vs. in-degree load balancing.

PDTL assigns each of the ``N·P`` processors a *contiguous* range of the
oriented adjacency file; the processor finds every triangle whose pivot
edge lies in its range.  How the ranges are chosen matters a great deal
(Figure 9 reports up to 3× improvements):

* the **naive** split gives every processor the same number of edges;
* the **load-balanced** split (section IV-B1) weights each vertex's block
  of out-edges by the vertex's oriented *in-degree*
  ``d_G(v) − d_G*(v)``, because that in-degree counts how many cone
  vertices ``u`` will have ``v ∈ N⁺(u)`` and therefore how many sorted-array
  intersections the processor owning ``v``'s out-list will perform.  Ranges
  are chosen so these weights sum approximately equally while staying
  contiguous.

Ranges are expressed in *edge positions* of the oriented adjacency file
(half-open intervals), which is also the unit the master ships to the
workers in the PDTL protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import chunk_ranges, even_splits, prefix_sums

__all__ = ["EdgeRange", "naive_split", "balanced_split", "split_edges"]


@dataclass(frozen=True)
class EdgeRange:
    """A contiguous half-open range ``[start, stop)`` of oriented edge positions,
    assigned to processor ``proc_index`` on node ``node_index``."""

    node_index: int
    proc_index: int
    start: int
    stop: int

    @property
    def num_edges(self) -> int:
        return self.stop - self.start

    def __contains__(self, edge_position: int) -> bool:
        return self.start <= edge_position < self.stop


def _attach_owners(
    ranges: list[tuple[int, int]], num_nodes: int, procs_per_node: int
) -> list[EdgeRange]:
    """Wrap raw ranges with (node, proc) ownership in round-robin node order.

    The master assigns consecutive ranges to consecutive processors,
    filling each node's processors before moving to the next node, which is
    how the per-node breakdowns of Figures 7/8 group processors.
    """
    out: list[EdgeRange] = []
    for i, (start, stop) in enumerate(ranges):
        node = i // procs_per_node
        proc = i % procs_per_node
        out.append(EdgeRange(node_index=node, proc_index=proc, start=start, stop=stop))
    return out


def naive_split(
    num_edges: int, num_nodes: int, procs_per_node: int
) -> list[EdgeRange]:
    """Split ``num_edges`` positions into equal contiguous ranges."""
    total = num_nodes * procs_per_node
    ranges = chunk_ranges(num_edges, total)
    return _attach_owners(ranges, num_nodes, procs_per_node)


def balanced_split(
    out_degrees: np.ndarray,
    in_degrees: np.ndarray,
    num_nodes: int,
    procs_per_node: int,
) -> list[EdgeRange]:
    """In-degree-balanced contiguous split of the oriented adjacency file.

    Each edge position inherits the *in-degree of its source vertex* as its
    weight (a source with many incoming oriented edges will have its
    out-list intersected that many times); ranges then equalise total
    weight.  Boundaries are snapped onto vertex boundaries where possible so
    that a vertex's out-list is split across at most two processors, the
    same property the small-degree assumption gives the memory windows.
    """
    out_degrees = np.asarray(out_degrees, dtype=np.int64)
    in_degrees = np.asarray(in_degrees, dtype=np.int64)
    if out_degrees.shape != in_degrees.shape:
        raise ValueError("out_degrees and in_degrees must have the same shape")
    total_procs = num_nodes * procs_per_node
    num_edges = int(out_degrees.sum())
    if num_edges == 0:
        return _attach_owners(
            chunk_ranges(0, total_procs), num_nodes, procs_per_node
        )

    # Per-vertex weight: intersections against this vertex's out-list are
    # proportional to its in-degree; vertices with no out-edges never hold
    # pivot edges so they carry no weight.
    vertex_weights = np.where(out_degrees > 0, in_degrees, 0).astype(np.float64)
    # add a small constant per out-edge so empty-weight prefixes still get edges
    vertex_weights += out_degrees * 1e-3

    vertex_ranges = even_splits(vertex_weights, total_procs)
    offsets = prefix_sums(out_degrees)
    edge_ranges = [
        (int(offsets[lo]), int(offsets[hi])) for lo, hi in vertex_ranges
    ]
    # ensure full coverage of [0, num_edges) even with degenerate weights
    edge_ranges[0] = (0, edge_ranges[0][1])
    edge_ranges[-1] = (edge_ranges[-1][0], num_edges)
    # repair any inversions caused by snapping (can happen when many parts
    # collapse onto the same vertex boundary)
    fixed: list[tuple[int, int]] = []
    prev_stop = 0
    for start, stop in edge_ranges:
        start = max(start, prev_stop)
        stop = max(stop, start)
        fixed.append((start, stop))
        prev_stop = stop
    fixed[-1] = (fixed[-1][0], num_edges)
    return _attach_owners(fixed, num_nodes, procs_per_node)


def split_edges(
    num_edges: int,
    num_nodes: int,
    procs_per_node: int,
    out_degrees: np.ndarray | None = None,
    in_degrees: np.ndarray | None = None,
    load_balanced: bool = True,
) -> list[EdgeRange]:
    """Dispatch between :func:`naive_split` and :func:`balanced_split`.

    The load-balanced path needs the orientation's out- and in-degree
    arrays; callers that only have an edge count fall back to the naive
    split (this mirrors the paper's description of the naive
    implementation).
    """
    if load_balanced and out_degrees is not None and in_degrees is not None:
        return balanced_split(out_degrees, in_degrees, num_nodes, procs_per_node)
    return naive_split(num_edges, num_nodes, procs_per_node)


def ranges_cover_exactly(ranges: list[EdgeRange], num_edges: int) -> bool:
    """True when the ranges are contiguous, non-overlapping and cover
    ``[0, num_edges)`` exactly -- the invariant the property tests assert."""
    expected_start = 0
    for r in ranges:
        if r.start != expected_start or r.stop < r.start:
            return False
        expected_start = r.stop
    return expected_start == num_edges
