"""One-call entry points for the most common uses of the library.

These helpers wrap :class:`~repro.core.pdtl.PDTLRunner` for callers that
just want an answer:

>>> from repro import count_triangles
>>> from repro.graph.generators import complete_graph
>>> from repro.graph.csr import CSRGraph
>>> g = CSRGraph.from_edgelist(complete_graph(5))
>>> count_triangles(g).triangles
10
"""

from __future__ import annotations

from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLResult, PDTLRunner
from repro.graph.binfmt import GraphFile
from repro.graph.csr import CSRGraph

__all__ = [
    "count_triangles",
    "list_triangles",
    "triangle_counts_per_vertex",
    "edge_supports",
]


def _make_config(config: PDTLConfig | None, **overrides: object) -> PDTLConfig:
    if config is not None and overrides:
        raise ValueError("pass either a PDTLConfig or keyword overrides, not both")
    if config is not None:
        return config
    return PDTLConfig(**overrides)  # type: ignore[arg-type]


def count_triangles(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig | None = None,
    backend: str = "serial",
    **config_overrides: object,
) -> PDTLResult:
    """Count all triangles of an undirected graph with PDTL.

    ``config_overrides`` are forwarded to :class:`PDTLConfig`
    (``num_nodes=2, procs_per_node=4, memory_per_proc="8MB"`` ...).
    The host-side acceleration knobs compose freely here: ``shm=True``
    serves the triangle phase's memory windows zero-copy from shared
    memory, and ``parallel_preprocess=True`` fans the master's
    orientation scan out over the persistent process pool -- both are
    strictly below the accounting layer, so counts, IOStats and modelled
    times are identical with them on or off.
    """
    cfg = _make_config(config, **config_overrides)
    return PDTLRunner(cfg, backend=backend).run(graph, sink_kind="count")


def list_triangles(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig | None = None,
    backend: str = "serial",
    **config_overrides: object,
) -> PDTLResult:
    """List all triangles (the result's ``triangle_list`` holds them)."""
    cfg = _make_config(config, **config_overrides)
    if config is None and "count_only" not in config_overrides:
        cfg = PDTLConfig(**{**config_overrides, "count_only": False})  # type: ignore[arg-type]
    return PDTLRunner(cfg, backend=backend).run(graph, sink_kind="list")


def triangle_counts_per_vertex(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig | None = None,
    backend: str = "serial",
    **config_overrides: object,
) -> PDTLResult:
    """Per-vertex triangle counts (``per_vertex_counts`` on the result).

    This is the building block for clustering coefficients, transitivity,
    k-truss seeds and the other applications listed in the paper's
    introduction; see ``examples/clustering_coefficients.py``.
    """
    cfg = _make_config(config, **config_overrides)
    return PDTLRunner(cfg, backend=backend).run(graph, sink_kind="per-vertex")


def edge_supports(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig | None = None,
    backend: str = "serial",
    **config_overrides: object,
) -> PDTLResult:
    """Per-oriented-edge triangle supports (``edge_supports`` on the result,
    aligned with ``oriented_edges``).

    This is the input of the k-truss decomposition; see
    :func:`repro.analytics.run_analytics` for the full derived pipeline.

    Like :func:`list_triangles`, the run materialises per-worker output
    (the partial support arrays), so ``count_only`` defaults to False
    here and the result messages are charged at their real size.
    """
    cfg = _make_config(config, **config_overrides)
    if config is None and "count_only" not in config_overrides:
        cfg = PDTLConfig(**{**config_overrides, "count_only": False})  # type: ignore[arg-type]
    return PDTLRunner(cfg, backend=backend).run(graph, sink_kind="edge-support")
