"""Modified Massive Graph Triangulation (Algorithm 2 of the paper).

MGT finds every triangle of an oriented graph ``G*`` by streaming the
oriented adjacency file through a memory window of ``Θ(M)`` edges:

1. read the next window of out-edges into the array ``edg``, and record in
   ``ind`` the in-window offset and degree of every vertex whose out-list
   (or part of it) sits in the window;
2. scan the whole graph vertex by vertex; for each vertex ``u`` read its
   out-list ``N(u)`` into ``nm``, compute ``N⁺(u)`` (the out-neighbours
   that have out-edges inside the window) into ``nmp``, and for every
   ``v ∈ N⁺(u)`` report a triangle ``(u, v, w)`` for every
   ``w ∈ N(u) ∩ E_v`` where ``E_v`` is ``v``'s in-window out-list.

The paper's modification relative to Hu et al.'s high-level description is
that the membership structures are *sorted arrays*, not hash sets -- the
intersection ``N(u) ∩ E_v`` is a sorted-array intersection -- which in turn
requires the adjacency file to be sorted by source and destination.  This
module implements exactly that variant, with the intersection realised as
a vectorised ``searchsorted`` over numpy arrays.

:class:`MGTWorker` additionally supports the PDTL restriction to a
*contiguous edge range* ``[range_start, range_stop)``: only memory windows
drawn from that range are processed, so a worker finds exactly the
triangles whose pivot edge lies in its range.  Running a single worker over
the full range is the single-core MGT baseline of Figures 10/11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time

import numpy as np

from repro.core import kernel_backend, kernels
from repro.core.config import PDTLConfig
from repro.core.triangles import CountingSink, TriangleSink
from repro.errors import ConfigurationError
from repro.externalmem.iostats import IOStats
from repro.externalmem.memory import MemoryBudget
from repro.graph.binfmt import GraphFile
from repro.obs.tracer import NULL_TRACER
from repro.utils import ceil_div, prefix_sums

__all__ = ["MGTWorker", "MGTResult", "mgt_count"]

_ITEM_BYTES = 8  # int64 adjacency entries

#: Throughput used to convert the deterministic operation count (edges
#: scanned + intersection elements examined) into a modelled CPU time when
#: ``PDTLConfig.modelled_cpu`` is set.  The absolute value only scales the
#: time axis; relative comparisons (imbalance, speedups) are unaffected.
MODELLED_CPU_OPS_PER_SECOND = 2.5e8


@dataclass
class MGTResult:
    """Outcome and resource accounting of one MGT worker run.

    ``io_stats`` are the worker's *own* analytic I/O counters (blocks it
    read/wrote under the configured block size), independent of the shared
    device counters, so per-processor breakdowns remain exact even when
    many workers share one simulated disk.  ``cpu_seconds`` is the *thread
    CPU time* spent in the in-memory triangle computation (so concurrent
    workers do not inflate each other's numbers through GIL contention),
    ``io_seconds`` the modelled device time of the worker's reads -- the two
    series plotted against each other in Figures 6-8.
    """

    triangles: int
    iterations: int
    cpu_seconds: float
    io_seconds: float
    io_stats: IOStats
    intersections: int
    edges_processed: int
    range_start: int
    range_stop: int
    peak_memory_bytes: int
    cpu_operations: int = 0


class MGTWorker:
    """One MGT execution over a contiguous range of oriented edge positions.

    Parameters
    ----------
    oriented:
        the on-disk oriented graph (``directed`` must be True and adjacency
        sorted -- both are guaranteed by :func:`repro.core.orientation.orient_graph`),
        or a zero-copy :class:`~repro.core.shm.SharedGraphView` of one --
        both expose the same read API and feed the same analytic accounting.
    config:
        supplies the per-processor memory budget ``M``, the block size ``B``
        and the window fill fraction ``c``.
    range_start, range_stop:
        the half-open edge-position range this worker is responsible for;
        defaults to the whole file (single-core MGT).
    tracer:
        optional :class:`repro.obs.tracer.Tracer`; when given (and enabled)
        the worker records one ``kernel``-category span per memory window.
        Instrumentation only -- no accounted quantity depends on it.
    """

    def __init__(
        self,
        oriented: GraphFile,
        config: PDTLConfig,
        range_start: int = 0,
        range_stop: int | None = None,
        tracer=None,
    ) -> None:
        if not oriented.directed:
            raise ConfigurationError("MGTWorker requires an oriented graph file")
        # a private handle per worker: the read-ahead buffer must not be
        # shared between concurrent scanners
        self.graph = (
            oriented.with_readahead(config.readahead_bytes)
            if config.readahead_bytes
            else oriented
        )
        self.config = config
        # apply the kernel-tier knob here rather than in the runner: worker
        # processes construct their MGTWorker from the pickled config, so
        # this is the one seam every execution backend passes through
        kernel_backend.ensure(config.kernel_backend)
        self.range_start = int(range_start)
        self.range_stop = int(range_stop if range_stop is not None else oriented.num_edges)
        if not 0 <= self.range_start <= self.range_stop <= oriented.num_edges:
            raise ConfigurationError(
                f"invalid edge range [{self.range_start}, {self.range_stop}) for a "
                f"graph with {oriented.num_edges} oriented edges"
            )
        self.budget = MemoryBudget(config.memory_per_proc)
        self.io_stats = IOStats(block_size=config.block_size)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._window_edges = config.window_edges
        # Small-degree assumption (footnote 1): every oriented out-list must
        # fit inside one memory window, otherwise a vertex's list could span
        # more than two windows and the CPU analysis breaks down.
        if oriented.max_degree > self._window_edges:
            raise ConfigurationError(
                f"graph violates the small-degree assumption: d*_max="
                f"{oriented.max_degree} exceeds the window capacity of "
                f"{self._window_edges} edges; increase memory_per_proc"
            )

    # -- I/O accounting helpers --------------------------------------------------------

    def _charge_read(self, num_items: int, sequential: bool = True) -> None:
        if num_items <= 0:
            return
        nbytes = num_items * _ITEM_BYTES
        blocks = ceil_div(nbytes, self.config.block_size)
        self.io_stats.record_read(blocks, nbytes, sequential)
        self.io_stats.add_device_time(
            self.graph.device.model.transfer_time(nbytes, sequential)
        )

    # -- the algorithm ---------------------------------------------------------------

    def run(self, sink: TriangleSink | None = None) -> MGTResult:
        """Execute modified MGT over this worker's edge range.

        Returns an :class:`MGTResult`; reported triangles go to ``sink``
        (a fresh :class:`CountingSink` when omitted).
        """
        sink = sink if sink is not None else CountingSink()
        cpu_seconds = 0.0
        intersections = 0
        iterations = 0
        # Deterministic operation count: edges loaded/scanned plus gathered
        # intersection elements.  Unlike the measured thread time it is a pure
        # function of the input, so it backs the ``modelled_cpu`` mode.
        cpu_operations = 0

        # The degree file is scanned once to build the vertex offsets used to
        # address the adjacency file.  In the paper's implementation the
        # degree file is streamed alongside the adjacency file during each
        # scan, so it does not count against the per-processor budget M;
        # this implementation caches it for simplicity but, to keep the
        # memory accounting aligned with the paper's (edg + ind + nm + nmp),
        # does not charge it to the budget either.  A shared-memory graph
        # view publishes the offsets once per run; the worker still charges
        # the same modelled degree scan, it just skips the host-side work.
        offsets = getattr(self.graph, "cached_offsets", None)
        if offsets is None:
            offsets = prefix_sums(self.graph.read_degrees())
        self._charge_read(self.graph.num_vertices, sequential=True)

        # scratch arrays nm / nmp are bounded by d*_max (paper section IV-A1)
        dmax = max(self.graph.max_degree, 1)
        self.budget.allocate("nm", dmax * _ITEM_BYTES)
        self.budget.allocate("nmp", dmax * _ITEM_BYTES)

        window_start = self.range_start
        total_range = self.range_stop - self.range_start
        edges_processed = 0

        # A shared-memory graph view publishes the scan invariants (per-entry
        # sources + globally sorted packed keys); with those and the whole
        # adjacency memory-resident, the full-graph scan of each window runs
        # as ONE fused vectorised pass over just the window's candidate
        # entries instead of a per-block loop over the whole file.  The
        # modelled reads are still charged block by block, identically.
        scan_sources = getattr(self.graph, "scan_sources", None)
        scan_keys = getattr(self.graph, "scan_keys", None)
        fused_scan = scan_sources is not None and scan_keys is not None
        scan_plan: _SharedScanPlan | None = None
        if fused_scan:
            t0 = time.thread_time()
            scan_plan = self._build_shared_scan_plan(offsets)
            cpu_seconds += time.thread_time() - t0

        # hot loop: only build window spans when tracing is actually on, so
        # the disabled path costs one attribute load per run, not per window
        traced = self._tracer.enabled

        while window_start < self.range_stop:
            window_stop = min(window_start + self._window_edges, self.range_stop)
            iterations += 1
            edges_processed += window_stop - window_start
            cpu_operations += window_stop - window_start
            window_span = (
                self._tracer.span(
                    "window",
                    cat="kernel",
                    window=iterations - 1,
                    start=window_start,
                    stop=window_stop,
                )
                if traced
                else None
            )

            # ---- load the window: edg + ind -------------------------------------
            edg = self.graph.read_adjacency_range(
                window_start, window_stop - window_start
            )
            self._charge_read(window_stop - window_start, sequential=True)
            self.budget.allocate("edg", edg.nbytes)

            t0 = time.thread_time()
            # vertices whose out-lists overlap this window
            vlow = int(np.searchsorted(offsets, window_start, side="right")) - 1
            vhigh = int(np.searchsorted(offsets, window_stop, side="left")) - 1
            vhigh = max(vhigh, vlow)
            span = vhigh - vlow + 1
            # ind: per-vertex (offset into edg, in-window degree)
            win_offsets = np.zeros(span, dtype=np.int64)
            win_degrees = np.zeros(span, dtype=np.int64)
            vs = np.arange(vlow, vhigh + 1, dtype=np.int64)
            starts = np.maximum(offsets[vs], window_start)
            stops = np.minimum(offsets[vs + 1], window_stop)
            lengths = np.maximum(stops - starts, 0)
            win_offsets[:] = starts - window_start
            win_degrees[:] = lengths
            self.budget.allocate("ind", win_offsets.nbytes + win_degrees.nbytes)
            cpu_seconds += time.thread_time() - t0

            # ---- scan the whole graph vertex by vertex ----------------------------
            scan_block_vertices = max(
                self.config.block_items // 2, 1024
            )  # batch reads to keep the scan sequential
            if scan_plan is not None:
                # charge the exact per-block modelled reads of the streaming
                # scan (same batching, same block counts, same device time),
                # then evaluate the whole scan in one vectorised pass
                v = 0
                while v < self.graph.num_vertices:
                    hi = min(v + scan_block_vertices, self.graph.num_vertices)
                    block_edge_count = int(offsets[hi] - offsets[v])
                    if block_edge_count:
                        self._charge_read(block_edge_count, sequential=True)
                    v = hi
                t0 = time.thread_time()
                window_index = (window_start - self.range_start) // self._window_edges
                pairs, window_ops = self._process_window_shared(
                    sink,
                    scan_sources,
                    scan_keys,
                    candidates=scan_plan.window_candidates(window_index),
                    edg=edg,
                    vlow=vlow,
                    vhigh=vhigh,
                    win_offsets=win_offsets,
                    win_degrees=win_degrees,
                )
                intersections += pairs
                cpu_operations += window_ops
                cpu_seconds += time.thread_time() - t0
                self.budget.release("edg")
                self.budget.release("ind")
                if window_span is not None:
                    window_span.end(pairs=pairs)
                window_start = window_stop
                continue
            v = 0
            while v < self.graph.num_vertices:
                hi = min(v + scan_block_vertices, self.graph.num_vertices)
                block_start_edge = int(offsets[v])
                block_edge_count = int(offsets[hi] - offsets[v])
                if block_edge_count:
                    block_adj = self.graph.read_adjacency_range(
                        block_start_edge, block_edge_count
                    )
                    self._charge_read(block_edge_count, sequential=True)
                else:
                    block_adj = np.empty(0, dtype=np.int64)

                t0 = time.thread_time()
                block_offsets = offsets[v : hi + 1] - offsets[v]
                pairs, block_ops = self._process_block(
                    sink,
                    block_adj,
                    block_offsets,
                    first_vertex=v,
                    edg=edg,
                    vlow=vlow,
                    vhigh=vhigh,
                    win_offsets=win_offsets,
                    win_degrees=win_degrees,
                )
                intersections += pairs
                cpu_operations += block_ops
                cpu_seconds += time.thread_time() - t0
                v = hi

            self.budget.release("edg")
            self.budget.release("ind")
            if window_span is not None:
                window_span.end()
            window_start = window_stop

        peak = self.budget.peak_usage
        self.budget.release_all()
        if self.config.modelled_cpu:
            cpu_seconds = cpu_operations / MODELLED_CPU_OPS_PER_SECOND
        return MGTResult(
            triangles=sink.count,
            iterations=iterations,
            cpu_seconds=cpu_seconds,
            io_seconds=self.io_stats.device_seconds,
            io_stats=self.io_stats.snapshot(),
            intersections=intersections,
            edges_processed=edges_processed,
            range_start=self.range_start,
            range_stop=self.range_stop,
            peak_memory_bytes=peak,
            cpu_operations=cpu_operations,
        )


    def _process_block(
        self,
        sink: TriangleSink,
        block_adj: np.ndarray,
        block_offsets: np.ndarray,
        first_vertex: int,
        edg: np.ndarray,
        vlow: int,
        vhigh: int,
        win_offsets: np.ndarray,
        win_degrees: np.ndarray,
    ) -> tuple[int, int]:
        """Run the MGT inner loop for one scanned block of cone vertices.

        The loop body of Algorithm 2 -- build ``N⁺(u)`` and intersect
        ``N(u) ∩ E_v`` for every ``v ∈ N⁺(u)`` -- is evaluated for *all* cone
        vertices of the block at once with array operations:

        1. mark every adjacency entry ``(u, v)`` whose ``v`` has out-edges in
           the current memory window (these are exactly the ``N⁺(u)``
           memberships);
        2. gather the in-window out-lists ``E_v`` of all marked pairs into one
           flat array (:func:`repro.core.kernels.segment_gather`);
        3. test membership ``w ∈ N(u)`` for all gathered elements with a
           single binary search against the block's (sorted) packed ``(u, w)``
           key array (:func:`repro.core.kernels.sorted_membership`) -- the
           same sorted-array intersection the paper's modified MGT performs,
           just batched.

        The gather/membership machinery is shared with the in-memory
        baselines through :mod:`repro.core.kernels`; the only MGT-specific
        part is that ``E_v`` segments come from the memory window ``edg``
        addressed by ``win_offsets``/``win_degrees`` rather than from the
        full adjacency.

        Returns ``(pairs, operations)``: the number of (cone, out-neighbour)
        pairs intersected -- the Σ|N⁺(u)| term of the CPU analysis -- and the
        deterministic operation count (block entries scanned plus gathered
        ``E_v`` elements) that backs the modelled CPU time.
        """
        if block_adj.shape[0] == 0:
            return 0, 0
        scanned = int(block_adj.shape[0])

        # compiled tier: the whole 3-step chain below runs as one fused loop
        # over the block's adjacency entries -- no candidate mask, no gathered
        # E_v array, no packed keys.  Emission order, pair count and the
        # scanned + gathered operation count are identical by contract.
        fused_scan = kernel_backend.fused("mgt_block_scan")
        if fused_scan is not None:
            count_only = type(sink) is CountingSink
            num_pairs, total, hits, cones_rel, pivots_v, pivots_w = fused_scan(
                block_adj,
                block_offsets,
                edg,
                vlow,
                vhigh,
                win_offsets,
                win_degrees,
                not count_only,
            )
            if hits:
                if count_only:
                    sink.count += hits
                else:
                    sink.add_triples(
                        cones_rel + np.int64(first_vertex), pivots_v, pivots_w
                    )
            return num_pairs, scanned + total

        num_block_vertices = block_offsets.shape[0] - 1

        # step 1: candidate (u, v) pairs
        in_span = (block_adj >= vlow) & (block_adj <= vhigh)
        cand_mask = np.zeros(block_adj.shape[0], dtype=bool)
        if in_span.any():
            cand_mask[in_span] = win_degrees[block_adj[in_span] - vlow] > 0
        if not cand_mask.any():
            return 0, scanned
        block_degrees = (block_offsets[1:] - block_offsets[:-1]).astype(np.int64)
        entry_sources = np.repeat(
            np.arange(num_block_vertices, dtype=np.int64), block_degrees
        )
        pair_u = entry_sources[cand_mask]          # cone vertex (block-relative)
        pair_v = block_adj[cand_mask]              # out-neighbour with in-window edges
        num_pairs = int(pair_u.shape[0])

        # step 2: gather E_v for every pair into one flat array
        seg_lengths = win_degrees[pair_v - vlow]
        total = int(seg_lengths.sum())
        if total == 0:
            return num_pairs, scanned
        seg_starts = win_offsets[pair_v - vlow]
        ev_all, pair_ids = kernels.segment_gather(edg, seg_starts, seg_lengths)

        # step 3: membership w ∈ N(u) via one binary search on packed keys.
        # The block's adjacency is sorted by (source, destination), so the
        # packed keys are sorted and the query (u, w) hits exactly when the
        # edge (u, w) is present in the block.
        n = self.graph.num_vertices
        block_keys = kernels.packed_keys(entry_sources, block_adj, n)
        query_keys = kernels.packed_keys(pair_u[pair_ids], ev_all, n)
        found = kernels.sorted_membership(block_keys, query_keys)
        if found.any():
            cones = pair_u[pair_ids[found]] + first_vertex
            pivots_v = pair_v[pair_ids[found]]
            pivots_w = ev_all[found]
            sink.add_triples(cones, pivots_v, pivots_w)
        return num_pairs, scanned + total

    def _build_shared_scan_plan(self, offsets: np.ndarray) -> "_SharedScanPlan":
        """Bucket every adjacency entry by the memory windows it scans into.

        An entry ``(u, v)`` at position ``p`` is a candidate pair of window
        ``k`` exactly when ``v``'s out-list ``[offsets[v], offsets[v+1])``
        overlaps the window's edge range -- the same condition the
        streaming scan evaluates per block as ``v ∈ [vlow, vhigh]`` and
        ``win_degrees[v - vlow] > 0``.  Because the small-degree assumption
        bounds every out-list by one window capacity, a list overlaps at
        most **two consecutive** windows, so one stable radix sort of the
        active positions by first window (plus a small spill bucket for the
        straddlers) yields every window's candidate list up front; the
        per-window scan then touches only its candidates instead of the
        whole file.
        """
        adjacency = self.graph.read_adjacency_range(0, self.graph.num_edges)
        window = self._window_edges
        rs, rstop = self.range_start, self.range_stop
        if adjacency.shape[0] == 0 or rstop <= rs:
            return _SharedScanPlan.empty()
        nbr_start = offsets[adjacency]
        nbr_stop = offsets[adjacency + 1]
        lo = np.maximum(nbr_start, rs)
        hi = np.minimum(nbr_stop, rstop)
        pos = np.nonzero(lo < hi)[0]  # entries whose target list meets the range
        first = (lo[pos] - rs) // window
        last = (hi[pos] - 1 - rs) // window
        order = np.argsort(first, kind="stable")  # radix sort: positions stay sorted per bucket
        num_windows = ceil_div(rstop - rs, window)
        boundaries = np.arange(num_windows + 1, dtype=np.int64)
        straddlers = np.nonzero(last > first)[0]
        spill_order = straddlers[np.argsort(last[straddlers], kind="stable")]
        return _SharedScanPlan(
            positions=pos[order],
            bucket_bounds=np.searchsorted(first[order], boundaries),
            spill_positions=pos[spill_order],
            spill_bounds=np.searchsorted(last[spill_order], boundaries),
        )

    def _process_window_shared(
        self,
        sink: TriangleSink,
        entry_sources: np.ndarray,
        adj_keys: np.ndarray,
        candidates: np.ndarray,
        edg: np.ndarray,
        vlow: int,
        vhigh: int,
        win_offsets: np.ndarray,
        win_degrees: np.ndarray,
    ) -> tuple[int, int]:
        """The fused full-graph scan of one memory window (shared-memory path).

        Semantically identical to running :meth:`_process_block` over every
        scan block in order -- candidate pairs are enumerated in adjacency
        position order (the concatenation of the per-block orders), the
        gathered ``E_v`` segments follow their pairs, and the membership
        test is the same packed-key binary search, just against the
        published whole-graph key array instead of each block's slice (the
        keys partition by source vertex, so block-local and global
        membership coincide).  Triangle counts, emission order, the pair
        count and the deterministic operation count (whole file scanned
        plus gathered elements) are all bit-identical to the streaming
        path; only the host-side work changes -- no reads, no per-block
        ``packed_keys`` rebuild, one numpy pass over the precomputed
        candidates per window.
        """
        scanned = self.graph.num_edges
        num_pairs = int(candidates.shape[0])
        if num_pairs == 0:
            return 0, scanned
        adjacency = self.graph.read_adjacency_range(0, self.graph.num_edges)
        pair_v = adjacency[candidates]           # out-neighbour with in-window edges
        seg_lengths = win_degrees[pair_v - vlow]
        total = int(seg_lengths.sum())
        seg_starts = win_offsets[pair_v - vlow]
        ev_all, pair_ids = kernels.segment_gather(edg, seg_starts, seg_lengths)
        pair_u = entry_sources[candidates]       # cone vertices (global ids)
        query_keys = kernels.packed_keys(
            pair_u[pair_ids], ev_all, self.graph.num_vertices
        )
        found = kernels.sorted_membership(adj_keys, query_keys)
        if found.any():
            sink.add_triples(
                pair_u[pair_ids[found]], pair_v[pair_ids[found]], ev_all[found]
            )
        return num_pairs, scanned + total


@dataclass
class _SharedScanPlan:
    """Per-window candidate positions for the fused shared-memory scan.

    ``positions`` holds the active adjacency positions stably sorted by the
    first window their target's out-list overlaps, ``bucket_bounds[k]``
    delimiting window ``k``'s slice; ``spill_positions``/``spill_bounds``
    hold the straddlers (lists crossing one window boundary) bucketed by
    their *second* window.  Window ``k``'s candidates are the union of its
    bucket and its spill, re-sorted to adjacency position order so the
    emission order matches the streaming scan exactly.
    """

    positions: np.ndarray
    bucket_bounds: np.ndarray
    spill_positions: np.ndarray
    spill_bounds: np.ndarray

    @classmethod
    def empty(cls) -> "_SharedScanPlan":
        return cls(
            positions=np.empty(0, dtype=np.int64),
            bucket_bounds=np.zeros(1, dtype=np.int64),
            spill_positions=np.empty(0, dtype=np.int64),
            spill_bounds=np.zeros(1, dtype=np.int64),
        )

    def window_candidates(self, window_index: int) -> np.ndarray:
        if window_index + 1 >= self.bucket_bounds.shape[0]:
            return np.empty(0, dtype=np.int64)
        lo, hi = self.bucket_bounds[window_index], self.bucket_bounds[window_index + 1]
        bucket = self.positions[lo:hi]
        slo = self.spill_bounds[window_index]
        shi = self.spill_bounds[window_index + 1]
        if shi == slo:
            return bucket
        return np.sort(np.concatenate((bucket, self.spill_positions[slo:shi])))


def mgt_count(
    oriented: GraphFile,
    config: PDTLConfig | None = None,
    sink: TriangleSink | None = None,
) -> MGTResult:
    """Run single-core MGT over a whole oriented on-disk graph.

    This is the baseline the paper compares PDTL against in Figures 10/11;
    it is literally PDTL with ``N = P = 1``.
    """
    config = config if config is not None else PDTLConfig()
    worker = MGTWorker(oriented, config)
    return worker.run(sink)
