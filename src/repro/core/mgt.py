"""Modified Massive Graph Triangulation (Algorithm 2 of the paper).

MGT finds every triangle of an oriented graph ``G*`` by streaming the
oriented adjacency file through a memory window of ``Θ(M)`` edges:

1. read the next window of out-edges into the array ``edg``, and record in
   ``ind`` the in-window offset and degree of every vertex whose out-list
   (or part of it) sits in the window;
2. scan the whole graph vertex by vertex; for each vertex ``u`` read its
   out-list ``N(u)`` into ``nm``, compute ``N⁺(u)`` (the out-neighbours
   that have out-edges inside the window) into ``nmp``, and for every
   ``v ∈ N⁺(u)`` report a triangle ``(u, v, w)`` for every
   ``w ∈ N(u) ∩ E_v`` where ``E_v`` is ``v``'s in-window out-list.

The paper's modification relative to Hu et al.'s high-level description is
that the membership structures are *sorted arrays*, not hash sets -- the
intersection ``N(u) ∩ E_v`` is a sorted-array intersection -- which in turn
requires the adjacency file to be sorted by source and destination.  This
module implements exactly that variant, with the intersection realised as
a vectorised ``searchsorted`` over numpy arrays.

:class:`MGTWorker` additionally supports the PDTL restriction to a
*contiguous edge range* ``[range_start, range_stop)``: only memory windows
drawn from that range are processed, so a worker finds exactly the
triangles whose pivot edge lies in its range.  Running a single worker over
the full range is the single-core MGT baseline of Figures 10/11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time

import numpy as np

from repro.core import kernels
from repro.core.config import PDTLConfig
from repro.core.triangles import CountingSink, TriangleSink
from repro.errors import ConfigurationError
from repro.externalmem.iostats import IOStats
from repro.externalmem.memory import MemoryBudget
from repro.graph.binfmt import GraphFile
from repro.utils import ceil_div, prefix_sums

__all__ = ["MGTWorker", "MGTResult", "mgt_count"]

_ITEM_BYTES = 8  # int64 adjacency entries

#: Throughput used to convert the deterministic operation count (edges
#: scanned + intersection elements examined) into a modelled CPU time when
#: ``PDTLConfig.modelled_cpu`` is set.  The absolute value only scales the
#: time axis; relative comparisons (imbalance, speedups) are unaffected.
MODELLED_CPU_OPS_PER_SECOND = 2.5e8


@dataclass
class MGTResult:
    """Outcome and resource accounting of one MGT worker run.

    ``io_stats`` are the worker's *own* analytic I/O counters (blocks it
    read/wrote under the configured block size), independent of the shared
    device counters, so per-processor breakdowns remain exact even when
    many workers share one simulated disk.  ``cpu_seconds`` is the *thread
    CPU time* spent in the in-memory triangle computation (so concurrent
    workers do not inflate each other's numbers through GIL contention),
    ``io_seconds`` the modelled device time of the worker's reads -- the two
    series plotted against each other in Figures 6-8.
    """

    triangles: int
    iterations: int
    cpu_seconds: float
    io_seconds: float
    io_stats: IOStats
    intersections: int
    edges_processed: int
    range_start: int
    range_stop: int
    peak_memory_bytes: int
    cpu_operations: int = 0


class MGTWorker:
    """One MGT execution over a contiguous range of oriented edge positions.

    Parameters
    ----------
    oriented:
        the on-disk oriented graph (``directed`` must be True and adjacency
        sorted -- both are guaranteed by :func:`repro.core.orientation.orient_graph`).
    config:
        supplies the per-processor memory budget ``M``, the block size ``B``
        and the window fill fraction ``c``.
    range_start, range_stop:
        the half-open edge-position range this worker is responsible for;
        defaults to the whole file (single-core MGT).
    """

    def __init__(
        self,
        oriented: GraphFile,
        config: PDTLConfig,
        range_start: int = 0,
        range_stop: int | None = None,
    ) -> None:
        if not oriented.directed:
            raise ConfigurationError("MGTWorker requires an oriented graph file")
        # a private handle per worker: the read-ahead buffer must not be
        # shared between concurrent scanners
        self.graph = (
            oriented.with_readahead(config.readahead_bytes)
            if config.readahead_bytes
            else oriented
        )
        self.config = config
        self.range_start = int(range_start)
        self.range_stop = int(range_stop if range_stop is not None else oriented.num_edges)
        if not 0 <= self.range_start <= self.range_stop <= oriented.num_edges:
            raise ConfigurationError(
                f"invalid edge range [{self.range_start}, {self.range_stop}) for a "
                f"graph with {oriented.num_edges} oriented edges"
            )
        self.budget = MemoryBudget(config.memory_per_proc)
        self.io_stats = IOStats(block_size=config.block_size)
        self._window_edges = config.window_edges
        # Small-degree assumption (footnote 1): every oriented out-list must
        # fit inside one memory window, otherwise a vertex's list could span
        # more than two windows and the CPU analysis breaks down.
        if oriented.max_degree > self._window_edges:
            raise ConfigurationError(
                f"graph violates the small-degree assumption: d*_max="
                f"{oriented.max_degree} exceeds the window capacity of "
                f"{self._window_edges} edges; increase memory_per_proc"
            )

    # -- I/O accounting helpers --------------------------------------------------------

    def _charge_read(self, num_items: int, sequential: bool = True) -> None:
        if num_items <= 0:
            return
        nbytes = num_items * _ITEM_BYTES
        blocks = ceil_div(nbytes, self.config.block_size)
        self.io_stats.record_read(blocks, nbytes, sequential)
        self.io_stats.add_device_time(
            self.graph.device.model.transfer_time(nbytes, sequential)
        )

    # -- the algorithm ---------------------------------------------------------------

    def run(self, sink: TriangleSink | None = None) -> MGTResult:
        """Execute modified MGT over this worker's edge range.

        Returns an :class:`MGTResult`; reported triangles go to ``sink``
        (a fresh :class:`CountingSink` when omitted).
        """
        sink = sink if sink is not None else CountingSink()
        cpu_seconds = 0.0
        intersections = 0
        iterations = 0
        # Deterministic operation count: edges loaded/scanned plus gathered
        # intersection elements.  Unlike the measured thread time it is a pure
        # function of the input, so it backs the ``modelled_cpu`` mode.
        cpu_operations = 0

        # The degree file is scanned once to build the vertex offsets used to
        # address the adjacency file.  In the paper's implementation the
        # degree file is streamed alongside the adjacency file during each
        # scan, so it does not count against the per-processor budget M;
        # this implementation caches it for simplicity but, to keep the
        # memory accounting aligned with the paper's (edg + ind + nm + nmp),
        # does not charge it to the budget either.
        degrees = self.graph.read_degrees()
        self._charge_read(self.graph.num_vertices, sequential=True)
        offsets = prefix_sums(degrees)

        # scratch arrays nm / nmp are bounded by d*_max (paper section IV-A1)
        dmax = max(self.graph.max_degree, 1)
        self.budget.allocate("nm", dmax * _ITEM_BYTES)
        self.budget.allocate("nmp", dmax * _ITEM_BYTES)

        window_start = self.range_start
        total_range = self.range_stop - self.range_start
        edges_processed = 0

        while window_start < self.range_stop:
            window_stop = min(window_start + self._window_edges, self.range_stop)
            iterations += 1
            edges_processed += window_stop - window_start
            cpu_operations += window_stop - window_start

            # ---- load the window: edg + ind -------------------------------------
            edg = self.graph.read_adjacency_range(
                window_start, window_stop - window_start
            )
            self._charge_read(window_stop - window_start, sequential=True)
            self.budget.allocate("edg", edg.nbytes)

            t0 = time.thread_time()
            # vertices whose out-lists overlap this window
            vlow = int(np.searchsorted(offsets, window_start, side="right")) - 1
            vhigh = int(np.searchsorted(offsets, window_stop, side="left")) - 1
            vhigh = max(vhigh, vlow)
            span = vhigh - vlow + 1
            # ind: per-vertex (offset into edg, in-window degree)
            win_offsets = np.zeros(span, dtype=np.int64)
            win_degrees = np.zeros(span, dtype=np.int64)
            vs = np.arange(vlow, vhigh + 1, dtype=np.int64)
            starts = np.maximum(offsets[vs], window_start)
            stops = np.minimum(offsets[vs + 1], window_stop)
            lengths = np.maximum(stops - starts, 0)
            win_offsets[:] = starts - window_start
            win_degrees[:] = lengths
            self.budget.allocate("ind", win_offsets.nbytes + win_degrees.nbytes)
            cpu_seconds += time.thread_time() - t0

            # ---- scan the whole graph vertex by vertex ----------------------------
            scan_block_vertices = max(
                self.config.block_items // 2, 1024
            )  # batch reads to keep the scan sequential
            v = 0
            while v < self.graph.num_vertices:
                hi = min(v + scan_block_vertices, self.graph.num_vertices)
                block_start_edge = int(offsets[v])
                block_edge_count = int(offsets[hi] - offsets[v])
                if block_edge_count:
                    block_adj = self.graph.read_adjacency_range(
                        block_start_edge, block_edge_count
                    )
                    self._charge_read(block_edge_count, sequential=True)
                else:
                    block_adj = np.empty(0, dtype=np.int64)

                t0 = time.thread_time()
                block_offsets = offsets[v : hi + 1] - offsets[v]
                pairs, block_ops = self._process_block(
                    sink,
                    block_adj,
                    block_offsets,
                    first_vertex=v,
                    edg=edg,
                    vlow=vlow,
                    vhigh=vhigh,
                    win_offsets=win_offsets,
                    win_degrees=win_degrees,
                )
                intersections += pairs
                cpu_operations += block_ops
                cpu_seconds += time.thread_time() - t0
                v = hi

            self.budget.release("edg")
            self.budget.release("ind")
            window_start = window_stop

        peak = self.budget.peak_usage
        self.budget.release_all()
        if self.config.modelled_cpu:
            cpu_seconds = cpu_operations / MODELLED_CPU_OPS_PER_SECOND
        return MGTResult(
            triangles=sink.count,
            iterations=iterations,
            cpu_seconds=cpu_seconds,
            io_seconds=self.io_stats.device_seconds,
            io_stats=self.io_stats.snapshot(),
            intersections=intersections,
            edges_processed=edges_processed,
            range_start=self.range_start,
            range_stop=self.range_stop,
            peak_memory_bytes=peak,
            cpu_operations=cpu_operations,
        )


    def _process_block(
        self,
        sink: TriangleSink,
        block_adj: np.ndarray,
        block_offsets: np.ndarray,
        first_vertex: int,
        edg: np.ndarray,
        vlow: int,
        vhigh: int,
        win_offsets: np.ndarray,
        win_degrees: np.ndarray,
    ) -> tuple[int, int]:
        """Run the MGT inner loop for one scanned block of cone vertices.

        The loop body of Algorithm 2 -- build ``N⁺(u)`` and intersect
        ``N(u) ∩ E_v`` for every ``v ∈ N⁺(u)`` -- is evaluated for *all* cone
        vertices of the block at once with array operations:

        1. mark every adjacency entry ``(u, v)`` whose ``v`` has out-edges in
           the current memory window (these are exactly the ``N⁺(u)``
           memberships);
        2. gather the in-window out-lists ``E_v`` of all marked pairs into one
           flat array (:func:`repro.core.kernels.segment_gather`);
        3. test membership ``w ∈ N(u)`` for all gathered elements with a
           single binary search against the block's (sorted) packed ``(u, w)``
           key array (:func:`repro.core.kernels.sorted_membership`) -- the
           same sorted-array intersection the paper's modified MGT performs,
           just batched.

        The gather/membership machinery is shared with the in-memory
        baselines through :mod:`repro.core.kernels`; the only MGT-specific
        part is that ``E_v`` segments come from the memory window ``edg``
        addressed by ``win_offsets``/``win_degrees`` rather than from the
        full adjacency.

        Returns ``(pairs, operations)``: the number of (cone, out-neighbour)
        pairs intersected -- the Σ|N⁺(u)| term of the CPU analysis -- and the
        deterministic operation count (block entries scanned plus gathered
        ``E_v`` elements) that backs the modelled CPU time.
        """
        if block_adj.shape[0] == 0:
            return 0, 0
        scanned = int(block_adj.shape[0])
        num_block_vertices = block_offsets.shape[0] - 1

        # step 1: candidate (u, v) pairs
        in_span = (block_adj >= vlow) & (block_adj <= vhigh)
        cand_mask = np.zeros(block_adj.shape[0], dtype=bool)
        if in_span.any():
            cand_mask[in_span] = win_degrees[block_adj[in_span] - vlow] > 0
        if not cand_mask.any():
            return 0, scanned
        block_degrees = (block_offsets[1:] - block_offsets[:-1]).astype(np.int64)
        entry_sources = np.repeat(
            np.arange(num_block_vertices, dtype=np.int64), block_degrees
        )
        pair_u = entry_sources[cand_mask]          # cone vertex (block-relative)
        pair_v = block_adj[cand_mask]              # out-neighbour with in-window edges
        num_pairs = int(pair_u.shape[0])

        # step 2: gather E_v for every pair into one flat array
        seg_lengths = win_degrees[pair_v - vlow]
        total = int(seg_lengths.sum())
        if total == 0:
            return num_pairs, scanned
        seg_starts = win_offsets[pair_v - vlow]
        ev_all, pair_ids = kernels.segment_gather(edg, seg_starts, seg_lengths)

        # step 3: membership w ∈ N(u) via one binary search on packed keys.
        # The block's adjacency is sorted by (source, destination), so the
        # packed keys are sorted and the query (u, w) hits exactly when the
        # edge (u, w) is present in the block.
        n = self.graph.num_vertices
        block_keys = kernels.packed_keys(entry_sources, block_adj, n)
        query_keys = kernels.packed_keys(pair_u[pair_ids], ev_all, n)
        found = kernels.sorted_membership(block_keys, query_keys)
        if found.any():
            cones = pair_u[pair_ids[found]] + first_vertex
            pivots_v = pair_v[pair_ids[found]]
            pivots_w = ev_all[found]
            sink.add_triples(cones, pivots_v, pivots_w)
        return num_pairs, scanned + total


def mgt_count(
    oriented: GraphFile,
    config: PDTLConfig | None = None,
    sink: TriangleSink | None = None,
) -> MGTResult:
    """Run single-core MGT over a whole oriented on-disk graph.

    This is the baseline the paper compares PDTL against in Figures 10/11;
    it is literally PDTL with ``N = P = 1``.
    """
    config = config if config is not None else PDTLConfig()
    worker = MGTWorker(oriented, config)
    return worker.run(sink)
