"""Degree-based ordering and graph orientation (Definition III.2, section IV-B1).

The degree-based strict total order ``≺`` on vertices is

    ``u ≺ v``  iff  ``d(u) < d(v)``  or  (``d(u) == d(v)`` and ``u < v``),

and the orientation ``G*`` keeps exactly the edges ``(u, v)`` with
``u ≺ v``.  Orientation is the master's preprocessing step: it is measured
separately in the paper (Table II, Figure 2, Table IX) and happens exactly
once per graph regardless of how many machines participate.

Three code paths are provided:

* :func:`orient_csr` -- fully vectorised in-memory orientation, used by the
  in-memory baselines and by tests as the reference implementation;
* :func:`orient_graph` with ``executor="threads"`` (the default) -- the
  external-memory path: the degree array is read into memory (the paper
  assumes ``|V| < P·M``), the adjacency file is split into contiguous
  vertex chunks that are filtered independently (a thread pool when
  ``parallel=True``, sequentially otherwise) and concatenated in order --
  the "multicore orientation" of section IV-B1 whose speed-up Figure 2
  reports;
* :func:`orient_graph` with ``executor="processes"`` and a shared-memory
  descriptor (:func:`repro.core.shm.publish_input_graph`) -- the chunks
  run as picklable :class:`OrientChunkTask` s on the **persistent process
  pool** (:func:`repro.cluster.executor.run_preprocess_queue`), each
  worker slicing its adjacency window zero-copy from the published input
  graph and filtering it against the published degree-order keys.

Every path charges the identical I/O accounting: the master charges one
degree-file scan plus one adjacency read per chunk **in chunk order**
(:meth:`repro.externalmem.blockio.BlockDevice.charge_read`), while the
chunk compute reads the bytes below the accounting (raw ``np.fromfile``
or a shared-memory view).  IOStats, modelled device seconds and the
output file bytes are therefore bit-identical no matter which executor
ran the chunks -- the equivalence suite asserts this, it is not assumed.

Because both the input and output adjacency files are sorted by source and
then destination, and orientation only *removes* entries, the output
automatically satisfies the sortedness invariant the modified MGT needs.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.shm import SharedGraphDescriptor, attach_view
from repro.externalmem.blockio import BlockDevice, DiskModel
from repro.graph.binfmt import GraphFile, write_graph
from repro.graph.csr import CSRGraph
from repro.utils import Timer, chunk_ranges, prefix_sums

__all__ = [
    "OrientationResult",
    "OrientChunkTask",
    "degree_order_keys",
    "precedes",
    "orient_csr",
    "orient_chunk_shared",
    "orient_graph",
]


@dataclass
class OrientationResult:
    """Everything the PDTL master needs after orienting a graph.

    ``in_degrees`` holds ``d_G(v) - d_G*(v)`` for every vertex -- the number
    of *incoming* oriented edges -- which is exactly the per-vertex weight
    the load-balancing step uses to split edge ranges (section IV-B1).
    ``modelled_io_seconds`` is the modelled device time charged during the
    orientation (input scans plus output writes) -- identical across
    executors by construction; ``executor`` records which path ran the
    chunks (``"serial"`` / ``"threads"`` / ``"processes"``).
    """

    oriented: GraphFile
    max_out_degree: int
    out_degrees: np.ndarray
    in_degrees: np.ndarray
    elapsed_seconds: float
    num_chunks: int
    modelled_io_seconds: float = 0.0
    executor: str = "serial"

    @property
    def num_vertices(self) -> int:
        return self.oriented.num_vertices

    @property
    def num_edges(self) -> int:
        return self.oriented.num_edges


def degree_order_keys(degrees: np.ndarray) -> np.ndarray:
    """Return a key array such that ``key[u] < key[v]`` iff ``u ≺ v``.

    The key packs (degree, vertex id) into a single int64, which keeps the
    orientation filter a pure vectorised comparison.  Vertex ids must fit in
    32 bits, which covers every graph this reproduction can hold in memory.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.shape[0]
    if n >= (1 << 31):
        raise ValueError("vertex ids beyond 2^31 are not supported by the key packing")
    return (degrees << 32) | np.arange(n, dtype=np.int64)


def precedes(u: int, v: int, degrees: np.ndarray) -> bool:
    """Scalar predicate ``u ≺ v`` under the degree-based order."""
    du, dv = int(degrees[u]), int(degrees[v])
    return du < dv or (du == dv and u < v)


def orient_csr(graph: CSRGraph) -> CSRGraph:
    """In-memory orientation of an undirected CSR graph.

    Returns a directed CSR graph containing each undirected edge exactly
    once, from its ``≺``-smaller endpoint to the larger.  Adjacency lists
    stay sorted by destination id.
    """
    if graph.directed:
        raise ValueError("orient_csr expects an undirected (bidirectional) graph")
    degrees = graph.degrees
    keys = degree_order_keys(degrees)
    sources = graph.edge_sources()
    destinations = graph.indices
    keep = keys[sources] < keys[destinations]
    out_degrees = np.zeros(graph.num_vertices, dtype=np.int64)
    if keep.any():
        np.add.at(out_degrees, sources[keep], 1)
    new_indptr = prefix_sums(out_degrees)
    new_indices = destinations[keep].copy()
    return CSRGraph(new_indptr, new_indices, directed=True)


def _orient_window(
    keys: np.ndarray,
    sources: np.ndarray,
    adjacency: np.ndarray,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The per-window orientation kernel every execution path shares.

    ``sources``/``adjacency`` are the aligned (source, destination) entries
    of the vertex window ``[lo, hi)``; returns (per-vertex oriented
    out-degrees, filtered adjacency).  One vectorised key comparison and
    one ``bincount`` -- no per-edge Python.
    """
    if adjacency.shape[0] == 0:
        return np.zeros(hi - lo, dtype=np.int64), np.empty(0, dtype=np.int64)
    keep = keys[sources] < keys[adjacency]
    out_degrees = np.bincount(sources[keep] - lo, minlength=hi - lo).astype(np.int64)
    return out_degrees, adjacency[keep]


def _orient_chunk(
    keys: np.ndarray,
    offsets: np.ndarray,
    lo: int,
    hi: int,
    read_range,
) -> tuple[np.ndarray, np.ndarray]:
    """Orient the vertex chunk ``[lo, hi)``; ``read_range(start, count)``
    supplies the adjacency window.

    Every execution path funnels through this one body, so the slicing,
    empty-range shape and filter stay in lockstep -- the precondition of
    the cross-executor bit-identity contract.
    """
    if hi <= lo:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    start_edge = int(offsets[lo])
    count = int(offsets[hi] - offsets[lo])
    adjacency = read_range(start_edge, count) if count else np.empty(0, dtype=np.int64)
    sources = kernels.window_sources(offsets, lo, hi)
    return _orient_window(keys, sources, adjacency, lo, hi)


def _orient_chunk_raw(
    adjacency_path: str,
    keys: np.ndarray,
    offsets: np.ndarray,
    vertex_range: tuple[int, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Orient one vertex chunk, reading its adjacency raw from the host file.

    The read is below the accounting layer on purpose: the master charges
    the modelled chunk read itself, in chunk order, so the accounting is
    identical whether this runs inline, on a thread or not at all (the
    shared-memory path).
    """
    lo, hi = vertex_range

    def read_range(start_edge: int, count: int) -> np.ndarray:
        return np.fromfile(
            adjacency_path, dtype=np.int64, count=count, offset=start_edge * 8
        )

    return _orient_chunk(keys, offsets, lo, hi, read_range)


@dataclass(frozen=True)
class OrientChunkTask:
    """One vertex chunk of the parallel orientation, picklable for the pool.

    Carries only the shared-memory descriptor of the published *input*
    graph (:func:`repro.core.shm.publish_input_graph`) plus the chunk's
    vertex range -- never arrays.  The worker attaches the publication
    (once per process, cached) and filters its window zero-copy.
    """

    descriptor: "SharedGraphDescriptor"
    lo: int
    hi: int


def orient_chunk_shared(task: OrientChunkTask) -> tuple[np.ndarray, np.ndarray]:
    """Execute one :class:`OrientChunkTask` against the shared input graph.

    Module-level so it crosses the process-pool pickle boundary.  All data
    arrives through the shared segments (adjacency window, offsets and the
    published degree-order keys); nothing here touches an I/O counter.
    """
    view = attach_view(task.descriptor, DiskModel())
    return _orient_chunk(
        view.order_keys,
        view.cached_offsets,
        task.lo,
        task.hi,
        view.read_adjacency_range,
    )


def orient_graph(
    source: GraphFile,
    device: BlockDevice | None = None,
    output_name: str | None = None,
    num_workers: int = 1,
    parallel: bool = True,
    executor: str = "threads",
    shared: SharedGraphDescriptor | None = None,
) -> OrientationResult:
    """Orient an on-disk undirected graph into an on-disk oriented graph.

    Parameters
    ----------
    source:
        the bidirectional input graph (``directed`` must be False).
    device:
        where to write the oriented graph; defaults to the source's device.
    output_name:
        name of the oriented graph; defaults to ``"<source>_oriented"``.
    num_workers:
        number of orientation workers (the master's cores).  The adjacency
        file is split into ``num_workers`` contiguous vertex ranges that are
        filtered independently and concatenated in order.
    parallel:
        when False the chunks are processed sequentially even if
        ``num_workers > 1`` (used to measure the multicore speed-up of
        Figure 2 against an identical work decomposition).
    executor:
        ``"threads"`` (default) runs the chunks on a thread pool;
        ``"processes"`` fans them out over the persistent process pool as
        :class:`OrientChunkTask` s and requires ``shared``.
    shared:
        the :class:`~repro.core.shm.SharedGraphDescriptor` of the
        published input graph (:func:`~repro.core.shm.publish_input_graph`);
        required for (and only used by) ``executor="processes"``.

    The I/O accounting is identical for every executor: one degree-file
    read plus one charged adjacency read per chunk in chunk order, then
    the output writes.
    """
    if source.directed:
        raise ValueError("orient_graph expects an undirected on-disk graph")
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if executor not in ("threads", "processes"):
        raise ValueError(f"executor must be 'threads' or 'processes', got {executor!r}")
    if executor == "processes" and shared is None:
        raise ValueError("executor='processes' requires a shared input-graph descriptor")
    if executor == "processes" and not parallel:
        raise ValueError(
            "parallel=False conflicts with executor='processes'; use the "
            "default threads executor to measure the sequential baseline"
        )
    if shared is not None and executor == "processes":
        if (
            shared.num_vertices != source.num_vertices
            or shared.num_edges != source.num_edges
        ):
            raise ValueError(
                f"shared descriptor {shared.token!r} does not match the source "
                f"graph ({shared.num_vertices} vertices / {shared.num_edges} "
                f"entries published vs {source.num_vertices} / "
                f"{source.num_edges} on disk)"
            )
    device = device if device is not None else source.device
    output_name = output_name if output_name is not None else f"{source.name}_oriented"

    modelled_before = source.device.stats.device_seconds
    if device is not source.device:
        modelled_before += device.stats.device_seconds

    timer = Timer().start()
    degrees = source.read_degrees()
    offsets = prefix_sums(degrees)
    # the pool workers filter against the *published* order keys, so the
    # master only derives its own copy for the in-process executors
    keys = degree_order_keys(degrees) if executor != "processes" else None
    ranges = chunk_ranges(source.num_vertices, num_workers)

    # charge every chunk's adjacency read now, in chunk order: the compute
    # below reads raw (or from shared memory), so this is the single place
    # the modelled input scan is accounted -- deterministically, no matter
    # which executor runs the chunks or in which order they finish
    adjacency_name = source.adjacency_file_name
    for lo, hi in ranges:
        count = int(offsets[hi] - offsets[lo])
        if count:
            source.device.charge_read(adjacency_name, int(offsets[lo]) * 8, count * 8)

    run_parallel = parallel and num_workers > 1
    adjacency_path = str(source.device.path(adjacency_name))
    if executor == "processes":
        from repro.cluster.executor import run_preprocess_queue

        tasks = [OrientChunkTask(descriptor=shared, lo=lo, hi=hi) for lo, hi in ranges]
        results = run_preprocess_queue(
            tasks, orient_chunk_shared, max_workers=num_workers
        )
        used_executor = "processes"
    elif run_parallel:
        with concurrent.futures.ThreadPoolExecutor(max_workers=num_workers) as pool:
            futures = [
                pool.submit(_orient_chunk_raw, adjacency_path, keys, offsets, r)
                for r in ranges
            ]
            results = [f.result() for f in futures]
        used_executor = "threads"
    else:
        results = [_orient_chunk_raw(adjacency_path, keys, offsets, r) for r in ranges]
        used_executor = "serial"

    out_degree_parts = [r[0] for r in results]
    adjacency_parts = [r[1] for r in results]
    out_degrees = (
        np.concatenate(out_degree_parts)
        if out_degree_parts
        else np.empty(0, dtype=np.int64)
    )
    adjacency = (
        np.concatenate(adjacency_parts)
        if adjacency_parts
        else np.empty(0, dtype=np.int64)
    )
    oriented_csr = CSRGraph.from_arrays(out_degrees, adjacency, directed=True)
    oriented_file = write_graph(device, output_name, oriented_csr)
    timer.stop()

    modelled_after = source.device.stats.device_seconds
    if device is not source.device:
        modelled_after += device.stats.device_seconds

    in_degrees = degrees - out_degrees
    return OrientationResult(
        oriented=oriented_file,
        max_out_degree=int(out_degrees.max()) if out_degrees.size else 0,
        out_degrees=out_degrees,
        in_degrees=in_degrees,
        elapsed_seconds=timer.elapsed,
        num_chunks=num_workers,
        modelled_io_seconds=modelled_after - modelled_before,
        executor=used_executor,
    )
