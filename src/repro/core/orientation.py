"""Degree-based ordering and graph orientation (Definition III.2, section IV-B1).

The degree-based strict total order ``≺`` on vertices is

    ``u ≺ v``  iff  ``d(u) < d(v)``  or  (``d(u) == d(v)`` and ``u < v``),

and the orientation ``G*`` keeps exactly the edges ``(u, v)`` with
``u ≺ v``.  Orientation is the master's preprocessing step: it is measured
separately in the paper (Table II, Figure 2, Table IX) and happens exactly
once per graph regardless of how many machines participate.

Two code paths are provided:

* :func:`orient_csr` -- fully vectorised in-memory orientation, used by the
  in-memory baselines and by tests as the reference implementation;
* :func:`orient_graph` -- the external-memory path: the degree array is
  read into memory (the paper assumes ``|V| < P·M``), the adjacency file is
  streamed in contiguous chunks, each chunk filtered down to its oriented
  out-edges, and the result written back out.  With
  ``parallel=True`` the chunks are processed by a thread pool and the
  per-chunk outputs concatenated in order -- the "multicore orientation"
  of section IV-B1 whose speed-up Figure 2 reports.

Because both the input and output adjacency files are sorted by source and
then destination, and orientation only *removes* entries, the output
automatically satisfies the sortedness invariant the modified MGT needs.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass

import numpy as np

from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import GraphFile, write_graph
from repro.graph.csr import CSRGraph
from repro.utils import Timer, chunk_ranges, prefix_sums

__all__ = [
    "OrientationResult",
    "degree_order_keys",
    "precedes",
    "orient_csr",
    "orient_graph",
]


@dataclass
class OrientationResult:
    """Everything the PDTL master needs after orienting a graph.

    ``in_degrees`` holds ``d_G(v) - d_G*(v)`` for every vertex -- the number
    of *incoming* oriented edges -- which is exactly the per-vertex weight
    the load-balancing step uses to split edge ranges (section IV-B1).
    """

    oriented: GraphFile
    max_out_degree: int
    out_degrees: np.ndarray
    in_degrees: np.ndarray
    elapsed_seconds: float
    num_chunks: int

    @property
    def num_vertices(self) -> int:
        return self.oriented.num_vertices

    @property
    def num_edges(self) -> int:
        return self.oriented.num_edges


def degree_order_keys(degrees: np.ndarray) -> np.ndarray:
    """Return a key array such that ``key[u] < key[v]`` iff ``u ≺ v``.

    The key packs (degree, vertex id) into a single int64, which keeps the
    orientation filter a pure vectorised comparison.  Vertex ids must fit in
    32 bits, which covers every graph this reproduction can hold in memory.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.shape[0]
    if n >= (1 << 31):
        raise ValueError("vertex ids beyond 2^31 are not supported by the key packing")
    return (degrees << 32) | np.arange(n, dtype=np.int64)


def precedes(u: int, v: int, degrees: np.ndarray) -> bool:
    """Scalar predicate ``u ≺ v`` under the degree-based order."""
    du, dv = int(degrees[u]), int(degrees[v])
    return du < dv or (du == dv and u < v)


def orient_csr(graph: CSRGraph) -> CSRGraph:
    """In-memory orientation of an undirected CSR graph.

    Returns a directed CSR graph containing each undirected edge exactly
    once, from its ``≺``-smaller endpoint to the larger.  Adjacency lists
    stay sorted by destination id.
    """
    if graph.directed:
        raise ValueError("orient_csr expects an undirected (bidirectional) graph")
    degrees = graph.degrees
    keys = degree_order_keys(degrees)
    sources = graph.edge_sources()
    destinations = graph.indices
    keep = keys[sources] < keys[destinations]
    out_degrees = np.zeros(graph.num_vertices, dtype=np.int64)
    if keep.any():
        np.add.at(out_degrees, sources[keep], 1)
    new_indptr = prefix_sums(out_degrees)
    new_indices = destinations[keep].copy()
    return CSRGraph(new_indptr, new_indices, directed=True)


def _orient_chunk(
    source_graph: GraphFile,
    keys: np.ndarray,
    offsets: np.ndarray,
    vertex_range: tuple[int, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Orient the adjacency lists of a contiguous vertex range.

    Returns (per-vertex oriented out-degrees, concatenated oriented
    adjacency) for the vertices in ``vertex_range``.  Each worker of the
    multicore orientation runs this on its own range.
    """
    lo, hi = vertex_range
    if hi <= lo:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    start_edge = int(offsets[lo])
    count = int(offsets[hi] - offsets[lo])
    adjacency = (
        source_graph.read_adjacency_range(start_edge, count)
        if count
        else np.empty(0, dtype=np.int64)
    )
    degrees = (offsets[lo + 1 : hi + 1] - offsets[lo:hi]).astype(np.int64)
    sources = np.repeat(np.arange(lo, hi, dtype=np.int64), degrees)
    keep = keys[sources] < keys[adjacency] if count else np.empty(0, dtype=bool)
    out_degrees = np.zeros(hi - lo, dtype=np.int64)
    if count and keep.any():
        np.add.at(out_degrees, sources[keep] - lo, 1)
    oriented_adjacency = adjacency[keep] if count else adjacency
    return out_degrees, oriented_adjacency


def orient_graph(
    source: GraphFile,
    device: BlockDevice | None = None,
    output_name: str | None = None,
    num_workers: int = 1,
    parallel: bool = True,
) -> OrientationResult:
    """Orient an on-disk undirected graph into an on-disk oriented graph.

    Parameters
    ----------
    source:
        the bidirectional input graph (``directed`` must be False).
    device:
        where to write the oriented graph; defaults to the source's device.
    output_name:
        name of the oriented graph; defaults to ``"<source>_oriented"``.
    num_workers:
        number of orientation workers (the master's cores).  The adjacency
        file is split into ``num_workers`` contiguous vertex ranges that are
        filtered independently and concatenated in order.
    parallel:
        when False the chunks are processed sequentially even if
        ``num_workers > 1`` (used to measure the multicore speed-up of
        Figure 2 against an identical work decomposition).
    """
    if source.directed:
        raise ValueError("orient_graph expects an undirected on-disk graph")
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    device = device if device is not None else source.device
    output_name = output_name if output_name is not None else f"{source.name}_oriented"

    timer = Timer().start()
    degrees = source.read_degrees()
    offsets = prefix_sums(degrees)
    keys = degree_order_keys(degrees)
    ranges = chunk_ranges(source.num_vertices, num_workers)

    if parallel and num_workers > 1:
        with concurrent.futures.ThreadPoolExecutor(max_workers=num_workers) as pool:
            futures = [
                pool.submit(_orient_chunk, source, keys, offsets, r) for r in ranges
            ]
            results = [f.result() for f in futures]
    else:
        results = [_orient_chunk(source, keys, offsets, r) for r in ranges]

    out_degree_parts = [r[0] for r in results]
    adjacency_parts = [r[1] for r in results]
    out_degrees = (
        np.concatenate(out_degree_parts)
        if out_degree_parts
        else np.empty(0, dtype=np.int64)
    )
    adjacency = (
        np.concatenate(adjacency_parts)
        if adjacency_parts
        else np.empty(0, dtype=np.int64)
    )
    oriented_csr = CSRGraph.from_arrays(out_degrees, adjacency, directed=True)
    oriented_file = write_graph(device, output_name, oriented_csr)
    timer.stop()

    in_degrees = degrees - out_degrees
    return OrientationResult(
        oriented=oriented_file,
        max_out_degree=int(out_degrees.max()) if out_degrees.size else 0,
        out_degrees=out_degrees,
        in_degrees=in_degrees,
        elapsed_seconds=timer.elapsed,
        num_chunks=num_workers,
    )
