"""The PDTL framework: master/worker protocol over the simulated cluster.

Section IV-B of the paper, step by step:

1. the **master** (node 0) applies the degree-based orientation to the
   input graph, using all of its cores (Figure 2);
2. the master computes the per-processor **edge ranges**, either naive or
   in-degree load-balanced (Figure 9);
3. the oriented graph is **replicated** to every client machine over the
   network (the copy times of Table III), together with each processor's
   configuration ``C_{i,j}``;
4. every processor runs **modified MGT** restricted to its edge range
   against its machine's local graph copy;
5. clients send their triangle counts (or lists) back to the master, which
   sums (or concatenates) them.

:class:`PDTLRunner` drives all five steps over a
:class:`~repro.cluster.cluster.Cluster` and collects both *measured* wall
times and *modelled* per-node CPU / I/O / network times, so a single run
can regenerate every evaluation figure that slices those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.executor import ExecutionBackend, run_jobs
from repro.cluster.metrics import ClusterMetrics
from repro.core.config import PDTLConfig
from repro.core.load_balance import EdgeRange, split_edges
from repro.core.mgt import MGTResult, MGTWorker
from repro.core.orientation import OrientationResult, orient_graph
from repro.core.triangles import (
    CountingSink,
    ListingSink,
    PerVertexCountSink,
    Triangle,
)
from repro.errors import ConfigurationError
from repro.externalmem.blockio import DiskModel
from repro.graph.binfmt import GraphFile, write_graph
from repro.graph.csr import CSRGraph
from repro.utils import Timer

__all__ = ["PDTLRunner", "PDTLResult", "WorkerReport"]

_TRIANGLE_BYTES = 24  # three int64 vertex ids
_COUNT_BYTES = 8


@dataclass(frozen=True)
class WorkerReport:
    """One processor's MGT result, tagged with its cluster placement."""

    node_index: int
    proc_index: int
    edge_range: EdgeRange
    result: MGTResult

    @property
    def triangles(self) -> int:
        return self.result.triangles

    @property
    def calc_seconds(self) -> float:
        return self.result.cpu_seconds + self.result.io_seconds


@dataclass
class PDTLResult:
    """Everything a PDTL run produces: the answer plus the evaluation data.

    Timing fields come in two flavours:

    * ``*_seconds`` are *modelled* times from the disk/network cost models
      and the measured in-process compute time of each worker, aggregated
      the way the paper aggregates them (calculation time = the slowest
      node; total time = orientation + slowest (copy + calculation));
    * ``wall_seconds`` is the actual elapsed wall-clock time of the whole
      run on the reproduction host, reported for completeness.
    """

    config: PDTLConfig
    triangles: int
    orientation_seconds: float
    calc_seconds: float
    total_seconds: float
    wall_seconds: float
    network_bytes: int
    network_messages: int
    workers: list[WorkerReport] = field(default_factory=list)
    metrics: ClusterMetrics = field(default_factory=ClusterMetrics)
    edge_ranges: list[EdgeRange] = field(default_factory=list)
    triangle_list: list[Triangle] | None = None
    per_vertex_counts: np.ndarray | None = None
    max_out_degree: int = 0

    @property
    def average_copy_seconds(self) -> float:
        return self.metrics.average_copy_seconds(exclude_master=True)

    @property
    def total_cpu_seconds(self) -> float:
        return self.metrics.total_cpu_seconds

    @property
    def total_io_seconds(self) -> float:
        return self.metrics.total_io_seconds

    def node_breakdown(self) -> list[dict[str, float]]:
        """Per-node CPU / I/O / copy / calc rows (Figures 7-8, Table IV)."""
        return self.metrics.as_rows()


class PDTLRunner:
    """Drives the full PDTL pipeline for one configuration.

    Parameters
    ----------
    config:
        the (N, P, M, B) environment plus algorithm switches.
    backend:
        how per-core MGT jobs execute on the host
        (``serial`` / ``threads`` / ``processes``); the modelled results are
        backend-independent.
    storage_root:
        optional directory for the simulated machines' disks; a temporary
        directory per machine is used when omitted.
    disk_model / bandwidth_bytes_per_s:
        override the disk and network performance models.
    """

    def __init__(
        self,
        config: PDTLConfig,
        backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
        storage_root: str | Path | None = None,
        disk_model: DiskModel | None = None,
        bandwidth_bytes_per_s: float | None = None,
    ) -> None:
        self.config = config
        self.backend = ExecutionBackend(backend)
        self.storage_root = storage_root
        self.disk_model = disk_model
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s

    # -- public API -------------------------------------------------------------------

    def run(
        self,
        graph: CSRGraph | GraphFile,
        sink_kind: str = "count",
    ) -> PDTLResult:
        """Count (or list) all triangles of ``graph`` under this configuration.

        ``graph`` may be an in-memory undirected CSR graph (it is written to
        the master's disk first, as a real deployment would have it on disk
        already) or an on-disk undirected graph already living on a device.

        ``sink_kind`` selects what each worker does with its triangles:
        ``"count"`` (default, matches the paper's measurements), ``"list"``
        (collect :class:`Triangle` records) or ``"per-vertex"`` (per-vertex
        triangle counts for clustering-coefficient style analyses).
        """
        if sink_kind not in ("count", "list", "per-vertex"):
            raise ConfigurationError(f"unsupported sink kind {sink_kind!r}")

        wall_timer = Timer().start()
        cluster = Cluster.from_config(
            self.config,
            storage_root=self.storage_root,
            disk_model=self.disk_model,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
        )
        try:
            result = self._run_on_cluster(cluster, graph, sink_kind)
        finally:
            cluster.cleanup()
        result.wall_seconds = wall_timer.stop()
        return result

    # -- pipeline steps -----------------------------------------------------------------

    def _stage_input(self, cluster: Cluster, graph: CSRGraph | GraphFile) -> GraphFile:
        """Place the undirected input graph on the master's disk."""
        if isinstance(graph, GraphFile):
            if graph.directed:
                raise ConfigurationError("PDTL expects an undirected input graph")
            if graph.device is cluster.master.device:
                return graph
            return graph.copy_to(cluster.master.device, graph.name)
        if graph.directed:
            raise ConfigurationError("PDTL expects an undirected input graph")
        return write_graph(cluster.master.device, "input", graph)

    def _orient(self, source: GraphFile) -> OrientationResult:
        workers = self.config.procs_per_node if self.config.parallel_orientation else 1
        return orient_graph(
            source,
            num_workers=workers,
            parallel=self.config.parallel_orientation,
        )

    def _make_sink(self, sink_kind: str, num_vertices: int):
        if sink_kind == "count":
            return CountingSink()
        if sink_kind == "list":
            return ListingSink()
        return PerVertexCountSink(num_vertices)

    def _run_on_cluster(
        self, cluster: Cluster, graph: CSRGraph | GraphFile, sink_kind: str
    ) -> PDTLResult:
        config = self.config

        # Step 1: stage + orient on the master
        source = self._stage_input(cluster, graph)
        orientation = self._orient(source)
        oriented = orientation.oriented

        # Step 2: edge ranges (load-balanced or naive)
        ranges = split_edges(
            num_edges=oriented.num_edges,
            num_nodes=config.num_nodes,
            procs_per_node=config.procs_per_node,
            out_degrees=orientation.out_degrees,
            in_degrees=orientation.in_degrees,
            load_balanced=config.load_balanced,
        )

        # Step 3: replicate the oriented graph + send configurations
        local_graphs = cluster.replicate_graph(oriented)
        for edge_range in ranges:
            cluster.send_configuration(edge_range.node_index)

        # Step 4: per-processor MGT jobs
        sinks = [self._make_sink(sink_kind, oriented.num_vertices) for _ in ranges]

        def make_job(edge_range: EdgeRange, sink):
            local = local_graphs[edge_range.node_index]

            def job() -> MGTResult:
                worker = MGTWorker(
                    local,
                    config,
                    range_start=edge_range.start,
                    range_stop=edge_range.stop,
                )
                return worker.run(sink)

            return job

        jobs = [make_job(r, s) for r, s in zip(ranges, sinks)]
        results = run_jobs(jobs, backend=self.backend)

        # Step 5: aggregate at the master
        reports: list[WorkerReport] = []
        total_triangles = 0
        for edge_range, mgt_result in zip(ranges, results):
            report = WorkerReport(
                node_index=edge_range.node_index,
                proc_index=edge_range.proc_index,
                edge_range=edge_range,
                result=mgt_result,
            )
            reports.append(report)
            total_triangles += mgt_result.triangles
            node_metrics = cluster.metrics.node(edge_range.node_index)
            node_metrics.add_worker(
                cpu_seconds=mgt_result.cpu_seconds,
                io_seconds=mgt_result.io_seconds,
                triangles=mgt_result.triangles,
                io_stats=mgt_result.io_stats,
            )
            # result message back to the master
            if sink_kind == "count" or config.count_only:
                payload = _COUNT_BYTES
            else:
                payload = _COUNT_BYTES + mgt_result.triangles * _TRIANGLE_BYTES
            cluster.send_result(edge_range.node_index, payload)

        metrics = cluster.metrics
        calc_seconds = metrics.calc_seconds
        total_seconds = orientation.elapsed_seconds + max(
            (node.total_seconds() for node in metrics.nodes), default=0.0
        )

        triangle_list: list[Triangle] | None = None
        per_vertex: np.ndarray | None = None
        if sink_kind == "list":
            triangle_list = []
            for sink in sinks:
                triangle_list.extend(sink.triangles)  # type: ignore[attr-defined]
        elif sink_kind == "per-vertex":
            per_vertex = np.zeros(oriented.num_vertices, dtype=np.int64)
            for sink in sinks:
                per_vertex += sink.per_vertex  # type: ignore[attr-defined]

        return PDTLResult(
            config=config,
            triangles=total_triangles,
            orientation_seconds=orientation.elapsed_seconds,
            calc_seconds=calc_seconds,
            total_seconds=total_seconds,
            wall_seconds=0.0,
            network_bytes=cluster.network.total_bytes,
            network_messages=cluster.network.total_messages,
            workers=reports,
            metrics=metrics,
            edge_ranges=ranges,
            triangle_list=triangle_list,
            per_vertex_counts=per_vertex,
            max_out_degree=orientation.max_out_degree,
        )
