"""The PDTL framework: master/worker protocol over the simulated cluster.

Section IV-B of the paper, step by step:

1. the **master** (node 0) applies the degree-based orientation to the
   input graph, using all of its cores (Figure 2);
2. the master computes the per-processor **edge ranges**, either naive or
   in-degree load-balanced (Figure 9);
3. the oriented graph is **replicated** to every client machine over the
   network (the copy times of Table III), together with each processor's
   configuration ``C_{i,j}``;
4. every processor runs **modified MGT** restricted to its edge range
   against its machine's local graph copy;
5. clients send their triangle counts (or lists) back to the master, which
   sums (or concatenates) them.

:class:`PDTLRunner` drives all five steps over a
:class:`~repro.cluster.cluster.Cluster` and collects both *measured* wall
times and *modelled* per-node CPU / I/O / network times, so a single run
can regenerate every evaluation figure that slices those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.executor import ExecutionBackend, run_task_queue
from repro.cluster.metrics import ClusterMetrics
from repro.core.config import PDTLConfig
from repro.core.load_balance import EdgeRange, split_edges
from repro.core.mgt import MGTResult
from repro.core.orientation import OrientationResult, orient_graph
from repro.core.shm import (
    SharedGraphDescriptor,
    publish_graph,
    publish_input_graph,
    shm_available,
)
from repro.core.scheduler import (
    Chunk,
    ChunkOutcome,
    ChunkTask,
    DynamicScheduler,
    ScheduleResult,
    execute_chunk_task,
    make_chunks,
    merge_mgt_results,
    resolve_chunk_edges,
)
from repro.core.triangles import (
    CHUNK_SINK_KINDS,
    Triangle,
    normalize_sink_kind,
    oriented_edge_array,
)
from repro.errors import ConfigurationError
from repro.externalmem.blockio import DiskModel
from repro.graph.binfmt import GraphFile, write_graph
from repro.graph.csr import CSRGraph
from repro.obs.export import ChunkSpan, RunTelemetry, WorkerTrack
from repro.obs.logconfig import warn_fallback
from repro.obs.metrics import (
    MetricsRegistry,
    counter_delta,
    snapshot_process_counters,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils import Timer

__all__ = ["PDTLRunner", "PDTLResult", "WorkerReport"]

_TRIANGLE_BYTES = 24  # three int64 vertex ids
_COUNT_BYTES = 8


@dataclass(frozen=True)
class WorkerReport:
    """One processor's MGT result, tagged with its cluster placement.

    Under static scheduling ``edge_range`` is the processor's assigned
    range and the chunk counters keep their defaults (one unit of work,
    nothing stolen or retried).  Under dynamic scheduling ``edge_range`` is
    the *envelope* of the chunks the worker pulled (they need not be
    contiguous), ``chunks_completed``/``chunks_stolen``/``chunks_retried``
    account for its queue activity, and ``failed`` marks a worker killed by
    the failure-injection spec.
    """

    node_index: int
    proc_index: int
    edge_range: EdgeRange
    result: MGTResult
    chunks_completed: int = 1
    chunks_stolen: int = 0
    chunks_retried: int = 0
    failed: bool = False

    @property
    def triangles(self) -> int:
        return self.result.triangles

    @property
    def calc_seconds(self) -> float:
        return self.result.cpu_seconds + self.result.io_seconds


@dataclass
class PDTLResult:
    """Everything a PDTL run produces: the answer plus the evaluation data.

    Timing fields come in two flavours:

    * ``*_seconds`` are *modelled* times from the disk/network cost models
      and the measured in-process compute time of each worker, aggregated
      the way the paper aggregates them (calculation time = the slowest
      node; total time = orientation + slowest (copy + calculation));
    * ``wall_seconds`` is the actual elapsed wall-clock time of the whole
      run on the reproduction host, reported for completeness.
    """

    config: PDTLConfig
    triangles: int
    orientation_seconds: float
    calc_seconds: float
    total_seconds: float
    wall_seconds: float
    network_bytes: int
    network_messages: int
    workers: list[WorkerReport] = field(default_factory=list)
    metrics: ClusterMetrics = field(default_factory=ClusterMetrics)
    edge_ranges: list[EdgeRange] = field(default_factory=list)
    triangle_list: list[Triangle] | None = None
    per_vertex_counts: np.ndarray | None = None
    edge_supports: np.ndarray | None = None
    oriented_edges: np.ndarray | None = None
    max_out_degree: int = 0
    num_chunks: int = 0
    shm_used: bool = False
    preprocess_parallel: bool = False
    #: structured observability payload of a traced run (``config.trace``);
    #: ``None`` when tracing was off.  Instrumentation only: no other field
    #: of this result depends on whether it was collected.
    telemetry: RunTelemetry | None = None

    @property
    def average_copy_seconds(self) -> float:
        return self.metrics.average_copy_seconds(exclude_master=True)

    @property
    def modelled_setup_seconds(self) -> float:
        """Modelled master-device time of the preprocessing phase (staging,
        orientation, replication reads) -- identical whether preprocessing
        ran serially or on the process pool."""
        return self.metrics.setup_seconds

    @property
    def total_cpu_seconds(self) -> float:
        return self.metrics.total_cpu_seconds

    @property
    def total_io_seconds(self) -> float:
        return self.metrics.total_io_seconds

    def node_breakdown(self) -> list[dict[str, float]]:
        """Per-node CPU / I/O / copy / calc rows (Figures 7-8, Table IV)."""
        return self.metrics.as_rows()


class PDTLRunner:
    """Drives the full PDTL pipeline for one configuration.

    Parameters
    ----------
    config:
        the (N, P, M, B) environment plus algorithm switches.
    backend:
        how per-core MGT jobs execute on the host
        (``serial`` / ``threads`` / ``processes``); the modelled results are
        backend-independent.
    storage_root:
        optional directory for the simulated machines' disks; a temporary
        directory per machine is used when omitted.
    disk_model / bandwidth_bytes_per_s:
        override the disk and network performance models.
    """

    def __init__(
        self,
        config: PDTLConfig,
        backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
        storage_root: str | Path | None = None,
        disk_model: DiskModel | None = None,
        bandwidth_bytes_per_s: float | None = None,
    ) -> None:
        self.config = config
        self.backend = ExecutionBackend(backend)
        self.storage_root = storage_root
        self.disk_model = disk_model
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s

    # -- public API -------------------------------------------------------------------

    def run(
        self,
        graph: CSRGraph | GraphFile,
        sink_kind: str | None = None,
    ) -> PDTLResult:
        """Count (or list) all triangles of ``graph`` under this configuration.

        ``graph`` may be an in-memory undirected CSR graph (it is written to
        the master's disk first, as a real deployment would have it on disk
        already) or an on-disk undirected graph already living on a device.

        ``sink_kind`` selects what each worker does with its triangles:
        ``"count"`` (matches the paper's measurements), ``"list"`` (collect
        :class:`Triangle` records), ``"per-vertex"`` (per-vertex triangle
        counts for clustering-coefficient style analyses) or
        ``"edge-support"`` (per-oriented-edge triangle supports, the input
        of the k-truss decomposition in :mod:`repro.analytics`).  When
        omitted, ``config.sink`` decides.
        """
        sink_kind = normalize_sink_kind(
            sink_kind if sink_kind is not None else self.config.sink
        )
        if sink_kind not in CHUNK_SINK_KINDS:
            raise ConfigurationError(
                f"unsupported sink kind {sink_kind!r}; supported kinds: "
                f"{', '.join(CHUNK_SINK_KINDS)}"
            )

        wall_timer = Timer().start()
        cluster = Cluster.from_config(
            self.config,
            storage_root=self.storage_root,
            disk_model=self.disk_model,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
        )
        try:
            result = self._run_on_cluster(cluster, graph, sink_kind)
        finally:
            cluster.cleanup()
        result.wall_seconds = wall_timer.stop()
        return result

    # -- pipeline steps -----------------------------------------------------------------

    def _stage_input(self, cluster: Cluster, graph: CSRGraph | GraphFile) -> GraphFile:
        """Place the undirected input graph on the master's disk."""
        if isinstance(graph, GraphFile):
            if graph.directed:
                raise ConfigurationError("PDTL expects an undirected input graph")
            if graph.device is cluster.master.device:
                return graph
            return graph.copy_to(cluster.master.device, graph.name)
        if graph.directed:
            raise ConfigurationError("PDTL expects an undirected input graph")
        return write_graph(cluster.master.device, "input", graph)

    def _orient(self, source: GraphFile) -> OrientationResult:
        # the chunk count depends only on parallel_orientation, never on the
        # executor: every path charges the same per-chunk reads, so IOStats
        # and modelled setup time are bit-identical whether the chunks run
        # inline, on threads, on the pool, or on the shm-unavailable fallback
        workers = self.config.procs_per_node if self.config.parallel_orientation else 1
        if self.config.parallel_preprocess:
            publication = self._publish_input(source)
            if publication is not None:
                # the finally covers a preprocessing worker raising mid-run:
                # the input-graph segments never outlive the orientation
                try:
                    return orient_graph(
                        source,
                        num_workers=workers,
                        executor="processes",
                        shared=publication.descriptor,
                    )
                finally:
                    publication.unlink()
        return orient_graph(
            source,
            num_workers=workers,
            parallel=self.config.parallel_orientation,
        )

    def _publish_input(self, source: GraphFile):
        """Publish the unoriented input graph for the parallel preprocessing
        fan-out, or ``None`` (with a warning) where shared memory is
        unavailable -- the run then degrades to the threaded orientation
        with bit-identical results."""
        available, reason = shm_available()
        if not available:
            warn_fallback(
                "parallel_preprocess=True",
                reason,
                "threaded orientation",
                stacklevel=4,
            )
            return None
        return publish_input_graph(source)

    def _result_payload(
        self, sink_kind: str, triangles: int, num_edges: int = 0
    ) -> int:
        if sink_kind == "count" or self.config.count_only:
            return _COUNT_BYTES
        if sink_kind == "edge-support":
            # a worker ships its dense per-edge partial support array
            return _COUNT_BYTES + num_edges * _COUNT_BYTES
        return _COUNT_BYTES + triangles * _TRIANGLE_BYTES

    def _execute_units(
        self,
        units: list[tuple[int, int]],
        unit_graphs: list[GraphFile],
        sink_kind: str,
        shm_descriptor: SharedGraphDescriptor | None = None,
    ) -> list[ChunkOutcome]:
        """Execute MGT over every ``[start, stop)`` unit on the host backend.

        Each unit becomes a self-contained, picklable
        :class:`~repro.core.scheduler.ChunkTask` with its own sink and I/O
        counters, executed by a pull-based worker crew
        (:func:`~repro.cluster.executor.run_task_queue`); outcomes come back
        in unit order so every aggregation below is deterministic no matter
        which backend ran them, or in what order they finished.  With a
        shared-memory descriptor the tasks ship only the small segment
        descriptor and their chunk range -- never arrays -- and slice their
        windows zero-copy inside the workers.
        """
        tasks = [
            ChunkTask.from_graph(
                index=i,
                graph=graph,
                config=self.config,
                start=start,
                stop=stop,
                sink_kind=sink_kind,
                shm=shm_descriptor,
            )
            for i, ((start, stop), graph) in enumerate(zip(units, unit_graphs))
        ]
        return run_task_queue(tasks, execute_chunk_task, backend=self.backend)

    def _publish_shared(self, oriented: GraphFile):
        """Publish the oriented graph to shared memory when configured.

        Returns the publication (owning the segments) or ``None``.  On a
        host without POSIX shared memory the runner degrades to the
        on-disk path with a warning -- results are bit-identical either
        way, only the wall clock differs.
        """
        if not self.config.shm:
            return None
        available, reason = shm_available()
        if not available:
            warn_fallback(
                "shm=True", reason, "on-disk window reads", stacklevel=4
            )
            return None
        return publish_graph(oriented)

    def _run_on_cluster(
        self, cluster: Cluster, graph: CSRGraph | GraphFile, sink_kind: str
    ) -> PDTLResult:
        config = self.config
        dynamic = config.scheduling == "dynamic"

        # Observability: a live tracer (master track) only when configured;
        # everything below feeds spans/phase deltas through it, and the
        # NULL_TRACER path records nothing and allocates nothing.  The
        # per-phase IOStats deltas are *snapshots* -- reading them never
        # mutates the accounting the untraced run produces.
        tracing = config.trace
        tracer = Tracer(track="master") if tracing else NULL_TRACER
        run_counters_before = snapshot_process_counters() if tracing else None
        phase_io: dict[str, object] = {}

        # Step 1: stage + orient on the master.  The master-device counters
        # are snapshotted here and again after replication, so the run's
        # metrics carry the modelled *setup* phase (staging + orientation +
        # replication reads) in isolation -- the quantity the preprocessing
        # equivalence suite asserts bit-identical across execution paths.
        master_stats = cluster.master.device.stats
        setup_baseline = master_stats.snapshot()
        phase_baseline = setup_baseline
        with tracer.span("stage_input", cat="phase"):
            source = self._stage_input(cluster, graph)
        if tracing:
            phase_io["stage_input"] = master_stats.delta(phase_baseline)
            phase_baseline = master_stats.snapshot()
        with tracer.span("orient", cat="phase"):
            orientation = self._orient(source)
        if tracing:
            phase_io["orient"] = master_stats.delta(phase_baseline)
            phase_baseline = master_stats.snapshot()
        oriented = orientation.oriented

        # Step 2: work assignment -- static edge ranges (load-balanced or
        # naive), or the dynamic scheduler's window-aligned chunk queue
        ranges: list[EdgeRange] = []
        chunks: list[Chunk] = []
        with tracer.span("plan", cat="phase", scheduling=config.scheduling):
            if dynamic:
                chunks = make_chunks(
                    oriented.num_edges, resolve_chunk_edges(config, oriented.num_edges)
                )
            else:
                ranges = split_edges(
                    num_edges=oriented.num_edges,
                    num_nodes=config.num_nodes,
                    procs_per_node=config.procs_per_node,
                    out_degrees=orientation.out_degrees,
                    in_degrees=orientation.in_degrees,
                    load_balanced=config.load_balanced,
                )

        # Step 3: replicate the oriented graph + send per-processor configs
        with tracer.span("replicate", cat="phase"):
            local_graphs = cluster.replicate_graph(oriented)
            for worker in range(config.total_processors):
                cluster.send_configuration(worker // config.procs_per_node)
        if tracing:
            phase_io["replicate"] = master_stats.delta(phase_baseline)

        # preprocessing complete: record the master's modelled setup phase
        cluster.metrics.setup_io_stats = master_stats.delta(setup_baseline)
        cluster.metrics.setup_seconds = cluster.metrics.setup_io_stats.device_seconds

        # Step 4: MGT execution on the host backend (placement-independent).
        # With shm enabled the oriented adjacency is published once into
        # named shared-memory segments; the publication is unlinked in the
        # finally below even when a task raises (failure injection, worker
        # crash), so no segment ever outlives the run.
        if dynamic:
            units = [(c.start, c.stop) for c in chunks]
            unit_graphs = [local_graphs[0]] * len(chunks)
        else:
            units = [(r.start, r.stop) for r in ranges]
            unit_graphs = [local_graphs[r.node_index] for r in ranges]
        publication = self._publish_shared(oriented)
        try:
            with tracer.span(
                "triangle_scan", cat="phase", units=len(units), sink=sink_kind
            ):
                outcomes = self._execute_units(
                    units,
                    unit_graphs,
                    sink_kind,
                    shm_descriptor=publication.descriptor if publication else None,
                )
        finally:
            if publication is not None:
                publication.unlink()

        # Step 5: aggregate at the master
        schedule: ScheduleResult | None = None
        with tracer.span("aggregate", cat="phase"):
            if dynamic:
                reports, edge_ranges, schedule = self._aggregate_dynamic(
                    cluster, chunks, outcomes, sink_kind, oriented.num_edges
                )
            else:
                reports, edge_ranges = self._aggregate_static(
                    cluster, ranges, outcomes, sink_kind, oriented.num_edges
                )
        total_triangles = sum(outcome.triangles for outcome in outcomes)

        metrics = cluster.metrics
        calc_seconds = metrics.calc_seconds
        total_seconds = orientation.elapsed_seconds + max(
            (node.total_seconds() for node in metrics.nodes), default=0.0
        )

        # merge sink payloads by unit index -- never by completion order
        triangle_list: list[Triangle] | None = None
        per_vertex: np.ndarray | None = None
        edge_supports: np.ndarray | None = None
        oriented_edges: np.ndarray | None = None
        if sink_kind == "list":
            triangle_list = [
                Triangle(int(u), int(v), int(w))
                for outcome in outcomes
                for u, v, w in outcome.triples
            ]
        elif sink_kind == "per-vertex":
            per_vertex = np.zeros(oriented.num_vertices, dtype=np.int64)
            for outcome in outcomes:
                per_vertex += outcome.per_vertex
        elif sink_kind == "edge-support":
            # partial supports combine exactly: integer addition in chunk
            # order, identical on every backend (each outcome's positions
            # are unique, so indexed addition is the sparse merge)
            edge_supports = np.zeros(oriented.num_edges, dtype=np.int64)
            for outcome in outcomes:
                edge_supports[outcome.support_positions] += outcome.support_counts
            oriented_edges = oriented_edge_array(oriented)

        telemetry: RunTelemetry | None = None
        if tracing:
            telemetry = self._build_telemetry(
                cluster,
                tracer,
                phase_io,
                units,
                outcomes,
                schedule,
                run_counters_before,
            )

        return PDTLResult(
            config=config,
            triangles=total_triangles,
            orientation_seconds=orientation.elapsed_seconds,
            calc_seconds=calc_seconds,
            total_seconds=total_seconds,
            wall_seconds=0.0,
            network_bytes=cluster.network.total_bytes,
            network_messages=cluster.network.total_messages,
            workers=reports,
            metrics=metrics,
            edge_ranges=edge_ranges,
            triangle_list=triangle_list,
            per_vertex_counts=per_vertex,
            edge_supports=edge_supports,
            oriented_edges=oriented_edges,
            max_out_degree=orientation.max_out_degree,
            num_chunks=len(units),
            shm_used=publication is not None,
            preprocess_parallel=orientation.executor == "processes",
            telemetry=telemetry,
        )

    def _build_telemetry(
        self,
        cluster: Cluster,
        tracer: Tracer,
        phase_io: dict,
        units: list[tuple[int, int]],
        outcomes: list[ChunkOutcome],
        schedule: ScheduleResult | None,
        run_counters_before: dict | None,
    ) -> RunTelemetry:
        """Assemble the traced run's telemetry: merged events, the unified
        metrics registry, and the modelled per-worker timeline.

        Everything here *reads* already-final state (snapshots, outcome
        payloads, the deterministic schedule replay), so assembly can never
        perturb the accounted results it describes.  Event order is
        deterministic: master events in enter order, then each chunk's
        events in chunk-index order -- never completion order.
        """
        config = self.config
        telemetry = RunTelemetry(
            backend=self.backend.value,
            scheduling=config.scheduling,
            num_workers=config.total_processors,
            procs_per_node=config.procs_per_node,
        )

        events = list(tracer.events)
        for outcome in outcomes:
            events.extend(outcome.events)
        telemetry.events = events

        # chunk -> modelled worker: the deterministic schedule replay under
        # dynamic scheduling; unit index == worker index under static
        if schedule is not None:
            telemetry.chunk_owners = schedule.owner_of()
        else:
            telemetry.chunk_owners = {i: i for i in range(len(outcomes))}

        # modelled per-worker timeline (the paper-model trace variant)
        costs = [o.result.cpu_seconds + o.result.io_seconds for o in outcomes]
        factors = config.straggler_factors
        tracks: list[WorkerTrack] = []
        assignments = (
            schedule.assignments
            if schedule is not None
            else [[i] for i in range(len(outcomes))]
        )
        for worker, indices in enumerate(assignments):
            node, proc = divmod(worker, config.procs_per_node)
            track = WorkerTrack(worker=worker, node=node, proc=proc)
            cursor = 0.0
            for index in indices:
                duration = costs[index] * factors.get(worker, 1.0)
                start, stop = units[index]
                track.spans.append(
                    ChunkSpan(
                        index=index,
                        start=cursor,
                        duration=duration,
                        edges=stop - start,
                        triangles=outcomes[index].triangles,
                    )
                )
                cursor += duration
            tracks.append(track)
        telemetry.worker_tracks = tracks
        telemetry.phase_seconds = {
            phase: stats.device_seconds for phase, stats in phase_io.items()
        }

        # the unified metrics registry (flattened into telemetry.counters)
        registry = MetricsRegistry()
        registry.add_iostats("io.setup", cluster.metrics.setup_io_stats)
        for phase, stats in phase_io.items():
            registry.add_iostats(f"io.phase.{phase}", stats)
        registry.set_gauge("cluster.calc_seconds", cluster.metrics.calc_seconds)
        registry.set_gauge(
            "cluster.total_cpu_seconds", cluster.metrics.total_cpu_seconds
        )
        registry.set_gauge(
            "cluster.total_io_seconds", cluster.metrics.total_io_seconds
        )
        registry.inc("network.bytes", cluster.network.total_bytes)
        registry.inc("network.messages", cluster.network.total_messages)
        if schedule is not None:
            registry.inc("scheduler.chunks", len(outcomes))
            registry.inc("scheduler.steals", schedule.total_steals)
            registry.inc("scheduler.retries", schedule.total_retries)
            registry.inc(
                "scheduler.failed_workers", len(schedule.failed_workers)
            )
            registry.set_gauge(
                "scheduler.max_queue_depth", schedule.max_queue_depth
            )
            registry.observe_each(
                "scheduler.queue_depth", schedule.queue_depths
            )
        for outcome in outcomes:
            if outcome.counters:
                registry.add_counts(outcome.counters, prefix="worker.")
        for key, value in cluster.master.device.host_counters.as_dict().items():
            if value:
                registry.inc(f"master.blockio.{key}", value)
        if run_counters_before is not None:
            # run-level process-global delta: exact totals for the serial
            # and threads backends (everything shares this process); the
            # master-side publish/attach share for the processes backends
            registry.add_counts(
                counter_delta(snapshot_process_counters(), run_counters_before),
                prefix="run.",
            )
        telemetry.counters = registry.as_dict()
        return telemetry

    def _aggregate_static(
        self,
        cluster: Cluster,
        ranges: list[EdgeRange],
        outcomes: list[ChunkOutcome],
        sink_kind: str,
        num_edges: int,
    ) -> tuple[list[WorkerReport], list[EdgeRange]]:
        """The paper's step 5: one result message per fixed-range worker."""
        reports: list[WorkerReport] = []
        for edge_range, outcome in zip(ranges, outcomes):
            mgt_result = outcome.result
            reports.append(
                WorkerReport(
                    node_index=edge_range.node_index,
                    proc_index=edge_range.proc_index,
                    edge_range=edge_range,
                    result=mgt_result,
                )
            )
            cluster.metrics.node(edge_range.node_index).add_worker(
                cpu_seconds=mgt_result.cpu_seconds,
                io_seconds=mgt_result.io_seconds,
                triangles=mgt_result.triangles,
                io_stats=mgt_result.io_stats,
            )
            cluster.send_result(
                edge_range.node_index,
                self._result_payload(sink_kind, mgt_result.triangles, num_edges),
            )
        return reports, ranges

    def _aggregate_dynamic(
        self,
        cluster: Cluster,
        chunks: list[Chunk],
        outcomes: list[ChunkOutcome],
        sink_kind: str,
        num_edges: int,
    ) -> tuple[list[WorkerReport], list[EdgeRange], ScheduleResult]:
        """Replay the pull-based schedule and account it to the cluster.

        Chunk→worker assignment is the deterministic modelled-time replay of
        :class:`DynamicScheduler`; each worker's per-chunk results are merged
        into one report, each granted chunk is charged a hand-out message,
        and each completed chunk a result message back to the master.
        """
        config = self.config
        costs = [o.result.cpu_seconds + o.result.io_seconds for o in outcomes]
        scheduler = DynamicScheduler(
            chunks,
            num_workers=config.total_processors,
            failure_after=config.failure_after,
            straggler_factors=config.straggler_factors,
        )
        schedule: ScheduleResult = scheduler.schedule(costs)
        failed = set(schedule.failed_workers)

        reports: list[WorkerReport] = []
        for worker in range(config.total_processors):
            node = worker // config.procs_per_node
            proc = worker % config.procs_per_node
            indices = schedule.assignments[worker]
            merged = merge_mgt_results(
                [outcomes[i].result for i in indices], block_size=config.block_size
            )
            envelope = EdgeRange(
                node_index=node,
                proc_index=proc,
                start=min((chunks[i].start for i in indices), default=0),
                stop=max((chunks[i].stop for i in indices), default=0),
            )
            reports.append(
                WorkerReport(
                    node_index=node,
                    proc_index=proc,
                    edge_range=envelope,
                    result=merged,
                    chunks_completed=len(indices),
                    chunks_stolen=schedule.stolen[worker],
                    chunks_retried=len(schedule.retried[worker]),
                    failed=worker in failed,
                )
            )
            cluster.metrics.node(node).add_worker(
                cpu_seconds=merged.cpu_seconds,
                io_seconds=merged.io_seconds,
                triangles=merged.triangles,
                io_stats=merged.io_stats,
                chunks_completed=len(indices),
                chunks_stolen=schedule.stolen[worker],
                chunks_retried=len(schedule.retried[worker]),
                failed=worker in failed,
            )
            for index in indices:
                cluster.send_chunk_grant(node)
                cluster.send_result(
                    node,
                    self._result_payload(
                        sink_kind, outcomes[index].triangles, num_edges
                    ),
                )

        # the chunk list itself (in file order) is the coverage record: every
        # chunk appears exactly once, owned by whichever worker completed it
        owners = schedule.owner_of()
        edge_ranges = [
            EdgeRange(
                node_index=owners[c.index] // config.procs_per_node,
                proc_index=owners[c.index] % config.procs_per_node,
                start=c.start,
                stop=c.stop,
            )
            for c in chunks
        ]
        return reports, edge_ranges, schedule
