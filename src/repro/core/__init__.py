"""The paper's primary contribution: orientation, modified MGT, and PDTL.

Modules
-------
``config``
    :class:`PDTLConfig` -- the (N nodes, P processors/node, M memory/processor,
    B block size) computational-environment model of section IV.
``triangles``
    Triangle records and the counting / listing / file sinks that consume
    reported triangles.
``orientation``
    The degree-based total order ``≺`` (Definition III.2), sequential and
    multicore orientation of an on-disk graph, exactly as the master
    performs it in section IV-B1.
``load_balance``
    Naive equal-edge splits and the in-degree-balanced splits of the
    load-balancing step (evaluated in Figure 9).
``kernels``
    The shared vectorised sorted-intersection kernels (packed-key
    membership, segment gather, galloping merge) used by the MGT inner
    loop, the in-memory baselines and the external sort alike.
``mgt``
    The modified Massive Graph Triangulation algorithm (Algorithm 2),
    operating over the binary on-disk format with a strict memory budget.
``scheduler``
    Dynamic pull-based chunk scheduling: window-aligned chunking of the
    oriented edge file, the deterministic pull-protocol replay with
    straggler/failure injection, and the picklable per-chunk execution
    tasks every backend (including processes) runs.
``shm``
    Zero-copy shared-memory publication of the oriented adjacency: the
    master publishes degrees/adjacency/offsets into named
    ``multiprocessing.shared_memory`` segments once per run, and workers
    reconstruct read-only numpy views from small descriptors -- the layer
    that removes the duplicated per-worker host reads of the processes
    backend.
``pdtl``
    The PDTL master/worker framework: orientation, graph duplication, edge
    range assignment (static ranges or the dynamic chunk queue), per-core
    MGT execution (serially, via threads, or via a simulated cluster), and
    result aggregation.
``runner``
    One-call convenience entry points ``count_triangles`` / ``list_triangles``.
"""

from repro.core.config import PDTLConfig
from repro.core.mgt import MGTWorker, mgt_count
from repro.core.orientation import OrientationResult, orient_graph, orient_csr
from repro.core.pdtl import PDTLResult, PDTLRunner
from repro.core.runner import count_triangles, list_triangles
from repro.core.scheduler import (
    Chunk,
    DynamicScheduler,
    chunk_seed,
    make_chunks,
    resolve_chunk_edges,
)
from repro.core.shm import (
    SharedGraphDescriptor,
    SharedGraphView,
    publish_graph,
    shm_available,
)
from repro.core.triangles import (
    CountingSink,
    ListingSink,
    FileSink,
    PerVertexCountSink,
    Triangle,
)

__all__ = [
    "PDTLConfig",
    "Triangle",
    "CountingSink",
    "ListingSink",
    "FileSink",
    "PerVertexCountSink",
    "OrientationResult",
    "orient_graph",
    "orient_csr",
    "MGTWorker",
    "mgt_count",
    "Chunk",
    "DynamicScheduler",
    "chunk_seed",
    "make_chunks",
    "resolve_chunk_edges",
    "SharedGraphDescriptor",
    "SharedGraphView",
    "publish_graph",
    "shm_available",
    "PDTLRunner",
    "PDTLResult",
    "count_triangles",
    "list_triangles",
]
