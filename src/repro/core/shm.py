"""Zero-copy shared-memory publication of the oriented adjacency.

The ``processes`` backend used to make every worker re-open the oriented
graph files and re-read each MGT memory window (plus every full-graph scan
block) from disk through its own descriptors -- the duplicated host reads
bounded multicore scaling long before the CPUs did.  This module publishes
the oriented graph **once** into named :mod:`multiprocessing.shared_memory`
segments so workers slice memory windows zero-copy:

* :func:`publish_graph` copies the degree array, the adjacency array and
  the precomputed vertex offsets of an on-disk oriented graph into three
  named segments and returns a :class:`SharedGraphPublication` whose small
  :class:`SharedGraphDescriptor` (segment names + dtypes + shapes) is all
  that ever crosses a process boundary;
* :class:`SharedGraphView` reconstructs zero-copy, read-only numpy views
  from a descriptor inside a worker and exposes the exact read API
  :class:`~repro.core.mgt.MGTWorker` needs
  (:meth:`~SharedGraphView.read_degrees`,
  :meth:`~SharedGraphView.read_adjacency_range`), so the worker's analytic
  I/O accounting is **bit-identical** to the on-disk path -- the data just
  arrives without syscalls or copies;
* :func:`attach_view` caches attachments per process (keyed by the
  publication token), so a persistent pool worker maps each segment once
  and serves every subsequent chunk task from the existing mapping.

Everything here sits strictly below the accounting layer, like the fd
cache and the read-ahead buffer in :mod:`repro.externalmem.blockio`: the
publication reads the graph files raw (no block charges), and a view never
touches an :class:`~repro.externalmem.iostats.IOStats` counter -- the MGT
worker keeps charging its modelled reads exactly as before.

Platform notes
--------------
POSIX shared memory lives in ``/dev/shm``; :func:`shm_available` probes for
it once so callers (and tests) can skip with a reason on platforms without
it.  On Python < 3.13 *attaching* via
:class:`multiprocessing.shared_memory.SharedMemory` also registers the
segment with the ``multiprocessing.resource_tracker`` -- under the default
``fork`` start method the whole process tree shares one tracker, so an
attach-side unregister would delete the master's create-side registration
(its leak safety net), and a worker exiting with the registration intact
would warn about "leaked" segments it never owned.  :func:`_attach_segment`
therefore sidesteps the tracker entirely where possible: on Linux the
segment is simply the file ``/dev/shm/<name>``, so attach is a plain
``open`` + ``mmap`` (read-only), invisible to the tracker.  On platforms
without that path it falls back to ``SharedMemory`` attach, accepting a
cosmetic tracker warning at worker shutdown -- documented, never harmful,
because publications are unlinked by the master before the pool exits.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.errors import PDTLError
from repro.externalmem.blockio import DiskModel
from repro.graph.binfmt import GraphFile
from repro.utils import prefix_sums

__all__ = [
    "SHM_PREFIX",
    "SharedArraySpec",
    "SharedGraphDescriptor",
    "SharedGraphPublication",
    "SharedGraphView",
    "attach_cache_stats",
    "attach_view",
    "detach_view",
    "publish_graph",
    "publish_input_graph",
    "shm_available",
]

#: Prefix of every segment name this module creates; the leak checks in the
#: test suite scan ``/dev/shm`` for stragglers carrying it.
SHM_PREFIX = "pdtl-shm"

_TOKEN_LOCK = threading.Lock()
_TOKEN_COUNTER = 0

_AVAILABLE: tuple[bool, str] | None = None


def shm_available() -> tuple[bool, str]:
    """Probe (once) whether POSIX shared memory works on this host.

    Returns ``(True, "")`` when a tiny segment can be created, attached and
    unlinked; otherwise ``(False, reason)`` so callers can skip or fall
    back with an explanation (e.g. no ``/dev/shm`` mount, or a platform
    without :mod:`multiprocessing.shared_memory`).
    """
    global _AVAILABLE
    if _AVAILABLE is not None:
        return _AVAILABLE
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=8)
        try:
            probe.buf[0] = 1
        finally:
            probe.close()
            probe.unlink()
    except Exception as exc:  # pragma: no cover - platform-dependent
        _AVAILABLE = (False, f"POSIX shared memory unavailable: {exc!r}")
    else:
        _AVAILABLE = (True, "")
    return _AVAILABLE


def _new_token() -> str:
    """A process-unique publication token (also the segment-name stem)."""
    global _TOKEN_COUNTER
    with _TOKEN_LOCK:
        _TOKEN_COUNTER += 1
        return f"{SHM_PREFIX}-{os.getpid()}-{_TOKEN_COUNTER}"


_DEV_SHM = "/dev/shm"


class _MappedSegment:
    """A read-only attach to a named segment via plain ``mmap``.

    On Linux a POSIX shared-memory object *is* the file
    ``/dev/shm/<name>``; mapping it directly shares the same physical
    pages as ``SharedMemory`` would, without ever talking to the
    ``multiprocessing.resource_tracker`` (see module docs).  The mapping
    stays valid after the master unlinks the segment -- POSIX keeps the
    memory alive for existing maps.
    """

    __slots__ = ("buf", "_mmap")

    def __init__(self, path: str) -> None:
        import mmap

        with open(path, "rb") as handle:
            self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        try:
            self.buf.release()
        finally:
            self._mmap.close()


def _attach_segment(name: str):
    """Attach read-only to a published segment; tracker-free on Linux."""
    path = os.path.join(_DEV_SHM, name)
    if os.path.exists(path):
        return _MappedSegment(path)
    # portable fallback: SharedMemory attach; on Python < 3.13 this
    # re-registers the name with the (possibly private) resource tracker,
    # which may print a cosmetic leaked-segment warning when a non-forked
    # worker exits -- harmless, the master has unlinked by then
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name, create=False)


@dataclass(frozen=True)
class SharedArraySpec:
    """``(segment name, dtype, shape)`` -- everything needed to rebuild a
    zero-copy numpy view of one published array inside any process."""

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def num_items(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return n


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """The small, picklable handle to one published graph.

    Carries the array specs plus the graph metadata a worker needs to run
    MGT without ever opening the on-disk files.  ``token`` identifies the
    publication; worker-side attachments are cached by it.

    Besides the raw graph arrays (degrees, adjacency, offsets) a
    publication can carry *derived* arrays, each a pure function of the
    graph that every worker would otherwise recompute:

    * for an **oriented** graph (:func:`publish_graph`), the two scan
      invariants of the MGT full-graph pass -- the per-entry source vertex
      of every adjacency position and the globally sorted packed
      ``(source, destination)`` keys
      (:func:`repro.core.kernels.packed_keys`) -- so each worker runs its
      window scan as one fused vectorised pass;
    * for the **input** (unoriented) graph (:func:`publish_input_graph`),
      the degree-order keys of
      :func:`repro.core.orientation.degree_order_keys`, so each parallel
      orientation worker filters its vertex window with one vectorised
      comparison instead of re-deriving the order per chunk.

    Absent derived arrays are ``None`` in the descriptor and their
    segments are never created.
    """

    token: str
    degrees: SharedArraySpec
    adjacency: SharedArraySpec
    offsets: SharedArraySpec
    num_vertices: int
    num_edges: int
    directed: bool
    max_degree: int
    scan_sources: SharedArraySpec | None = None
    scan_keys: SharedArraySpec | None = None
    order_keys: SharedArraySpec | None = None


class SharedGraphPublication:
    """Master-side owner of the published segments.

    The publication holds the created :class:`SharedMemory` objects alive;
    :meth:`unlink` (idempotent, also the context-manager exit) closes the
    mappings and removes the segments from ``/dev/shm``.  Workers that are
    still attached keep their mappings until they close them -- POSIX keeps
    unlinked segments alive for existing maps -- so unlinking after the
    last task completes is always safe.
    """

    def __init__(self, descriptor: SharedGraphDescriptor, segments) -> None:
        self.descriptor = descriptor
        self._segments = list(segments)
        self._unlinked = False

    def unlink(self) -> None:
        """Close and remove every segment of this publication (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        # drop any same-process cached view first (serial/threads backends
        # attach in this very process)
        detach_view(self.descriptor.token)
        for shm in self._segments:
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    close = unlink

    def __enter__(self) -> "SharedGraphPublication":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC order dependent
        try:
            self.unlink()
        except Exception:
            pass


def _read_file_raw(graph: GraphFile, file_name: str, num_items: int) -> np.ndarray:
    """Read a graph file directly from the host path, below the accounting."""
    path = graph.device.path(file_name)
    if num_items == 0:
        return np.empty(0, dtype=np.int64)
    return np.fromfile(path, dtype=np.int64, count=num_items)


def publish_graph(
    graph: GraphFile,
    scan_invariants: bool = True,
    order_keys: bool = False,
) -> SharedGraphPublication:
    """Publish an on-disk graph into named shared-memory segments.

    One copy per host: the degree array, the adjacency array and the
    derived vertex-offset array each get a segment named after a fresh
    publication token.  The files are read raw (``np.fromfile`` on the
    device paths), so no I/O counter anywhere moves -- publication is a
    host-side optimisation, invisible to the simulation.

    ``scan_invariants`` additionally publishes the MGT full-graph scan
    invariants (per-entry sources + sorted packed keys; the default, for
    oriented graphs); ``order_keys`` publishes the degree-order keys the
    parallel orientation workers filter with (see
    :func:`publish_input_graph`).
    """
    available, reason = shm_available()
    if not available:
        raise PDTLError(f"cannot publish graph to shared memory: {reason}")
    from multiprocessing import shared_memory

    token = _new_token()
    degrees = _read_file_raw(graph, graph.degree_file_name, graph.num_vertices)
    adjacency = _read_file_raw(graph, graph.adjacency_file_name, graph.num_edges)
    offsets = prefix_sums(degrees)

    arrays = {
        "deg": degrees,
        "adj": adjacency,
        "off": offsets,
    }
    if scan_invariants:
        # the scan invariants (see SharedGraphDescriptor): per-entry sources
        # and the sorted packed (source, destination) keys of the adjacency
        scan_sources = kernels.window_sources(offsets, 0, graph.num_vertices)
        arrays["src"] = scan_sources
        arrays["key"] = kernels.packed_keys(
            scan_sources, adjacency, graph.num_vertices
        )
    if order_keys:
        from repro.core.orientation import degree_order_keys

        arrays["ord"] = degree_order_keys(degrees)
    segments = []
    specs: dict[str, SharedArraySpec] = {}
    try:
        for suffix, array in arrays.items():
            name = f"{token}-{suffix}"
            # POSIX segments must be non-empty; over-allocate one byte for
            # empty arrays and let the spec's shape carry the truth
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(array.nbytes, 1)
            )
            segments.append(shm)
            if array.size:
                np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[:] = array
            specs[suffix] = SharedArraySpec(
                name=name, dtype=str(array.dtype), shape=tuple(array.shape)
            )
    except BaseException:
        for shm in segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        raise

    descriptor = SharedGraphDescriptor(
        token=token,
        degrees=specs["deg"],
        adjacency=specs["adj"],
        offsets=specs["off"],
        scan_sources=specs.get("src"),
        scan_keys=specs.get("key"),
        order_keys=specs.get("ord"),
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        directed=graph.directed,
        max_degree=graph.max_degree,
    )
    return SharedGraphPublication(descriptor, segments)


def publish_input_graph(graph: GraphFile) -> SharedGraphPublication:
    """Publish the *input* (unoriented) graph for parallel preprocessing.

    The publication carries the raw graph arrays plus the degree-order
    keys (computed once, instead of once per orientation worker) and skips
    the MGT scan invariants, which only the oriented graph needs.  The
    master unlinks it as soon as orientation completes -- the segments
    never outlive the preprocessing phase, even when a worker raises
    mid-run (:class:`~repro.core.pdtl.PDTLRunner` unlinks in a
    ``finally``).
    """
    return publish_graph(graph, scan_invariants=False, order_keys=True)


class _SharedDevice:
    """The sliver of the :class:`~repro.externalmem.blockio.BlockDevice`
    surface MGT's accounting helpers use: just the disk performance model.
    The shared view has no real device -- reads are memory slices -- but the
    modelled transfer times must keep coming from the same model the
    on-disk path would have used."""

    __slots__ = ("model",)

    def __init__(self, model: DiskModel) -> None:
        self.model = model


class SharedGraphView:
    """Worker-side zero-copy handle to a published oriented graph.

    Mirrors the :class:`~repro.graph.binfmt.GraphFile` read API that
    :class:`~repro.core.mgt.MGTWorker` uses, but every read is a read-only
    numpy slice of the shared segments: no file descriptors, no syscalls,
    no copies.  ``cached_offsets`` additionally exposes the published
    vertex-offset array so the worker can skip recomputing prefix sums per
    chunk (it still charges the modelled degree-file read).
    """

    def __init__(self, descriptor: SharedGraphDescriptor, model: DiskModel) -> None:
        self.descriptor = descriptor
        self.device = _SharedDevice(model)
        self._segments: list = []
        self._degrees = self._attach(descriptor.degrees)
        self._adjacency = self._attach(descriptor.adjacency)
        self._offsets = self._attach(descriptor.offsets)
        self._scan_sources = self._attach(descriptor.scan_sources)
        self._scan_keys = self._attach(descriptor.scan_keys)
        self._order_keys = self._attach(descriptor.order_keys)
        self._closed = False

    def _attach(self, spec: SharedArraySpec | None) -> np.ndarray | None:
        """Attach one published array (absent derived arrays stay ``None``)."""
        if spec is None:
            return None
        shm = _attach_segment(spec.name)
        self._segments.append(shm)
        return self._as_view(shm, spec)

    @staticmethod
    def _as_view(shm, spec: SharedArraySpec) -> np.ndarray:
        if spec.num_items == 0:
            array = np.empty(spec.shape, dtype=np.dtype(spec.dtype))
        else:
            array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
        array.flags.writeable = False  # shared data: nobody mutates it
        return array

    # -- GraphFile-compatible metadata ------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.descriptor.num_vertices

    @property
    def num_edges(self) -> int:
        return self.descriptor.num_edges

    @property
    def directed(self) -> bool:
        return self.descriptor.directed

    @property
    def max_degree(self) -> int:
        return self.descriptor.max_degree

    # -- GraphFile-compatible reads (zero-copy) ----------------------------------------

    @property
    def cached_offsets(self) -> np.ndarray:
        """The published exclusive prefix sums of the degree array."""
        return self._offsets

    def _require(self, array: np.ndarray | None, label: str) -> np.ndarray:
        if self._closed:
            raise PDTLError(
                f"shared graph view of {self.descriptor.token!r} is closed"
            )
        if array is None:
            raise PDTLError(
                f"publication {self.descriptor.token!r} does not carry "
                f"{label}; it was published without them"
            )
        return array

    @property
    def scan_sources(self) -> np.ndarray:
        """Per-entry source vertex of every adjacency position (length E)."""
        return self._require(self._scan_sources, "the MGT scan invariants")

    @property
    def scan_keys(self) -> np.ndarray:
        """Globally sorted packed ``(source, destination)`` keys (length E)."""
        return self._require(self._scan_keys, "the MGT scan invariants")

    @property
    def order_keys(self) -> np.ndarray:
        """Degree-order keys of the input graph (length n); see
        :func:`repro.core.orientation.degree_order_keys`."""
        return self._require(self._order_keys, "the degree-order keys")

    def offsets(self) -> np.ndarray:
        return self._offsets

    def read_degrees(self) -> np.ndarray:
        return self._degrees

    def read_adjacency_range(self, start_edge: int, count: int) -> np.ndarray:
        if start_edge < 0 or count < 0 or start_edge + count > self.num_edges:
            raise PDTLError(
                f"adjacency range [{start_edge}, {start_edge + count}) out of "
                f"bounds (shared graph has {self.num_edges} entries)"
            )
        return self._adjacency[start_edge : start_edge + count]

    def with_readahead(self, buffer_bytes: int | str) -> "SharedGraphView":
        """Read-ahead is meaningless for memory-resident data: no-op."""
        return self

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Unmap the segments (idempotent).  Views handed out earlier must
        not be dereferenced afterwards."""
        if self._closed:
            return
        self._closed = True
        self._degrees = self._adjacency = self._offsets = None  # type: ignore[assignment]
        self._scan_sources = self._scan_keys = self._order_keys = None  # type: ignore[assignment]
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - best effort unmap
                pass


# -- per-process attachment cache -----------------------------------------------------
#
# A persistent pool worker executes many chunk tasks against the same
# publication; attaching per task would re-mmap the segments hundreds of
# times.  The cache keys attachments by publication token.  Cache
# management only ever *drops references* -- it never calls close() on a
# view, because a concurrent run in the same process may still be reading
# it; CPython refcounting unmaps the segments the moment the last reader
# lets go (``_MappedSegment``/``SharedMemory`` both release their mapping
# on deallocation).  Staleness of an already-unlinked publication (whose
# mapping is the only thing keeping its memory alive) is therefore bounded
# two ways: every attach sweeps entries whose backing ``/dev/shm`` file is
# gone, and the cache never holds more than _MAX_ATTACHED entries, so at
# most one dead graph copy can stay pinned per process on hosts without
# the sweepable mmap path.

_ATTACH_LOCK = threading.Lock()
_ATTACHED: dict[str, SharedGraphView] = {}
_MAX_ATTACHED = 2

# attach-cache effectiveness (observability only; harvested by
# repro.obs.metrics via before/after snapshots)
_ATTACH_STATS = {"hits": 0, "misses": 0}


def attach_cache_stats() -> dict[str, int]:
    """Copy of this process's attach-cache hit/miss counters."""
    with _ATTACH_LOCK:
        return dict(_ATTACH_STATS)


def _sweep_dead_locked() -> None:
    """Drop cached views whose segments were unlinked; caller holds the lock."""
    for token, view in list(_ATTACHED.items()):
        path = os.path.join(_DEV_SHM, view.descriptor.adjacency.name)
        if isinstance(view._segments[0], _MappedSegment) and not os.path.exists(path):
            del _ATTACHED[token]


def attach_view(descriptor: SharedGraphDescriptor, model: DiskModel) -> SharedGraphView:
    """Return the process-local cached view for ``descriptor`` (attaching on
    first use).  Thread-safe; threads backend workers share one mapping."""
    with _ATTACH_LOCK:
        _sweep_dead_locked()
        view = _ATTACHED.pop(descriptor.token, None)
        if view is not None:
            _ATTACHED[descriptor.token] = view  # bump LRU recency
            _ATTACH_STATS["hits"] += 1
            return view
        _ATTACH_STATS["misses"] += 1
    view = SharedGraphView(descriptor, model)
    with _ATTACH_LOCK:
        existing = _ATTACHED.get(descriptor.token)
        if existing is not None:
            view.close()  # fresh, never handed out -- safe to unmap now
            return existing
        _ATTACHED[descriptor.token] = view
        while len(_ATTACHED) > _MAX_ATTACHED:
            oldest = next(iter(_ATTACHED))  # insertion order = LRU order
            del _ATTACHED[oldest]  # dropped, not closed: readers may remain
    return view


def detach_view(token: str) -> None:
    """Forget the cached attachment for ``token`` (no-op if absent).

    The view is not closed -- a concurrent reader may still hold it; the
    mapping is released when the last reference dies.
    """
    with _ATTACH_LOCK:
        _ATTACHED.pop(token, None)


def _reset_worker_cache() -> None:
    """Forget inherited attachments in a fresh pool worker.

    Under the ``fork`` start method a worker inherits the parent's cache
    dict *and* its mappings; the entries are valid but belong to the
    parent's lifecycle, so the worker starts from an empty cache without
    closing them (closing would just unmap the child's copy -- harmless --
    but keeping them would let the child double-close on eviction).
    """
    global _ATTACHED
    with _ATTACH_LOCK:
        _ATTACHED = {}
