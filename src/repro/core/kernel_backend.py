"""Kernel-tier selection: route the hot primitives to compiled loops.

:mod:`repro.core.kernels` evaluates every hot path with batched numpy.
That tier is always available, but each primitive is still 3-5 full-array
passes with materialised intermediates (packed keys, segment gathers,
boolean masks).  This module manages an optional *compiled* tier that fuses
each chain into one allocation-free loop:

* ``numba`` -- :mod:`repro.core.kernels_compiled`, ``@njit(cache=True,
  nogil=True)`` twins of the numpy kernels (used by the CI ``compiled``
  leg, where numba is installed);
* ``cffi`` -- :mod:`repro.core.kernels_cffi`, the same loops as C compiled
  once into a cached extension module (used where a C compiler exists but
  numba does not);
* ``numpy`` -- no registry at all; the public functions fall through to
  their ``_*_numpy`` bodies.

Selection
---------

The requested backend comes from, in priority order, an explicit
:func:`activate`/:func:`ensure` call (``PDTLConfig.kernel_backend`` routes
through :func:`ensure`), the ``KERNEL_BACKEND`` environment variable, and
the default ``"auto"``.  ``auto`` resolves silently to the best available
tier (numba, then cffi, then numpy).  Explicitly requesting an unavailable
backend degrades to numpy with a :class:`RuntimeWarning` rather than
failing: the compiled tier is an accelerator, never a correctness
dependency.

Availability is *per function*: :func:`activate` warms every registered
kernel on a miniature graph and checks it against its numpy twin
(:data:`repro.core.kernels.NUMPY_IMPLS`); a kernel that fails to JIT,
crashes, or disagrees is dropped from the registry with a
:class:`RuntimeWarning` while the rest of the tier stays active.  Dispatch
happens inside :mod:`repro.core.kernels` (primitives) and via
:func:`fused` (the multi-pass entry points of the MGT worker, the
edge-support sink and the truss peeler), so a dropped kernel simply means
that one call sites falls back to numpy.

Every implementation is bit-identical to the numpy tier by contract:
triangle counts, listing order, edge supports, IOStats and the modelled
operation counts do not change when the backend does.  The
backend-equivalence matrix in ``tests/cluster/test_backend_equivalence.py``
enforces this across all four execution backends.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.core import kernels
from repro.errors import ConfigurationError
from repro.obs.logconfig import fallback_message

__all__ = [
    "BACKEND_NAMES",
    "COMPILED_BACKENDS",
    "activate",
    "active_backend",
    "backend_available",
    "compiled_available",
    "dispatch_counts",
    "ensure",
    "fused",
    "initialize_default",
    "reset_dispatch_counts",
    "use",
    "warmup",
]

#: Accepted values for ``KERNEL_BACKEND`` / ``PDTLConfig.kernel_backend``.
BACKEND_NAMES = ("auto", "numpy", "numba", "cffi")

#: The backends that actually compile (``auto`` resolution order).
COMPILED_BACKENDS = ("numba", "cffi")

#: Registry names of the fused multi-pass entry points (everything else in
#: a backend registry is a primitive dispatched inside ``kernels``).
FUSED_KERNELS = (
    "mgt_block_scan",
    "edge_support_accumulate",
    "truss_peel_level",
    "triangle_edge_ids",
    "incidence_csr",
)

# resolved state: what was asked for and what we ended up with
_requested: str | None = None
_resolved: str | None = None

# probe/registry caches so re-activation (the use() context manager, worker
# processes re-ensuring) costs a dict lookup, not a recompile
_probe_cache: dict[str, tuple[bool, str]] = {}
_registry_cache: dict[str, dict[str, Callable]] = {}
_warned: set[str] = set()

# per-process fused-dispatch counts, keyed "<kernel>.<backend>"; plain int
# increments (observability only, harvested by repro.obs.metrics)
_dispatch_counts: dict[str, int] = {}


def dispatch_counts() -> dict[str, int]:
    """Copy of this process's fused-kernel dispatch counts.

    Keys are ``"<kernel>.<backend>"`` (``"mgt_block_scan.numba"``,
    ``"edge_support_accumulate.numpy"``); a :func:`fused` call that found no
    compiled implementation counts as a numpy dispatch, since that is the
    path the caller takes.
    """
    return dict(_dispatch_counts)


def reset_dispatch_counts() -> None:
    _dispatch_counts.clear()


def _warn(key: str, message: str) -> None:
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _load_backend(name: str) -> dict[str, Callable]:
    """Import + build the registry for a compiled backend (may raise)."""
    if name == "numba":
        from repro.core import kernels_compiled

        return kernels_compiled.build_registry()
    if name == "cffi":
        from repro.core import kernels_cffi

        return kernels_cffi.build_registry()
    raise ConfigurationError(f"unknown compiled kernel backend {name!r}")


def backend_available(name: str) -> tuple[bool, str]:
    """Probe one backend: ``(available, detail)``.

    ``detail`` is the reason when unavailable (missing module, compiler
    failure, ...) and empty when available.  Probing a compiled backend
    builds and warms its registry, so a ``True`` answer means "ready to
    dispatch", not merely "importable"; results are cached per process.
    """
    if name == "numpy":
        return True, ""
    if name not in COMPILED_BACKENDS:
        return False, f"unknown backend {name!r}"
    cached = _probe_cache.get(name)
    if cached is not None:
        return cached
    try:
        registry = dict(_load_backend(name))
        dropped = _warm_registry(name, registry, warn=False)
        if not registry:
            raise RuntimeError(
                "every kernel failed warmup: " + "; ".join(dropped or ("empty registry",))
            )
        _registry_cache[name] = registry
        result = (True, "")
    except Exception as exc:  # noqa: BLE001 - availability probe must not raise
        result = (False, f"{type(exc).__name__}: {exc}")
    _probe_cache[name] = result
    return result


def compiled_available() -> tuple[bool, str]:
    """``(available, detail)`` for the best compiled tier on this machine.

    ``detail`` is the backend name (``"numba"`` or ``"cffi"``) when
    available, and the combined unavailability reasons otherwise -- shaped
    for ``pytest.mark.skipif`` skip-with-reason, like ``shm_available()``.
    """
    reasons = []
    for name in COMPILED_BACKENDS:
        ok, detail = backend_available(name)
        if ok:
            return True, name
        reasons.append(f"{name}: {detail}")
    return False, "; ".join(reasons)


def _warmup_cases() -> dict[str, tuple]:
    """Miniature inputs exercising every registered kernel once.

    The graph is the oriented triangle-plus-tail 0->{1,2}, 1->2, 3->{} --
    small enough that compiling dominates, complete enough that every
    branch (hits, misses, empty lists) runs.
    """
    indptr = np.array([0, 2, 3, 3, 3], dtype=np.int64)
    indices = np.array([1, 2, 2], dtype=np.int64)
    a = np.array([-3, 0, 2, 2, 5], dtype=np.int64)
    b = np.array([-3, 1, 2, 6], dtype=np.int64)
    # MGT window covering vertices [0, 3): E_v lists concatenated + offsets
    edg = indices.copy()
    win_offsets = indptr[:4].copy()
    win_degrees = np.array([2, 1, 0], dtype=np.int64)
    block_offsets = np.array([0, 2, 3], dtype=np.int64)
    block_adj = np.array([1, 2, 2], dtype=np.int64)
    # edge-support sink over the 3 oriented edges (keys for n=4)
    edge_keys = np.array([0 * 4 + 1, 0 * 4 + 2, 1 * 4 + 2], dtype=np.int64)
    support = np.zeros(3, dtype=np.int64)
    us = np.array([0], dtype=np.int64)
    vs = np.array([1], dtype=np.int64)
    ws = np.array([2], dtype=np.int64)
    # one-triangle truss peel at k=2
    alive = np.ones(3, dtype=bool)
    tri_alive = np.ones(1, dtype=bool)
    tri_edges = np.array([[0, 1, 2]], dtype=np.int64)
    inc_ptr = np.array([0, 1, 2, 3], dtype=np.int64)
    inc_triangles = np.zeros(3, dtype=np.int64)
    return {
        "sorted_membership": (a, b),
        "merge_positions": (a, b),
        "intersect_sorted": (a, b),
        "triangle_range": (indptr, indices, 0, 4, True),
        "count_cone_range": (indptr, indices, 0, 4),
        "edge_intersections": (indptr, indices, us, vs, True),
        "edge_common_neighbors": (indptr, indices, us, vs),
        "mgt_block_scan": (
            block_adj,
            block_offsets,
            edg,
            0,
            2,
            win_offsets,
            win_degrees,
            True,
        ),
        "edge_support_accumulate": (edge_keys, us, vs, ws, 4, support),
        "truss_peel_level": (
            3,
            alive,
            np.ones(3, dtype=np.int64),
            np.zeros(3, dtype=np.int64),
            inc_ptr,
            inc_triangles,
            tri_edges.reshape(-1),
            tri_alive,
        ),
        "triangle_edge_ids": (
            indptr,
            indices,
            edge_keys,
            np.searchsorted(edge_keys, np.arange(5, dtype=np.int64) * 4),
            4,
            0,
            4,
        ),
        "incidence_csr": (tri_edges.reshape(-1), 3),
    }


def _check_warm_result(name: str, args: tuple, got) -> None:
    """Compare a primitive's warmup output against its numpy twin."""
    twin = kernels.NUMPY_IMPLS.get(name)
    if twin is None:
        return  # fused kernels are checked by the equivalence suites
    if name == "edge_intersections":
        indptr, indices, us, vs, per_edge = args
        want = twin(indptr, indices, us, vs, None, per_edge)
    else:
        want = twin(*args)
    if not isinstance(want, tuple):
        want, got = (want,), (got,)
    for w, g in zip(want, got):
        if not np.array_equal(np.asarray(w), np.asarray(g)):
            raise RuntimeError(f"kernel {name!r} disagrees with numpy on warmup input")


def _warm_registry(
    backend: str, registry: dict[str, Callable], warn: bool = True
) -> list[str]:
    """Run every registered kernel once; drop (and report) the ones that fail.

    This is both JIT warmup (compile outside any timed or modelled region)
    and the partial-availability mechanism: a kernel that raises or
    disagrees with its numpy twin on the miniature input is removed so its
    call sites fall back to numpy, while the rest of the tier stays on.
    """
    dropped: list[str] = []
    cases = _warmup_cases()
    for name in list(registry):
        args = cases.get(name)
        if args is None:
            continue
        # fresh copies: warmup kernels mutate their output arrays
        args = tuple(np.copy(x) if isinstance(x, np.ndarray) else x for x in args)
        try:
            got = registry[name](*args)
            _check_warm_result(name, args, got)
        except Exception as exc:  # noqa: BLE001 - degrade per function
            del registry[name]
            dropped.append(f"{name}: {type(exc).__name__}: {exc}")
            if warn:
                _warn(
                    f"drop:{backend}:{name}",
                    f"kernel backend {backend!r}: dropping kernel {name!r} "
                    f"after failed warmup ({type(exc).__name__}: {exc}); "
                    f"its callers use the numpy path",
                )
    return dropped


def activate(name: str) -> str:
    """Select the kernel tier; returns the backend actually in effect.

    ``auto`` picks the best available silently; an explicit ``numba`` or
    ``cffi`` that is unavailable falls back to ``numpy`` with a
    :class:`RuntimeWarning` (once per backend per process).
    """
    global _requested, _resolved
    name = str(name).lower()
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"kernel_backend must be one of {BACKEND_NAMES}, got {name!r}"
        )
    resolved = name
    if name == "auto":
        resolved = "numpy"
        for candidate in COMPILED_BACKENDS:
            if backend_available(candidate)[0]:
                resolved = candidate
                break
    elif name in COMPILED_BACKENDS:
        ok, detail = backend_available(name)
        if not ok:
            _warn(
                f"fallback:{name}",
                fallback_message(
                    f"kernel backend {name!r}",
                    f"it is unavailable ({detail})",
                    "the numpy tier",
                ),
            )
            resolved = "numpy"
    registry = _registry_cache.get(resolved, {}) if resolved != "numpy" else {}
    kernels._ACTIVE_IMPLS.clear()
    kernels._ACTIVE_IMPLS.update(registry)
    kernels._BACKEND_READY = True
    _requested = name
    _resolved = resolved
    return resolved


def initialize_default() -> str:
    """Resolve the backend from ``KERNEL_BACKEND`` (default ``auto``) once.

    Called lazily from the first kernel dispatch; later explicit
    :func:`activate`/:func:`ensure` calls override it.
    """
    if _resolved is not None and kernels._BACKEND_READY:
        return _resolved
    requested = os.environ.get("KERNEL_BACKEND", "auto").strip().lower() or "auto"
    if requested not in BACKEND_NAMES:
        _warn(
            f"env:{requested}",
            f"ignoring KERNEL_BACKEND={requested!r}: must be one of "
            f"{BACKEND_NAMES}; using 'auto'",
        )
        requested = "auto"
    return activate(requested)


def ensure(name: str) -> str:
    """Make the process's kernel tier match a config knob.

    ``auto`` defers to :func:`initialize_default` (the environment wins, and
    an already-active tier is kept); an explicit backend re-activates only
    when the current request differs.  Worker processes call this from
    ``MGTWorker.__init__`` so a pickled config reproduces the driver's tier.
    """
    name = str(name).lower()
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"kernel_backend must be one of {BACKEND_NAMES}, got {name!r}"
        )
    if name == "auto":
        return initialize_default()
    if name != _requested or not kernels._BACKEND_READY:
        return activate(name)
    return _resolved or "numpy"


def active_backend() -> str:
    """The tier currently in effect (resolving the default on first call)."""
    return initialize_default()


def fused(name: str):
    """The active fused entry point ``name``, or ``None`` for the numpy path."""
    if not kernels._BACKEND_READY:
        initialize_default()
    impl = kernels._ACTIVE_IMPLS.get(name)
    key = f"{name}.{_resolved if impl is not None else 'numpy'}"
    _dispatch_counts[key] = _dispatch_counts.get(key, 0) + 1
    return impl


def warmup() -> tuple[str, ...]:
    """Run every active compiled kernel once; returns the warmed names.

    Activation already warms the registry, so this is cheap and mainly
    useful to make warm state explicit before a timed region (the perf
    benchmarks call it between ``use(...)`` and the first measurement).
    """
    backend = active_backend()
    if backend == "numpy":
        return ()
    registry = kernels._ACTIVE_IMPLS
    _warm_registry(backend, registry)
    return tuple(sorted(registry))


@contextmanager
def use(name: str) -> Iterator[str]:
    """Temporarily switch the kernel tier (tests and benchmarks).

    Restores the previous request on exit; registries are cached, so the
    switch never recompiles.
    """
    global _requested, _resolved
    prev = _requested
    try:
        yield activate(name)
    finally:
        if prev is None:
            # nothing was ever requested explicitly: return to lazy default
            kernels._ACTIVE_IMPLS.clear()
            kernels._BACKEND_READY = False
            _requested = None
            _resolved = None
        else:
            activate(prev)
