"""Shared vectorised sorted-intersection kernels.

Every hot path of this reproduction ultimately evaluates the same primitive:
given a graph whose adjacency is sorted by (source, destination), decide for
a batch of candidate pairs ``(u, w)`` whether the edge ``(u, w)`` exists --
the sorted-array intersection at the core of the modified MGT (section
IV-A1 of the paper) and of every in-memory baseline.  Before this module
existed, MGT evaluated it with batched numpy inside
:meth:`~repro.core.mgt.MGTWorker._process_block` while the five baselines
re-derived it one vertex at a time in interpreted loops, one Python
bytecode dispatch per edge.

This module extracts the machinery into free functions so every layer
shares one implementation:

* :func:`packed_keys` / :func:`csr_packed_keys` -- encode ``(source,
  destination)`` pairs as single monotone int64 keys, turning pair
  membership into a plain binary search;
* :func:`sorted_membership` -- one ``searchsorted`` answering membership
  for a whole query batch;
* :func:`segment_gather` -- gather many adjacency segments into one flat
  array with ``repeat``/``cumsum`` arithmetic (no per-segment loop);
* :func:`merge_sorted` -- the galloping two-array merge (each array is
  placed by binary-searching the other, no element-wise loop);
* :func:`intersect_sorted` -- sorted two-array intersection on top of it;
* :func:`triangle_range` / :func:`count_cone_range` -- the full MGT
  counting identity ``Σ_{u ∈ [lo,hi)} Σ_{v ∈ N⁺(u)} |N⁺(u) ∩ N⁺(v)|``
  evaluated for a whole contiguous cone-vertex range per call;
* :func:`edge_intersections` -- the same identity for an arbitrary batch
  of oriented edges (the PowerGraph vertex-cut layout, where a machine's
  edges are not a contiguous range).

All functions are pure and operate on plain numpy arrays, so they serve
the in-memory baselines, the external-memory MGT inner loop (which gathers
from its window array instead of the full adjacency), and the tests alike.

Dispatch seam
-------------

Each batch primitive below may be routed to a compiled implementation
registered by :mod:`repro.core.kernel_backend` (numba- or cffi-compiled
loops that fuse the gather → intersect → count chain without the
intermediate arrays).  The numpy bodies live on as ``_*_numpy`` twins --
they are the always-available fallback, the per-function escape hatch when
a single compiled kernel is unavailable, and the reference the compiled
tier is property-tested against (:data:`NUMPY_IMPLS`).  Compiled or not,
every implementation must return bit-identical values: same counts, same
element order, same deterministic ``operations`` work measure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PDTLError

__all__ = [
    "DEFAULT_BATCH_ENTRIES",
    "MAX_PACKABLE_VERTICES",
    "NUMPY_IMPLS",
    "packed_keys",
    "csr_packed_keys",
    "window_sources",
    "sorted_membership",
    "segment_gather",
    "merge_positions",
    "merge_sorted",
    "intersect_sorted",
    "iter_vertex_batches",
    "triangle_range",
    "count_cone_range",
    "edge_intersections",
    "edge_common_neighbors",
]

#: Compiled implementations installed by :func:`repro.core.kernel_backend.activate`,
#: keyed by primitive name.  Empty under the numpy tier.  Callers never touch
#: this directly -- the public functions consult it via :func:`_impl`.
_ACTIVE_IMPLS: dict = {}

#: Set once :mod:`repro.core.kernel_backend` has resolved a backend (even if
#: the resolution was "numpy, nothing to install").  Guards the lazy
#: auto-detection so steady-state dispatch is a single dict lookup.
_BACKEND_READY = False


def _impl(name: str):
    """Active compiled implementation of ``name``, or ``None`` for numpy.

    On first use triggers :func:`repro.core.kernel_backend.initialize_default`
    so plain library users (no config knob, no env var) transparently get the
    best available tier.
    """
    if not _BACKEND_READY:
        from repro.core import kernel_backend

        kernel_backend.initialize_default()
    return _ACTIVE_IMPLS.get(name)

#: Default bound on adjacency entries per :func:`triangle_range` batch.  The
#: batch's packed-key array is the haystack of a binary search probed once
#: per gathered element, so keeping it L1/L2-resident (8192 entries = 64 KB)
#: measurably beats larger batches while still amortising numpy dispatch
#: overhead over thousands of edges per call.
DEFAULT_BATCH_ENTRIES = 8192

#: Largest ``num_vertices`` whose packed keys fit int64.  The packing maps
#: ``(source, destination)`` with both ids below ``n`` to ``source * n +
#: destination <= n**2 - 1``, so the requirement is ``n**2 <= 2**63``:
#: ``3037000499**2 == 9223372030926249001 <= 2**63 - 1`` while
#: ``3037000500**2`` already overflows.
MAX_PACKABLE_VERTICES = 3037000499


def packed_keys(
    sources: np.ndarray, destinations: np.ndarray, num_vertices: int
) -> np.ndarray:
    """Pack ``(source, destination)`` pairs into single int64 keys.

    The packing ``source * n + destination`` is strictly monotone in the
    lexicographic pair order whenever ``0 <= destination < n``, so packed
    keys of a (source, destination)-sorted edge set are themselves sorted.

    Raises :class:`~repro.errors.PDTLError` when ``num_vertices`` exceeds
    :data:`MAX_PACKABLE_VERTICES` -- beyond that the products silently wrap
    around int64 and the "monotone, therefore sorted" guarantee every caller
    builds on is gone.
    """
    if num_vertices > MAX_PACKABLE_VERTICES:
        raise PDTLError(
            f"cannot pack (source, destination) pairs for num_vertices="
            f"{num_vertices}: keys source * num_vertices + destination exceed "
            f"int64 once num_vertices > {MAX_PACKABLE_VERTICES} "
            f"(num_vertices**2 - 1 must stay <= 2**63 - 1), and wrapped keys "
            f"would break the sorted-key membership tests"
        )
    return np.asarray(sources, dtype=np.int64) * np.int64(num_vertices) + np.asarray(
        destinations, dtype=np.int64
    )


def csr_packed_keys(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Packed keys of every stored edge of a CSR graph, in storage order.

    Because CSR storage is source-major with destination-sorted lists, the
    result is a sorted array usable directly as a :func:`sorted_membership`
    haystack for whole-graph edge-existence queries.
    """
    num_vertices = int(indptr.shape[0] - 1)
    sources = np.repeat(
        np.arange(num_vertices, dtype=np.int64), np.diff(indptr).astype(np.int64)
    )
    return packed_keys(sources, indices, num_vertices)


def window_sources(offsets: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Per-entry source vertex of the adjacency slice covering ``[lo, hi)``.

    ``offsets`` are the exclusive prefix sums of the degree array (CSR
    ``indptr``); the result aligns with
    ``adjacency[offsets[lo] : offsets[hi]]``.  This is the repeat/cumsum
    idiom of :func:`csr_packed_keys` exposed for arbitrary vertex windows --
    the orientation scan and the shared-memory publisher both derive their
    per-entry sources from it.
    """
    degrees = (offsets[lo + 1 : hi + 1] - offsets[lo:hi]).astype(np.int64)
    return np.repeat(np.arange(lo, hi, dtype=np.int64), degrees)


def sorted_membership(haystack: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``queries`` occur in the sorted array ``haystack``.

    One vectorised binary search for the whole batch -- the packed-key
    twin of the per-element sorted-array intersection the paper's modified
    MGT performs.
    """
    impl = _impl("sorted_membership")
    if impl is not None:
        return impl(haystack, queries)
    return _sorted_membership_numpy(haystack, queries)


def _sorted_membership_numpy(haystack: np.ndarray, queries: np.ndarray) -> np.ndarray:
    if queries.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if haystack.shape[0] == 0:
        return np.zeros(queries.shape[0], dtype=bool)
    pos = np.searchsorted(haystack, queries)
    np.minimum(pos, haystack.shape[0] - 1, out=pos)
    return haystack[pos] == queries


def segment_gather(
    data: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather ``data[starts[i] : starts[i] + lengths[i]]`` for all ``i`` at once.

    Returns ``(values, owners)`` where ``values`` is the concatenation of
    all segments and ``owners[j]`` is the segment index each value came
    from.  Implemented with ``repeat``/``cumsum`` index arithmetic -- no
    Python-level loop over segments.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype), np.empty(0, dtype=np.int64)
    bounds = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=bounds[1:])
    flat_index = np.repeat(starts - bounds[:-1], lengths) + np.arange(
        total, dtype=np.int64
    )
    owners = np.repeat(np.arange(lengths.shape[0], dtype=np.int64), lengths)
    return data[flat_index], owners


def merge_positions(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Output positions of each element of two sorted arrays in their merge.

    The galloping two-array merge: each element's output position is its own
    rank plus the number of elements of the *other* array that precede it,
    found with two whole-array binary searches instead of an element loop.
    Stable -- on ties ``a``'s elements precede ``b``'s.  Returning positions
    (rather than merged values) lets callers permute *payload* arrays by the
    key merge, which is how the external-sort merge splices two run buffers
    (rows follow their packed keys).
    """
    impl = _impl("merge_positions")
    if impl is not None:
        return impl(a, b)
    return _merge_positions_numpy(a, b)


def _merge_positions_numpy(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pos_a = np.arange(a.shape[0]) + np.searchsorted(b, a, side="left")
    pos_b = np.arange(b.shape[0]) + np.searchsorted(a, b, side="right")
    return pos_a, pos_b


def merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays into one sorted array (stable: ties keep ``a`` first)."""
    pos_a, pos_b = merge_positions(a, b)
    out = np.empty(a.shape[0] + b.shape[0], dtype=np.result_type(a, b))
    out[pos_a] = a
    out[pos_b] = b
    return out


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elements of sorted array ``b`` that also occur in sorted array ``a``."""
    impl = _impl("intersect_sorted")
    if impl is not None:
        return impl(a, b)
    return _intersect_sorted_numpy(a, b)


def _intersect_sorted_numpy(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return b[_sorted_membership_numpy(a, b)]


def iter_vertex_batches(
    indptr: np.ndarray,
    lo: int,
    hi: int,
    batch_entries: int = DEFAULT_BATCH_ENTRIES,
):
    """Split the vertex range ``[lo, hi)`` into sub-ranges of bounded adjacency size.

    Each yielded ``(blo, bhi)`` covers at least one vertex and at most
    ``batch_entries`` adjacency entries (more only when a single vertex's
    list alone exceeds the bound), so the scratch arrays of
    :func:`triangle_range` stay bounded regardless of graph size.
    """
    if batch_entries <= 0:
        raise ValueError("batch_entries must be positive")
    blo = lo
    while blo < hi:
        target = int(indptr[blo]) + batch_entries
        bhi = int(np.searchsorted(indptr, target, side="right")) - 1
        bhi = max(bhi, blo + 1)
        bhi = min(bhi, hi)
        yield blo, bhi
        blo = bhi


def triangle_range(
    indptr: np.ndarray,
    indices: np.ndarray,
    lo: int,
    hi: int,
    want_triples: bool = False,
) -> tuple:
    """Evaluate the MGT counting identity for every cone vertex in ``[lo, hi)``.

    For an *oriented* CSR graph (``indptr``/``indices`` sorted by source and
    destination), finds every triangle ``(u, v, w)`` with ``u ∈ [lo, hi)``,
    ``v ∈ N⁺(u)`` and ``w ∈ N⁺(u) ∩ N⁺(v)``, entirely with array
    operations: one segment gather of all ``N⁺(v)`` lists and one packed-key
    binary search against the range's own (sorted) adjacency.

    Returns ``(count, operations)`` or, with ``want_triples=True``,
    ``(cones, vs, ws, operations)`` where the triple arrays are aligned.
    ``operations`` counts block entries scanned plus gathered elements --
    the same deterministic work measure MGT's modelled CPU mode uses.
    """
    impl = _impl("triangle_range")
    if impl is not None:
        return impl(indptr, indices, lo, hi, want_triples)
    return _triangle_range_numpy(indptr, indices, lo, hi, want_triples)


def _triangle_range_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    lo: int,
    hi: int,
    want_triples: bool = False,
) -> tuple:
    num_vertices = int(indptr.shape[0] - 1)
    base = int(indptr[lo])
    block_adj = indices[base : int(indptr[hi])]
    scanned = int(block_adj.shape[0])
    if scanned == 0:
        if want_triples:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, 0
        return 0, 0
    degrees = (indptr[lo + 1 : hi + 1] - indptr[lo:hi]).astype(np.int64)
    entry_src = np.repeat(np.arange(hi - lo, dtype=np.int64), degrees)

    # gather N⁺(v) for every adjacency entry (u, v) of the range
    seg_starts = indptr[block_adj]
    seg_lengths = (indptr[block_adj + 1] - indptr[block_adj]).astype(np.int64)
    ev_all, owners = segment_gather(indices, seg_starts, seg_lengths)
    operations = scanned + int(ev_all.shape[0])

    # membership w ∈ N⁺(u) via one binary search on packed (u, w) keys;
    # the keys are sorted because the range adjacency is (u, w)-sorted.
    block_keys = packed_keys(entry_src, block_adj, num_vertices)
    query_keys = packed_keys(entry_src[owners], ev_all, num_vertices)
    found = _sorted_membership_numpy(block_keys, query_keys)

    if want_triples:
        hit_owner = owners[found]
        cones = entry_src[hit_owner] + np.int64(lo)
        vs = block_adj[hit_owner]
        ws = ev_all[found]
        return cones, vs, ws, operations
    return int(np.count_nonzero(found)), operations


def count_cone_range(
    indptr: np.ndarray,
    indices: np.ndarray,
    lo: int = 0,
    hi: int | None = None,
    batch_entries: int = DEFAULT_BATCH_ENTRIES,
) -> int:
    """Triangle count with cone vertex in ``[lo, hi)``, batched over sub-ranges.

    This is the drop-in replacement for the baselines' per-vertex loops:
    whole vertex ranges per call, bounded scratch memory via
    :func:`iter_vertex_batches`.
    """
    hi = int(indptr.shape[0] - 1) if hi is None else hi
    impl = _impl("count_cone_range")
    if impl is not None:
        # the fused loop keeps no per-batch scratch, so it takes the whole
        # range in one call; batch_entries only shapes the numpy fallback
        return impl(indptr, indices, lo, hi)
    return _count_cone_range_numpy(indptr, indices, lo, hi, batch_entries)


def _count_cone_range_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    lo: int = 0,
    hi: int | None = None,
    batch_entries: int = DEFAULT_BATCH_ENTRIES,
) -> int:
    hi = int(indptr.shape[0] - 1) if hi is None else hi
    total = 0
    for blo, bhi in iter_vertex_batches(indptr, lo, hi, batch_entries):
        count, _ = _triangle_range_numpy(indptr, indices, blo, bhi)
        total += count
    return total


def edge_intersections(
    indptr: np.ndarray,
    indices: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    csr_keys: np.ndarray | None = None,
    per_edge: bool = False,
):
    """``|N⁺(u) ∩ N⁺(v)|`` for an arbitrary batch of oriented edges.

    Unlike :func:`triangle_range` the cone vertices need not form a
    contiguous range, so membership is tested against the packed keys of
    the *whole* graph (pass ``csr_keys`` to amortise
    :func:`csr_packed_keys` across calls).  Returns the total count, or a
    per-edge count array with ``per_edge=True``.

    ``csr_keys``, when given, must equal ``csr_packed_keys(indptr, indices)``
    -- it is a cache, not an independent input; the compiled tier intersects
    the adjacency lists directly and never materialises the keys.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    impl = _impl("edge_intersections")
    if impl is not None:
        return impl(indptr, indices, us, vs, per_edge)
    return _edge_intersections_numpy(indptr, indices, us, vs, csr_keys, per_edge)


def _edge_intersections_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    csr_keys: np.ndarray | None = None,
    per_edge: bool = False,
):
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if csr_keys is None:
        csr_keys = csr_packed_keys(indptr, indices)
    num_vertices = int(indptr.shape[0] - 1)
    seg_starts = indptr[vs]
    seg_lengths = (indptr[vs + 1] - indptr[vs]).astype(np.int64)
    ev_all, owners = segment_gather(indices, seg_starts, seg_lengths)
    found = _sorted_membership_numpy(
        csr_keys, packed_keys(us[owners], ev_all, num_vertices)
    )
    if per_edge:
        return np.bincount(owners[found], minlength=us.shape[0])
    return int(np.count_nonzero(found))


def edge_common_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    csr_keys: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``N(u) ∩ N(v)`` for an arbitrary batch of edges, with provenance.

    The enumeration twin of :func:`edge_intersections`: instead of counting
    the common neighbours it returns them, as ``(owners, ws)`` where
    ``owners[j]`` is the batch index of the edge whose intersection produced
    ``ws[j]``.  Emission order is owner-major with ``ws`` ascending within
    each owner (the order ``N(v)`` is stored in), identical across tiers.
    This is the primitive of the dynamic-graph delta path: the triangles
    through a touched edge ``(u, v)`` are exactly its common neighbours.

    ``csr_keys``, when given, must equal ``csr_packed_keys(indptr, indices)``
    -- a cache, not an independent input; the compiled tier intersects the
    adjacency lists directly and never materialises the keys.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    impl = _impl("edge_common_neighbors")
    if impl is not None:
        return impl(indptr, indices, us, vs)
    return _edge_common_neighbors_numpy(indptr, indices, us, vs, csr_keys)


def _edge_common_neighbors_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    csr_keys: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if csr_keys is None:
        csr_keys = csr_packed_keys(indptr, indices)
    num_vertices = int(indptr.shape[0] - 1)
    seg_starts = indptr[vs]
    seg_lengths = (indptr[vs + 1] - indptr[vs]).astype(np.int64)
    ev_all, owners = segment_gather(indices, seg_starts, seg_lengths)
    found = _sorted_membership_numpy(
        csr_keys, packed_keys(us[owners], ev_all, num_vertices)
    )
    return owners[found], ev_all[found]


#: The pure-numpy reference implementation of every dispatched primitive,
#: by registry name.  Compiled backends are property-tested against these
#: twins, and :func:`repro.core.kernel_backend.warmup` sanity-checks each
#: compiled kernel against them before keeping it in the registry.
NUMPY_IMPLS = {
    "sorted_membership": _sorted_membership_numpy,
    "merge_positions": _merge_positions_numpy,
    "intersect_sorted": _intersect_sorted_numpy,
    "triangle_range": _triangle_range_numpy,
    "count_cone_range": _count_cone_range_numpy,
    "edge_intersections": _edge_intersections_numpy,
    "edge_common_neighbors": _edge_common_neighbors_numpy,
}
