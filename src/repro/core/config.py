"""The PDTL computational-environment model.

Section IV of the paper: *"We assume a computational environment of N
nodes, each of which has P processors, with M bytes of memory for each of
the processors, so that by choosing these parameters appropriately, we can
model a high-end data center, with multiple processors per machine, or
even just a single computer with low available memory."*

:class:`PDTLConfig` captures exactly that tuple plus the block size ``B``
of the I/O model and a couple of implementation knobs (the ``c`` constant
of the small-degree assumption and whether load balancing / parallel
orientation are enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.triangles import CHUNK_SINK_KINDS, normalize_sink_kind
from repro.errors import ConfigurationError
from repro.externalmem.blockio import DEFAULT_BLOCK_SIZE
from repro.utils import format_size, parse_size

__all__ = ["PDTLConfig"]


@dataclass(frozen=True)
class PDTLConfig:
    """Configuration of a PDTL run.

    Parameters
    ----------
    num_nodes:
        ``N`` -- number of machines in the (possibly simulated) cluster.
    procs_per_node:
        ``P`` -- processors per machine; each gets its own edge range.
    memory_per_proc:
        ``M`` -- bytes of memory available to each processor's MGT worker.
        Accepts human-readable strings such as ``"64MB"``.
    block_size:
        ``B`` -- block size of the I/O model in bytes.
    memory_fill_fraction:
        the ``c < 1`` constant of the small-degree assumption: at most
        ``c · M`` bytes of the budget are used for the in-memory edge window,
        leaving room for the per-vertex scratch arrays.
    load_balanced:
        whether the master balances edge ranges by oriented in-degree
        (Figure 9) instead of splitting edges equally.
    parallel_orientation:
        whether the master orients the graph with all of its cores
        (Figure 2) or sequentially.
    parallel_preprocess:
        when True, the master publishes the *input* (unoriented) graph into
        named shared-memory segments once per run
        (:func:`repro.core.shm.publish_input_graph`) and fans the
        orientation scan out over the **persistent process pool** as
        picklable chunk tasks, each worker filtering its vertex window
        zero-copy against the published degree-order keys.  Purely a
        host-side wall-clock optimisation below the accounting layer: the
        master charges the serial scan's exact I/O in chunk order, so the
        oriented file bytes, :class:`~repro.externalmem.iostats.IOStats`
        and modelled setup seconds are bit-identical with the flag on or
        off (the preprocessing equivalence suite asserts this).  The
        publication is unlinked in a ``finally`` -- even when a
        preprocessing worker raises mid-run -- and on platforms without
        POSIX shared memory the runner falls back to the threaded
        orientation with a warning.
    count_only:
        when True, triangles are counted but not materialised, so the output
        term ``T/B`` of the I/O bound and ``T`` of the network bound drop to 0,
        matching the convention of Theorem IV.3.
    sink:
        the default sink kind a :class:`~repro.core.pdtl.PDTLRunner` hands
        every worker when ``run()`` is not given an explicit ``sink_kind``:
        ``"count"`` (default), ``"list"``, ``"per-vertex"`` or
        ``"edge-support"`` (per-edge triangle supports, the input of the
        k-truss decomposition in :mod:`repro.analytics`).  Underscore
        spellings (``"edge_support"``) are normalised to the hyphenated
        kind names of the :func:`repro.core.triangles.make_sink` registry.
    scheduling:
        how oriented edge positions are handed to the ``N·P`` workers.
        ``"static"`` (the paper's protocol) computes one contiguous range per
        processor up front with :func:`repro.core.load_balance.split_edges`;
        ``"dynamic"`` splits the file into many window-aligned chunks
        (:mod:`repro.core.scheduler`) that workers *pull* from a shared queue,
        so heterogeneous, straggling or failing workers cannot stall the run.
        Both modes report the exact same triangle counts.
    chunk_edges:
        target chunk size for ``scheduling="dynamic"``, in oriented edge
        positions.  Rounded **up** to a whole number of MGT memory windows
        (``window_edges``) so a chunk never pays a partial-window scan.  When
        omitted, a size is derived from ``M`` so each worker sees roughly
        :data:`repro.core.scheduler.DEFAULT_CHUNKS_PER_WORKER` chunks.
    failure_spec:
        fault-injection for ``scheduling="dynamic"``: a mapping (or iterable
        of pairs) ``{worker_index: after_chunks}``.  Worker ``w`` (global
        index ``node·P + proc``) is killed when it pulls its
        ``after_chunks+1``-th chunk; the chunk it was holding is re-enqueued
        and re-executed by a surviving worker, so the final counts are exact.
        Normalised to a sorted tuple of ``(worker, after_chunks)`` pairs so
        the configuration stays hashable.
    straggler_spec:
        heterogeneity injection for ``scheduling="dynamic"``: a mapping (or
        iterable of pairs) ``{worker_index: factor}``.  The modelled cost of
        every chunk worker ``w`` completes is multiplied by ``factor``
        (``> 1`` models a slow machine), and the deterministic pull replay
        automatically routes fewer chunks to it.  Normalised to a sorted
        tuple of ``(worker, factor)`` pairs so the configuration stays
        hashable.
    host_jitter_seconds:
        host-side straggler injection for testing the execution backends:
        when positive, each chunk task sleeps a uniform delay in
        ``[0, host_jitter_seconds)`` drawn from its *chunk-seeded* RNG
        (:func:`repro.core.scheduler.chunk_seed` -- a pure function of the
        run seed and the chunk id, never of the pool worker that happens to
        execute it).  Wall-clock only: no modelled counter moves, so
        results stay bit-identical with jitter on or off.
    modelled_cpu:
        when True, each MGT worker reports a *modelled* CPU time derived from
        its deterministic operation count (edges scanned plus intersection
        work) instead of the measured thread CPU time.  This makes
        ``calc_seconds`` bit-identical across execution backends and hosts --
        the property the cross-backend equivalence suite asserts.
    shm:
        when True, the runner publishes the oriented adjacency (degrees,
        adjacency, offsets) into named ``multiprocessing.shared_memory``
        segments once per run and every chunk task slices its memory
        windows zero-copy from them (:mod:`repro.core.shm`) instead of
        re-reading the on-disk replica -- the layer that lets the
        ``processes`` backend scale past duplicated host reads.  Purely a
        host-side wall-clock optimisation below the accounting layer:
        triangle counts, :class:`~repro.externalmem.iostats.IOStats` and
        modelled times are bit-identical with it on or off.  On platforms
        without POSIX shared memory the runner falls back to the on-disk
        path with a warning (see :func:`repro.core.shm.shm_available`).
    readahead_bytes:
        when positive, each MGT worker scans the adjacency file through a
        private aligned read-ahead buffer of this size (see
        :meth:`repro.graph.binfmt.GraphFile.set_readahead`).  Purely a
        host-side wall-clock optimisation: it sits below the accounting
        layer, so :class:`~repro.externalmem.iostats.IOStats` block counts
        and modelled device seconds are bit-identical with it on or off.
        Accepts human-readable sizes (``"1MB"``); ``0`` disables.
    mmap_reads:
        when True, every simulated block device serves file reads from a
        cached read-only ``mmap`` of the file instead of issuing one
        ``pread`` syscall per logical read
        (:class:`~repro.externalmem.blockio.BlockDevice`).  Strictly below
        the accounting layer: every logical read is still charged at its
        exact offset and length, so
        :class:`~repro.externalmem.iostats.IOStats` block counts and
        modelled device seconds are bit-identical with the flag on or off
        -- only host wall-clock changes.
    kernel_backend:
        which kernel tier evaluates the hot sorted-intersection loops
        (:mod:`repro.core.kernel_backend`): ``"auto"`` (default) picks the
        best available of numba, cffi and numpy; ``"numpy"`` pins the
        always-available vectorised tier; ``"numba"``/``"cffi"`` request a
        compiled tier and degrade to numpy with a :class:`RuntimeWarning`
        when unavailable.  Strictly below the accounting layer: triangle
        counts, listing order, :class:`~repro.externalmem.iostats.IOStats`
        and modelled times are bit-identical across tiers (the
        backend-equivalence suite asserts it), only host wall-clock
        changes.  Worker processes re-apply the knob from the pickled
        config, so one setting governs every execution backend.
    trace:
        when True, the runner records a hierarchical span trace of the run
        (master phases, per-chunk scans, per-window kernel spans) and
        assembles the unified metrics registry; the result carries a
        :class:`repro.obs.export.RunTelemetry` exportable as Chrome
        trace-event JSON (:mod:`repro.obs`).  Instrumentation only, strictly
        outside the accounting layer: every modelled time,
        :class:`~repro.externalmem.iostats.IOStats` counter and triangle
        count is bit-identical with tracing on or off, and the disabled
        path records nothing and allocates nothing.
    """

    num_nodes: int = 1
    procs_per_node: int = 1
    memory_per_proc: int = 64 * 1024 * 1024
    block_size: int = DEFAULT_BLOCK_SIZE
    memory_fill_fraction: float = 0.5
    load_balanced: bool = True
    parallel_orientation: bool = True
    parallel_preprocess: bool = False
    count_only: bool = True
    sink: str = "count"
    use_processes: bool = False
    seed: int = 0
    scheduling: str = "static"
    chunk_edges: int | None = None
    failure_spec: tuple[tuple[int, int], ...] = ()
    straggler_spec: tuple[tuple[int, float], ...] = ()
    host_jitter_seconds: float = 0.0
    modelled_cpu: bool = False
    readahead_bytes: int = 0
    shm: bool = False
    mmap_reads: bool = False
    kernel_backend: str = "auto"
    trace: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "memory_per_proc", parse_size(self.memory_per_proc))
        object.__setattr__(self, "block_size", parse_size(self.block_size))
        # parse_size rejects negative sizes (ValueError), matching how
        # memory_per_proc and block_size are validated above
        object.__setattr__(self, "readahead_bytes", parse_size(self.readahead_bytes))
        if self.num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.procs_per_node <= 0:
            raise ConfigurationError(
                f"procs_per_node must be positive, got {self.procs_per_node}"
            )
        if self.memory_per_proc <= 0:
            raise ConfigurationError("memory_per_proc must be positive")
        if self.block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if self.block_size > self.memory_per_proc:
            raise ConfigurationError(
                f"block_size ({self.block_size}) cannot exceed memory_per_proc "
                f"({self.memory_per_proc})"
            )
        if not 0.0 < self.memory_fill_fraction < 1.0:
            raise ConfigurationError(
                "memory_fill_fraction must be strictly between 0 and 1"
            )
        if self.scheduling not in ("static", "dynamic"):
            raise ConfigurationError(
                f"scheduling must be 'static' or 'dynamic', got {self.scheduling!r}"
            )
        object.__setattr__(self, "sink", normalize_sink_kind(self.sink))
        if self.sink not in CHUNK_SINK_KINDS:
            raise ConfigurationError(
                f"sink must be one of {', '.join(CHUNK_SINK_KINDS)}, "
                f"got {self.sink!r}"
            )
        if self.chunk_edges is not None:
            object.__setattr__(self, "chunk_edges", int(self.chunk_edges))
            if self.chunk_edges <= 0:
                raise ConfigurationError("chunk_edges must be positive")
            if self.scheduling != "dynamic":
                raise ConfigurationError(
                    "chunk_edges requires scheduling='dynamic' (static ranges "
                    "are sized by split_edges, not by chunking)"
                )
        object.__setattr__(
            self, "failure_spec", self._normalize_failure_spec(self.failure_spec)
        )
        if self.failure_spec and self.scheduling != "dynamic":
            raise ConfigurationError(
                "failure_spec requires scheduling='dynamic' (static ranges have "
                "no queue to re-enqueue a lost worker's chunks onto)"
            )
        if len(self.failure_spec) >= self.total_processors:
            raise ConfigurationError(
                "failure_spec must leave at least one surviving worker"
            )
        object.__setattr__(
            self, "straggler_spec", self._normalize_straggler_spec(self.straggler_spec)
        )
        if self.straggler_spec and self.scheduling != "dynamic":
            raise ConfigurationError(
                "straggler_spec requires scheduling='dynamic' (static ranges "
                "cannot re-balance around a slow worker)"
            )
        if self.host_jitter_seconds < 0.0:
            raise ConfigurationError("host_jitter_seconds must be non-negative")
        object.__setattr__(self, "host_jitter_seconds", float(self.host_jitter_seconds))
        kernel_backend = str(self.kernel_backend).lower()
        if kernel_backend not in ("auto", "numpy", "numba", "cffi"):
            raise ConfigurationError(
                "kernel_backend must be one of 'auto', 'numpy', 'numba', 'cffi', "
                f"got {self.kernel_backend!r}"
            )
        object.__setattr__(self, "kernel_backend", kernel_backend)
        object.__setattr__(self, "trace", bool(self.trace))

    def _normalize_worker_spec(self, spec, label, coerce, check, requirement):
        """Normalise an injection spec (dict or iterable of ``(worker, value)``
        pairs) to a sorted tuple, validating workers and values.

        ``coerce`` converts the value (``int``/``float``), ``check`` accepts
        a coerced value, and ``requirement`` describes valid values for the
        error message.
        """
        if not spec:
            return ()
        pairs = spec.items() if isinstance(spec, dict) else spec
        normalized: dict[int, object] = {}
        for entry in pairs:
            worker, value = entry
            worker, value = int(worker), coerce(value)
            if not 0 <= worker < self.total_processors:
                raise ConfigurationError(
                    f"{label} worker {worker} out of range for "
                    f"{self.total_processors} processors"
                )
            if not check(value):
                raise ConfigurationError(f"{label} {requirement}")
            if worker in normalized:
                raise ConfigurationError(
                    f"{label} lists worker {worker} more than once"
                )
            normalized[worker] = value
        return tuple(sorted(normalized.items()))

    def _normalize_failure_spec(self, spec: object) -> tuple[tuple[int, int], ...]:
        return self._normalize_worker_spec(
            spec, "failure_spec", int, lambda after: after >= 0,
            "chunk counts must be >= 0",
        )

    def _normalize_straggler_spec(self, spec: object) -> tuple[tuple[int, float], ...]:
        return self._normalize_worker_spec(
            spec, "straggler_spec", float, lambda factor: factor > 0.0,
            "factors must be positive",
        )

    @property
    def failure_after(self) -> dict[int, int]:
        """The failure spec as a ``{worker_index: after_chunks}`` mapping."""
        return dict(self.failure_spec)

    @property
    def straggler_factors(self) -> dict[int, float]:
        """The straggler spec as a ``{worker_index: factor}`` mapping."""
        return dict(self.straggler_spec)

    # -- derived quantities ----------------------------------------------------------

    @property
    def total_processors(self) -> int:
        """``N · P`` -- the total number of edge ranges / MGT workers."""
        return self.num_nodes * self.procs_per_node

    @property
    def total_memory(self) -> int:
        """``N · P · M`` in bytes."""
        return self.total_processors * self.memory_per_proc

    @property
    def window_edges(self) -> int:
        """Maximum number of oriented edges held in one MGT memory window.

        Each adjacency entry is an int64 (8 bytes); the window uses at most
        ``memory_fill_fraction`` of the per-processor budget, the rest being
        reserved for ``ind`` and the per-vertex scratch arrays.
        """
        return max(int(self.memory_per_proc * self.memory_fill_fraction) // 8, 1)

    @property
    def block_items(self) -> int:
        """Block size expressed in int64 items."""
        return max(self.block_size // 8, 1)

    def single_core(self) -> "PDTLConfig":
        """A copy of this configuration restricted to one node and one core
        (the single-core MGT baseline of Figures 10/11)."""
        return replace(self, num_nodes=1, procs_per_node=1)

    def with_cores(self, procs_per_node: int) -> "PDTLConfig":
        return replace(self, procs_per_node=procs_per_node)

    def with_nodes(self, num_nodes: int) -> "PDTLConfig":
        return replace(self, num_nodes=num_nodes)

    def with_memory(self, memory_per_proc: int | str) -> "PDTLConfig":
        return replace(self, memory_per_proc=parse_size(memory_per_proc))

    def describe(self) -> str:
        return (
            f"PDTLConfig(N={self.num_nodes} nodes, P={self.procs_per_node} procs/node, "
            f"M={format_size(self.memory_per_proc)}/proc, "
            f"B={format_size(self.block_size)}, "
            f"load_balanced={self.load_balanced}, "
            f"count_only={self.count_only}, "
            f"scheduling={self.scheduling}, shm={self.shm}, "
            f"parallel_preprocess={self.parallel_preprocess})"
        )
