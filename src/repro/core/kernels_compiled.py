"""Numba implementations of the hot kernels, bit-identical to numpy.

Each kernel is the fused-loop rewrite of a numpy primitive from
:mod:`repro.core.kernels` (or of a multi-pass caller chain: the MGT block
scan, the edge-support accumulate, the truss peel level), decorated with
``@njit(cache=True, nogil=True)`` when numba is importable and left as
plain Python otherwise.  That identity-decorator fallback matters: the
kernel *logic* stays importable and property-testable on machines without
numba (:func:`build_python_registry`), so the CI leg that does install
numba only has to prove the JIT agrees with the already-tested bodies.

Semantics are pinned to :data:`repro.core.kernels.NUMPY_IMPLS` -- same
counts, same emission order, same deterministic ``operations`` measure,
check-before-mutate accumulation -- and enforced by the property suite in
``tests/property/test_property_kernels_compiled.py`` plus the
backend-equivalence matrix.  ``nogil=True`` lets the threads execution
backend run kernels concurrently, matching the cffi tier (cffi releases
the GIL around C calls).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True

    def _jit(fn):
        return numba.njit(cache=True, nogil=True)(fn)

except ImportError:  # identity decorator: keep the bodies importable
    NUMBA_AVAILABLE = False

    def _jit(fn):
        return fn


@_jit
def _lower_bound(a, n, key):
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


@_jit
def _upper_bound(a, n, key):
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


@_jit
def _isect_count(a, astart, na, b, bstart, nb):
    # |{ j : b[j] in a }| over sorted slices, numpy membership semantics:
    # duplicate queries each count, duplicate haystack entries count once
    count = 0
    if na == 0 or nb == 0:
        return 0
    if na > 32 * nb:
        for j in range(nb):
            key = b[bstart + j]
            pos = _lower_bound(a[astart : astart + na], na, key)
            if pos < na and a[astart + pos] == key:
                count += 1
        return count
    if nb > 32 * na:
        for i in range(na):
            if i > 0 and a[astart + i] == a[astart + i - 1]:
                continue
            key = a[astart + i]
            bs = b[bstart : bstart + nb]
            count += _upper_bound(bs, nb, key) - _lower_bound(bs, nb, key)
        return count
    i = 0
    j = 0
    while i < na and j < nb:
        av = a[astart + i]
        bv = b[bstart + j]
        if av < bv:
            i += 1
        elif av > bv:
            j += 1
        else:
            count += 1
            j += 1  # keep i: the next b may repeat this value
    return count


@_jit
def _sorted_membership(haystack, queries):
    nh = haystack.shape[0]
    out = np.empty(queries.shape[0], dtype=np.bool_)
    for i in range(queries.shape[0]):
        pos = _lower_bound(haystack, nh, queries[i])
        out[i] = pos < nh and haystack[pos] == queries[i]
    return out


@_jit
def _merge_positions(a, b):
    na = a.shape[0]
    nb = b.shape[0]
    pos_a = np.empty(na, dtype=np.int64)
    pos_b = np.empty(nb, dtype=np.int64)
    i = 0
    j = 0
    while i < na or j < nb:
        if j >= nb or (i < na and a[i] <= b[j]):  # stable: ties keep a first
            pos_a[i] = i + j
            i += 1
        else:
            pos_b[j] = i + j
            j += 1
    return pos_a, pos_b


@_jit
def _intersect_sorted(a, b):
    na = a.shape[0]
    out = np.empty(b.shape[0], dtype=np.int64)
    n = 0
    i = 0
    for j in range(b.shape[0]):
        while i < na and a[i] < b[j]:
            i += 1
        if i >= na:
            break
        if a[i] == b[j]:
            out[n] = b[j]
            n += 1
    return out[:n]


@_jit
def _count_cone_range(indptr, indices, lo, hi):
    total = 0
    for u in range(lo, hi):
        ustart = indptr[u]
        du = indptr[u + 1] - ustart
        for p in range(du):
            v = indices[ustart + p]
            total += _isect_count(
                indices, ustart, du, indices, indptr[v], indptr[v + 1] - indptr[v]
            )
    return total


@_jit
def _triangle_count(indptr, indices, lo, hi):
    count = 0
    gathered = 0
    for u in range(lo, hi):
        ustart = indptr[u]
        du = indptr[u + 1] - ustart
        for p in range(du):
            v = indices[ustart + p]
            dv = indptr[v + 1] - indptr[v]
            gathered += dv
            count += _isect_count(indices, ustart, du, indices, indptr[v], dv)
    ops = (indptr[hi] - indptr[lo]) + gathered
    return count, ops


@_jit
def _triangle_list(indptr, indices, lo, hi):
    gathered = 0
    for p in range(indptr[lo], indptr[hi]):
        v = indices[p]
        gathered += indptr[v + 1] - indptr[v]
    cones = np.empty(gathered, dtype=np.int64)
    vs = np.empty(gathered, dtype=np.int64)
    ws = np.empty(gathered, dtype=np.int64)
    nhit = 0
    for u in range(lo, hi):
        ustart = indptr[u]
        du = indptr[u + 1] - ustart
        for p in range(du):
            v = indices[ustart + p]
            vstart = indptr[v]
            dv = indptr[v + 1] - vstart
            if du > 32 * dv:
                # lopsided pair (hub cone list): binary-search each w --
                # emission order (ascending j) matches the merge loop
                nu = indices[ustart : ustart + du]
                for j in range(dv):
                    w = indices[vstart + j]
                    pos = _lower_bound(nu, du, w)
                    if pos < du and nu[pos] == w:
                        cones[nhit] = u
                        vs[nhit] = v
                        ws[nhit] = w
                        nhit += 1
            else:
                i = 0
                for j in range(dv):
                    w = indices[vstart + j]
                    while i < du and indices[ustart + i] < w:
                        i += 1
                    if i >= du:
                        break
                    if indices[ustart + i] == w:
                        cones[nhit] = u
                        vs[nhit] = v
                        ws[nhit] = w
                        nhit += 1
    ops = (indptr[hi] - indptr[lo]) + gathered
    return cones[:nhit], vs[:nhit], ws[:nhit], ops


@_jit
def _edge_intersections(indptr, indices, us, vs, per_edge):
    ne = us.shape[0]
    counts = np.zeros(ne if per_edge else 0, dtype=np.int64)
    total = 0
    for e in range(ne):
        u = us[e]
        v = vs[e]
        c = _isect_count(
            indices,
            indptr[u],
            indptr[u + 1] - indptr[u],
            indices,
            indptr[v],
            indptr[v + 1] - indptr[v],
        )
        if per_edge:
            counts[e] = c
        total += c
    return total, counts


@_jit
def _edge_common_neighbors(indptr, indices, us, vs):
    # enumeration twin of _edge_intersections: emit (owner, w) for every
    # w in N(u) ∩ N(v), owner-major with w ascending -- the numpy twin's
    # segment-gather order
    ne = us.shape[0]
    gathered = 0
    for e in range(ne):
        v = vs[e]
        gathered += indptr[v + 1] - indptr[v]
    owners = np.empty(gathered, dtype=np.int64)
    ws = np.empty(gathered, dtype=np.int64)
    nhit = 0
    for e in range(ne):
        u = us[e]
        v = vs[e]
        ustart = indptr[u]
        du = indptr[u + 1] - ustart
        vstart = indptr[v]
        dv = indptr[v + 1] - vstart
        if du > 32 * dv:
            nu = indices[ustart : ustart + du]
            for j in range(dv):
                w = indices[vstart + j]
                pos = _lower_bound(nu, du, w)
                if pos < du and nu[pos] == w:
                    owners[nhit] = e
                    ws[nhit] = w
                    nhit += 1
        else:
            i = 0
            for j in range(dv):
                w = indices[vstart + j]
                while i < du and indices[ustart + i] < w:
                    i += 1
                if i >= du:
                    break
                if indices[ustart + i] == w:
                    owners[nhit] = e
                    ws[nhit] = w
                    nhit += 1
    return owners[:nhit], ws[:nhit]


@_jit
def _mgt_block_count(block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees):
    nbv = block_offsets.shape[0] - 1
    pairs = 0
    total = 0
    hits = 0
    for bu in range(nbv):
        ustart = block_offsets[bu]
        du = block_offsets[bu + 1] - ustart
        for p in range(du):
            v = block_adj[ustart + p]
            if v < vlow or v > vhigh:
                continue
            d = win_degrees[v - vlow]
            if d <= 0:
                continue
            pairs += 1
            total += d
            hits += _isect_count(block_adj, ustart, du, edg, win_offsets[v - vlow], d)
    return pairs, total, hits


@_jit
def _mgt_block_list(block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees):
    nbv = block_offsets.shape[0] - 1
    pairs = 0
    total = 0
    for p in range(block_offsets[0], block_offsets[nbv]):
        v = block_adj[p]
        if v >= vlow and v <= vhigh and win_degrees[v - vlow] > 0:
            pairs += 1
            total += win_degrees[v - vlow]
    cones = np.empty(total, dtype=np.int64)
    vso = np.empty(total, dtype=np.int64)
    wso = np.empty(total, dtype=np.int64)
    nhit = 0
    for bu in range(nbv):
        ustart = block_offsets[bu]
        du = block_offsets[bu + 1] - ustart
        for p in range(du):
            v = block_adj[ustart + p]
            if v < vlow or v > vhigh:
                continue
            d = win_degrees[v - vlow]
            if d <= 0:
                continue
            estart = win_offsets[v - vlow]
            if du > 32 * d:
                nu = block_adj[ustart : ustart + du]
                for j in range(d):
                    w = edg[estart + j]
                    pos = _lower_bound(nu, du, w)
                    if pos < du and nu[pos] == w:
                        cones[nhit] = bu
                        vso[nhit] = v
                        wso[nhit] = w
                        nhit += 1
            else:
                i = 0
                for j in range(d):
                    w = edg[estart + j]
                    while i < du and block_adj[ustart + i] < w:
                        i += 1
                    if i >= du:
                        break
                    if block_adj[ustart + i] == w:
                        cones[nhit] = bu
                        vso[nhit] = v
                        wso[nhit] = w
                        nhit += 1
    return pairs, total, cones[:nhit], vso[:nhit], wso[:nhit]


@_jit
def _edge_support_accumulate(edge_keys, nvert, us, vs, ws, support):
    m = edge_keys.shape[0]
    for i in range(ws.shape[0]):
        for sl in range(3):
            if sl == 0:
                key = us[i] * nvert + vs[i]
            elif sl == 1:
                key = us[i] * nvert + ws[i]
            else:
                key = vs[i] * nvert + ws[i]
            pos = _lower_bound(edge_keys, m, key)
            if pos >= m or edge_keys[pos] != key:
                # bad pair: undo every increment already applied so the
                # caller can raise with the sink untouched
                for ri in range(i + 1):
                    rmax = sl if ri == i else 3
                    for rsl in range(rmax):
                        if rsl == 0:
                            rkey = us[ri] * nvert + vs[ri]
                        elif rsl == 1:
                            rkey = us[ri] * nvert + ws[ri]
                        else:
                            rkey = vs[ri] * nvert + ws[ri]
                        support[_lower_bound(edge_keys, m, rkey)] -= 1
                return 0
            support[pos] += 1
    return 1


@_jit
def _truss_peel_level(
    k, alive, support, trussness, inc_ptr, inc_triangles, tri_edges_flat, tri_alive
):
    m = alive.shape[0]
    frontier = np.empty(m, dtype=np.int64)
    in_touched = np.zeros(m, dtype=np.bool_)
    rounds = 0
    peeled = 0
    thresh = k - 2
    # round 1: full scan.  Later rounds draw their frontier from the edges
    # whose support was decremented this round (the touched set, staged at
    # frontier[nf:]) -- an edge can newly cross the threshold only by
    # losing support, so the frontier sets, the round count and every
    # output array are identical to rescanning all m edges.
    nf = 0
    for e in range(m):
        if alive[e] and support[e] <= thresh:
            frontier[nf] = e
            nf += 1
    while nf > 0:
        nt = 0
        rounds += 1
        for f in range(nf):
            alive[frontier[f]] = False
            trussness[frontier[f]] = k
        peeled += nf
        for f in range(nf):
            e = frontier[f]
            for q in range(inc_ptr[e], inc_ptr[e + 1]):
                tri = inc_triangles[q]
                if not tri_alive[tri]:
                    continue
                tri_alive[tri] = False
                for sl in range(3):
                    te = tri_edges_flat[3 * tri + sl]
                    if alive[te]:
                        support[te] -= 1
                        if not in_touched[te]:
                            in_touched[te] = True
                            frontier[nf + nt] = te
                            nt += 1
        # dead frontier and alive touched edges are disjoint, so
        # nf + nt <= m; compacting the next frontier to the front trails
        # the reads (nf >= 1) and never overwrites them
        start = nf
        nf = 0
        for i in range(nt):
            te = frontier[start + i]
            in_touched[te] = False
            if alive[te] and support[te] <= thresh:
                frontier[nf] = te
                nf += 1
    return peeled, rounds


@_jit
def _triangle_edge_ids(indptr, indices, keys, row_start, n, lo, hi):
    # the triangle_list enumeration (same traversal, same emission order)
    # fused with the edge-id mapping.  First every oriented adjacency slot
    # is mapped to its canonical edge id: the pair is canonicalised to
    # (min, max), packed into min*n+max and looked up with
    # np.searchsorted's lower bound, confined to the source row
    # [row_start[x], row_start[x+1]) (which brackets every key of row x,
    # so the position equals the global searchsorted result).  The
    # enumeration then emits each hit's three ids by direct slot lookup --
    # (u,v) at the scanned slot, (u,w) at the matched position in N(u),
    # (v,w) at the gathered slot -- with no per-triangle searching at all.
    slot_to_id = np.empty(indices.shape[0], dtype=np.int64)
    for u in range(n):
        for p in range(indptr[u], indptr[u + 1]):
            v = indices[p]
            x = u if u < v else v
            y = v if u < v else u
            rs = row_start[x]
            row = keys[rs : row_start[x + 1]]
            slot_to_id[p] = rs + _lower_bound(row, row.shape[0], x * n + y)
    gathered = 0
    for p in range(indptr[lo], indptr[hi]):
        v = indices[p]
        gathered += indptr[v + 1] - indptr[v]
    out = np.empty((gathered, 3), dtype=np.int64)
    nhit = 0
    for u in range(lo, hi):
        ustart = indptr[u]
        du = indptr[u + 1] - ustart
        for p in range(du):
            v = indices[ustart + p]
            vstart = indptr[v]
            dv = indptr[v + 1] - vstart
            uv = slot_to_id[ustart + p]
            if du > 32 * dv:
                nu = indices[ustart : ustart + du]
                for j in range(dv):
                    w = indices[vstart + j]
                    pos = _lower_bound(nu, du, w)
                    if pos < du and nu[pos] == w:
                        out[nhit, 0] = uv
                        out[nhit, 1] = slot_to_id[ustart + pos]
                        out[nhit, 2] = slot_to_id[vstart + j]
                        nhit += 1
            else:
                i = 0
                for j in range(dv):
                    w = indices[vstart + j]
                    while i < du and indices[ustart + i] < w:
                        i += 1
                    if i >= du:
                        break
                    if indices[ustart + i] == w:
                        out[nhit, 0] = uv
                        out[nhit, 1] = slot_to_id[ustart + i]
                        out[nhit, 2] = slot_to_id[vstart + j]
                        nhit += 1
    return out[:nhit]


@_jit
def _incidence_csr(flat, m):
    # edge -> incident-triangle CSR by stable counting sort of the 3T
    # slots: visiting slots in index order appends each to its edge's
    # bucket, exactly np.argsort(flat, kind="stable") // 3
    nslots = flat.shape[0]
    inc_ptr = np.zeros(m + 1, dtype=np.int64)
    for s in range(nslots):
        inc_ptr[flat[s] + 1] += 1
    for e in range(m):
        inc_ptr[e + 1] += inc_ptr[e]
    cursor = inc_ptr[:m].copy()
    inc_tri = np.empty(nslots, dtype=np.int64)
    for s in range(nslots):
        e = flat[s]
        inc_tri[cursor[e]] = s // 3
        cursor[e] += 1
    return inc_ptr, inc_tri


#: The (possibly jitted) kernel bodies, by the name the wrappers use.
_RAW: dict[str, Callable] = {
    "sorted_membership": _sorted_membership,
    "merge_positions": _merge_positions,
    "intersect_sorted": _intersect_sorted,
    "count_cone_range": _count_cone_range,
    "triangle_count": _triangle_count,
    "triangle_list": _triangle_list,
    "edge_intersections": _edge_intersections,
    "edge_common_neighbors": _edge_common_neighbors,
    "mgt_block_count": _mgt_block_count,
    "mgt_block_list": _mgt_block_list,
    "edge_support_accumulate": _edge_support_accumulate,
    "truss_peel_level": _truss_peel_level,
    "triangle_edge_ids": _triangle_edge_ids,
    "incidence_csr": _incidence_csr,
}


def _make_registry(raw: dict[str, Callable]) -> dict[str, Callable]:
    """Wrap kernel bodies with the coercion/interface layer of the registry."""

    def as_i64(arr: np.ndarray) -> np.ndarray:
        a = np.asarray(arr)
        if a.dtype != np.int64:
            a = a.astype(np.int64)
        elif not a.flags.c_contiguous:
            a = np.ascontiguousarray(a)
        return a

    def integer_kinds(*arrays) -> bool:
        return all(np.asarray(a).dtype.kind in "iu" for a in arrays)

    def sorted_membership(haystack, queries):
        from repro.core.kernels import NUMPY_IMPLS

        if not integer_kinds(haystack, queries):
            return NUMPY_IMPLS["sorted_membership"](haystack, queries)
        return raw["sorted_membership"](as_i64(haystack), as_i64(queries))

    def merge_positions(a, b):
        from repro.core.kernels import NUMPY_IMPLS

        if not integer_kinds(a, b):
            return NUMPY_IMPLS["merge_positions"](a, b)
        return raw["merge_positions"](as_i64(a), as_i64(b))

    def intersect_sorted(a, b):
        from repro.core.kernels import NUMPY_IMPLS

        if not integer_kinds(a, b):
            return NUMPY_IMPLS["intersect_sorted"](a, b)
        return raw["intersect_sorted"](as_i64(a), as_i64(b))

    def triangle_range(indptr, indices, lo, hi, want_triples=False):
        indptr = as_i64(indptr)
        indices = as_i64(indices)
        if want_triples:
            cones, vs, ws, ops = raw["triangle_list"](indptr, indices, int(lo), int(hi))
            return cones, vs, ws, int(ops)
        count, ops = raw["triangle_count"](indptr, indices, int(lo), int(hi))
        return int(count), int(ops)

    def count_cone_range(indptr, indices, lo, hi):
        return int(raw["count_cone_range"](as_i64(indptr), as_i64(indices), int(lo), int(hi)))

    def edge_intersections(indptr, indices, us, vs, per_edge=False):
        total, counts = raw["edge_intersections"](
            as_i64(indptr), as_i64(indices), as_i64(us), as_i64(vs), bool(per_edge)
        )
        if per_edge:
            return counts
        return int(total)

    def edge_common_neighbors(indptr, indices, us, vs):
        return raw["edge_common_neighbors"](
            as_i64(indptr), as_i64(indices), as_i64(us), as_i64(vs)
        )

    def mgt_block_scan(
        block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees, want_triples
    ):
        block_adj = as_i64(block_adj)
        block_offsets = as_i64(block_offsets)
        edg = as_i64(edg)
        win_offsets = as_i64(win_offsets)
        win_degrees = as_i64(win_degrees)
        if want_triples:
            pairs, total, cones, vs, ws = raw["mgt_block_list"](
                block_adj, block_offsets, edg, int(vlow), int(vhigh),
                win_offsets, win_degrees,
            )
            return int(pairs), int(total), int(cones.shape[0]), cones, vs, ws
        pairs, total, hits = raw["mgt_block_count"](
            block_adj, block_offsets, edg, int(vlow), int(vhigh),
            win_offsets, win_degrees,
        )
        return int(pairs), int(total), int(hits), None, None, None

    def edge_support_accumulate(edge_keys, us, vs, ws, num_vertices, support):
        if support.dtype != np.int64 or not support.flags.c_contiguous:
            raise TypeError("support must be a contiguous int64 array")
        ok = raw["edge_support_accumulate"](
            as_i64(edge_keys), np.int64(num_vertices),
            as_i64(us), as_i64(vs), as_i64(ws), support,
        )
        return bool(ok)

    def truss_peel_level(
        k, alive, support, trussness, inc_ptr, inc_triangles, tri_edges_flat, tri_alive
    ):
        if alive.dtype != np.bool_ or tri_alive.dtype != np.bool_:
            raise TypeError("alive masks must be bool arrays")
        if support.dtype != np.int64 or trussness.dtype != np.int64:
            raise TypeError("support/trussness must be int64 arrays")
        peeled, rounds = raw["truss_peel_level"](
            int(k), alive, support, trussness,
            as_i64(inc_ptr), as_i64(inc_triangles), as_i64(tri_edges_flat), tri_alive,
        )
        return int(peeled), int(rounds)

    def triangle_edge_ids(indptr, indices, keys, row_start, num_vertices, lo, hi):
        return raw["triangle_edge_ids"](
            as_i64(indptr), as_i64(indices), as_i64(keys), as_i64(row_start),
            np.int64(num_vertices), np.int64(lo), np.int64(hi),
        )

    def incidence_csr(flat_edges, num_edges):
        return raw["incidence_csr"](as_i64(flat_edges), np.int64(num_edges))

    return {
        "sorted_membership": sorted_membership,
        "merge_positions": merge_positions,
        "intersect_sorted": intersect_sorted,
        "triangle_range": triangle_range,
        "count_cone_range": count_cone_range,
        "edge_intersections": edge_intersections,
        "edge_common_neighbors": edge_common_neighbors,
        "mgt_block_scan": mgt_block_scan,
        "edge_support_accumulate": edge_support_accumulate,
        "truss_peel_level": truss_peel_level,
        "triangle_edge_ids": triangle_edge_ids,
        "incidence_csr": incidence_csr,
    }


def build_registry() -> dict[str, Callable]:
    """JIT-compiled registry for :func:`repro.core.kernel_backend.activate`.

    Raises when numba is not installed; the dispatch layer treats that as
    "backend unavailable" and falls back (``pip install .[compiled]``
    pulls numba in).
    """
    if not NUMBA_AVAILABLE:
        raise RuntimeError("numba is not installed (pip install repro[compiled])")
    return _make_registry(_RAW)


def build_python_registry() -> dict[str, Callable]:
    """The same registry bound to the pure-Python kernel bodies.

    Always available; used by the property suite to test the numba kernel
    *logic* against the numpy twins even on machines without numba.
    """
    plain = {name: getattr(fn, "py_func", fn) for name, fn in _RAW.items()}
    return _make_registry(plain)
