"""Triangle records and the sinks that consume them.

PDTL is a *listing* framework: the inner loop reports every triangle
``(u, v, w)`` with cone vertex ``u`` and pivot edge ``(v, w)``
(Definition III.3).  What happens to a reported triangle is up to the
sink:

* :class:`CountingSink` only counts (the paper's experiments measure
  counting time so that competing systems can be compared);
* :class:`ListingSink` materialises the triangles in memory;
* :class:`FileSink` appends them to a block-device file, charging the
  ``T/B`` output term of the I/O bound;
* :class:`PerVertexCountSink` accumulates per-vertex triangle counts,
  which is what the clustering-coefficient application in the examples
  needs;
* :class:`EdgeSupportSink` accumulates per-*edge* triangle support (the
  number of triangles each oriented edge participates in), keyed by the
  packed ``(source, destination)`` keys of the oriented adjacency -- the
  input of the k-truss decomposition in :mod:`repro.analytics`.  When the
  dense support array would exceed a caller-supplied memory budget, the
  sink spills sorted position runs to a block file and merges them
  externally, so the accumulation working set stays bounded.

Sinks receive *batches* as numpy arrays wherever possible: the MGT inner
loop produces, for each (cone u, out-neighbour v) pair, the whole array of
pivot endpoints ``w`` at once, so the sink interface is
``add_batch(u, v, ws)`` plus a scalar ``add(u, v, w)`` convenience.

Sink construction is centralised in the :func:`make_sink` registry: every
sink kind registers a factory under its name (``register_sink``), the
chunk scheduler and the high-level runner both dispatch through the
registry, and an unknown kind raises instead of silently falling back to
a default sink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.core import kernels
from repro.externalmem.blockio import BlockFile
from repro.utils import ceil_div

__all__ = [
    "Triangle",
    "TriangleSink",
    "CountingSink",
    "ListingSink",
    "FileSink",
    "PerVertexCountSink",
    "EdgeSupportSink",
    "oriented_edge_array",
    "oriented_edge_keys",
    "register_sink",
    "sink_kinds",
    "normalize_sink_kind",
    "make_sink",
    "CHUNK_SINK_KINDS",
]


@dataclass(frozen=True, order=True)
class Triangle:
    """A triangle in cone/pivot orientation: ``cone ≺ v ≺ w`` in the degree order.

    ``as_vertex_set`` recovers the unordered vertex set for comparisons with
    reference implementations that do not track orientation.
    """

    cone: int
    v: int
    w: int

    def as_vertex_set(self) -> frozenset[int]:
        return frozenset((self.cone, self.v, self.w))

    def __iter__(self):
        return iter((self.cone, self.v, self.w))


class TriangleSink(Protocol):
    """Protocol implemented by every triangle consumer."""

    count: int

    def add(self, u: int, v: int, w: int) -> None:
        """Report a single triangle ``(u, v, w)``."""
        ...

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        """Report triangles ``(u, v, w)`` for every ``w`` in ``ws``."""
        ...

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        """Report triangles ``(us[i], vs[i], ws[i])`` for every index ``i``.

        This is the vectorised entry point the MGT inner loop uses: one call
        per scanned block instead of one call per (cone, out-neighbour) pair.
        """
        ...


class CountingSink:
    """Counts triangles without storing them (the paper's measurement mode)."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, u: int, v: int, w: int) -> None:
        self.count += 1

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        self.count += int(ws.shape[0])

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        self.count += int(ws.shape[0])

    def merge(self, other: "CountingSink") -> None:
        self.count += other.count


class ListingSink:
    """Collects every reported triangle in memory as :class:`Triangle` records."""

    __slots__ = ("count", "triangles")

    def __init__(self) -> None:
        self.count = 0
        self.triangles: list[Triangle] = []

    def add(self, u: int, v: int, w: int) -> None:
        self.triangles.append(Triangle(int(u), int(v), int(w)))
        self.count += 1

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        for w in ws:
            self.triangles.append(Triangle(int(u), int(v), int(w)))
        self.count += int(ws.shape[0])

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            self.triangles.append(Triangle(u, v, w))
        self.count += int(ws.shape[0])

    def vertex_sets(self) -> set[frozenset[int]]:
        """Unordered vertex sets of all collected triangles (for equality tests)."""
        return {t.as_vertex_set() for t in self.triangles}

    def merge(self, other: "ListingSink") -> None:
        self.triangles.extend(other.triangles)
        self.count += other.count


class FileSink:
    """Appends triangles to a block-device file as flat int64 triples.

    Every append goes through the block layer, so listing (as opposed to
    counting) pays the ``T/B`` output I/Os of Theorem IV.2 -- the ablation
    benchmark for counting vs. listing relies on this.

    Triples accumulate in a *preallocated* int64 buffer that is flushed in
    batches covering a whole number of device blocks (the buffer capacity
    is rounded up to the least common multiple of the block size and the
    24-byte triple record).  Appends to a fresh file therefore always start
    block-aligned and span exactly ``capacity * 8 / B`` blocks, so the
    charged output I/O equals the ideal ``⌈3T/B_items⌉`` of the theorem --
    the old list-based sink double-charged the boundary block of every
    unaligned flush on top of converting each triple through Python lists.

    A ``buffer_triangles`` below one block quantum is honoured as-is (the
    sink then flushes eagerly and unaligned, as before); block alignment
    only kicks in for buffers of at least one quantum.
    """

    __slots__ = ("count", "file", "_buffer", "_fill", "_capacity")

    def __init__(self, file: BlockFile, buffer_triangles: int = 4096) -> None:
        self.count = 0
        self.file = file
        # smallest number of triples covering whole blocks: lcm(B, 24)/24
        block = file.device.block_size
        quantum = math.lcm(block, 24) // 24
        capacity_triangles = max(buffer_triangles, 1)
        if capacity_triangles >= quantum:
            capacity_triangles = ceil_div(capacity_triangles, quantum) * quantum
        self._capacity = capacity_triangles * 3
        self._buffer = np.empty(self._capacity, dtype=np.int64)
        self._fill = 0

    def _push(self, flat: np.ndarray) -> None:
        """Append flat triple words, flushing whole buffers as they fill."""
        pos = 0
        total = flat.shape[0]
        while pos < total:
            take = min(self._capacity - self._fill, total - pos)
            self._buffer[self._fill : self._fill + take] = flat[pos : pos + take]
            self._fill += take
            pos += take
            if self._fill == self._capacity:
                self.file.append_array(self._buffer)
                self._fill = 0

    def add(self, u: int, v: int, w: int) -> None:
        self._buffer[self._fill] = u
        self._buffer[self._fill + 1] = v
        self._buffer[self._fill + 2] = w
        self._fill += 3
        self.count += 1
        if self._fill == self._capacity:
            self.file.append_array(self._buffer)
            self._fill = 0

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        triples = np.empty((n, 3), dtype=np.int64)
        triples[:, 0] = u
        triples[:, 1] = v
        triples[:, 2] = ws
        self._push(triples.reshape(-1))
        self.count += n

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        triples = np.empty((n, 3), dtype=np.int64)
        triples[:, 0] = us
        triples[:, 1] = vs
        triples[:, 2] = ws
        self._push(triples.reshape(-1))
        self.count += n

    def flush(self) -> None:
        if self._fill:
            self.file.append_array(self._buffer[: self._fill])
            self._fill = 0

    def read_all(self) -> list[Triangle]:
        """Read back every triangle written so far (flushes first)."""
        self.flush()
        total = self.file.num_items()
        if total == 0:
            return []
        flat = self.file.read_array(0, total)
        return [Triangle(int(a), int(b), int(c)) for a, b, c in flat.reshape(-1, 3)]


class PerVertexCountSink:
    """Accumulates, for every vertex, the number of triangles containing it.

    Each reported triangle contributes one to all three of its vertices;
    the resulting array feeds
    :func:`repro.graph.properties.clustering_coefficient`.
    """

    __slots__ = ("count", "per_vertex")

    def __init__(self, num_vertices: int) -> None:
        self.count = 0
        self.per_vertex = np.zeros(num_vertices, dtype=np.int64)

    def add(self, u: int, v: int, w: int) -> None:
        self.per_vertex[u] += 1
        self.per_vertex[v] += 1
        self.per_vertex[w] += 1
        self.count += 1

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        self.per_vertex[u] += n
        self.per_vertex[v] += n
        np.add.at(self.per_vertex, ws, 1)
        self.count += n

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        np.add.at(self.per_vertex, us, 1)
        np.add.at(self.per_vertex, vs, 1)
        np.add.at(self.per_vertex, ws, 1)
        self.count += n

    def merge(self, other: "PerVertexCountSink") -> None:
        self.per_vertex += other.per_vertex
        self.count += other.count


def oriented_edge_array(graph) -> np.ndarray:
    """Every oriented edge as an ``(m, 2)`` array in adjacency storage order.

    Accepts an on-disk :class:`~repro.graph.binfmt.GraphFile`, a zero-copy
    :class:`~repro.core.shm.SharedGraphView` or an in-memory oriented
    :class:`~repro.graph.csr.CSRGraph`; row ``p`` is the edge stored at
    adjacency position ``p``, the shared indexing contract of
    :class:`EdgeSupportSink` and ``PDTLResult.edge_supports``.
    """
    indptr = getattr(graph, "indptr", None)
    if indptr is not None:  # in-memory CSR
        return np.stack([graph.edge_sources(), graph.indices], axis=1)
    if graph.num_edges == 0:
        return np.empty((0, 2), dtype=np.int64)
    offsets = graph.offsets()
    sources = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64),
        np.diff(offsets).astype(np.int64),
    )
    destinations = graph.read_adjacency_range(0, graph.num_edges)
    return np.stack([sources, destinations], axis=1)


#: Per-process cache of file-backed oriented edge keys, keyed on the
#: adjacency file's identity (resolved path, mtime, size) so a chunked run
#: builds the m-entry key array once per worker process instead of once
#: per chunk.  Bounded LRU; host-side only (the skipped repeat reads were
#: never part of the worker's modelled accounting).
_EDGE_KEY_CACHE: dict = {}
_EDGE_KEY_CACHE_MAX = 4


def oriented_edge_keys(graph) -> np.ndarray:
    """Sorted packed ``(source, destination)`` keys of every oriented edge.

    A :class:`~repro.core.shm.SharedGraphView`'s published ``scan_keys``
    are reused as-is (zero-copy); for a file-backed graph the keys are
    built from one full adjacency read and memoised per process against
    the file's (path, mtime, size) identity, so repeated chunk tasks over
    the same oriented file pay the read once.  Both paths sit *below* the
    worker's modelled accounting.  The adjacency is (source,
    destination)-sorted in every representation, so the key array is
    sorted and the key at position ``p`` identifies the oriented edge
    stored at adjacency position ``p`` -- the indexing contract of
    :class:`EdgeSupportSink`.
    """
    keys = getattr(graph, "scan_keys", None)
    if keys is not None:
        return np.asarray(keys)
    cache_key = None
    device = getattr(graph, "device", None)
    if device is not None:  # file-backed: memoise against the file identity
        try:
            stat = device.path(graph.adjacency_file_name).stat()
            cache_key = (str(device.path(graph.adjacency_file_name)),
                         stat.st_mtime_ns, stat.st_size)
        except OSError:
            cache_key = None
        if cache_key is not None and cache_key in _EDGE_KEY_CACHE:
            cached = _EDGE_KEY_CACHE.pop(cache_key)
            _EDGE_KEY_CACHE[cache_key] = cached  # re-insert: LRU recency
            return cached
    edges = oriented_edge_array(graph)
    result = kernels.packed_keys(edges[:, 0], edges[:, 1], graph.num_vertices)
    if cache_key is not None:
        result.flags.writeable = False  # shared across sinks in this process
        _EDGE_KEY_CACHE[cache_key] = result
        while len(_EDGE_KEY_CACHE) > _EDGE_KEY_CACHE_MAX:
            _EDGE_KEY_CACHE.pop(next(iter(_EDGE_KEY_CACHE)))
    return result


class _SpillRun:
    """Bounded-buffer cursor over one sorted position run in the spill file."""

    __slots__ = ("file", "offset", "remaining", "buffer_items", "buf", "idx")

    def __init__(
        self, file: BlockFile, offset_items: int, length: int, buffer_items: int
    ) -> None:
        self.file = file
        self.offset = offset_items
        self.remaining = length
        self.buffer_items = buffer_items
        self.buf = np.empty(0, dtype=np.int64)
        self.idx = 0

    def ensure(self) -> None:
        """Refill the buffer from disk when it is fully consumed."""
        if self.idx < self.buf.shape[0] or self.remaining == 0:
            return
        take = min(self.buffer_items, self.remaining)
        self.buf = self.file.read_array(self.offset, take)
        self.offset += take
        self.remaining -= take
        self.idx = 0

    @property
    def exhausted(self) -> bool:
        return self.idx >= self.buf.shape[0] and self.remaining == 0

    def take_upto(self, bound: int | None) -> np.ndarray:
        """Consume and return buffered values ``<= bound`` (all, if None)."""
        if bound is None:
            out = self.buf[self.idx :]
            self.idx = self.buf.shape[0]
            return out
        stop = int(np.searchsorted(self.buf, bound, side="right"))
        out = self.buf[self.idx : stop]
        self.idx = max(self.idx, stop)
        return out


class EdgeSupportSink:
    """Accumulates, for every oriented edge, the number of triangles it is in.

    A triangle ``(u, v, w)`` in cone/pivot orientation (``u ≺ v ≺ w``)
    consists of the three oriented edges ``(u, v)``, ``(u, w)`` and
    ``(v, w)``, all of which are stored in the oriented adjacency file;
    each reported triangle therefore contributes one unit of *support* to
    three edge positions.  Positions are resolved with a single vectorised
    binary search of the packed ``(source, destination)`` keys against the
    sorted whole-graph key array (:func:`oriented_edge_keys` /
    :func:`repro.core.kernels.packed_keys`), the same primitive the MGT
    inner loop uses for membership.

    Two accumulation modes:

    * **dense** (default): an int64 array with one slot per oriented edge,
      updated with ``np.add.at`` -- exact, and mergeable across chunk tasks
      with :meth:`merge` (integer addition commutes, so partial supports
      from any chunk partition combine bit-identically);
    * **spill**: when ``memory_budget_bytes`` is given and the dense array
      would exceed it, positions accumulate in a bounded buffer that is
      sorted and appended to ``spill_file`` as a run whenever it fills;
      :meth:`iter_position_counts` then merges the runs externally with
      bounded per-run buffers (the external-sort discipline), yielding
      strictly increasing ``(positions, counts)`` batches.  All spill I/O
      goes through the block layer, so it is charged to the spill file's
      device -- deterministically, because the run contents are a pure
      function of the triangle stream and the budget.
    """

    __slots__ = (
        "count",
        "edge_keys",
        "num_vertices",
        "num_edges",
        "support",
        "_spill_file",
        "_buffer",
        "_fill",
        "_runs",
    )

    def __init__(
        self,
        edge_keys: np.ndarray,
        num_vertices: int,
        spill_file: BlockFile | None = None,
        memory_budget_bytes: int | None = None,
    ) -> None:
        self.count = 0
        self.edge_keys = np.asarray(edge_keys, dtype=np.int64)
        self.num_vertices = int(num_vertices)
        self.num_edges = int(self.edge_keys.shape[0])
        spilling = (
            memory_budget_bytes is not None
            and self.num_edges * 8 > int(memory_budget_bytes)
        )
        if spilling:
            if spill_file is None:
                raise ValueError(
                    "memory_budget_bytes below the dense support array "
                    f"({self.num_edges * 8} bytes) requires a spill_file"
                )
            self.support: np.ndarray | None = None
            self._buffer = np.empty(
                max(int(memory_budget_bytes) // 8, 16), dtype=np.int64
            )
            self._spill_file = spill_file
        else:
            self.support = np.zeros(self.num_edges, dtype=np.int64)
            self._buffer = None
            self._spill_file = None
        self._fill = 0
        self._runs: list[int] = []

    @property
    def spilling(self) -> bool:
        return self.support is None

    @property
    def spill_run_count(self) -> int:
        """Sorted runs flushed to the spill device so far (observability)."""
        return len(self._runs)

    @property
    def spilled_positions(self) -> int:
        """Total edge-position records spilled so far (observability)."""
        return sum(self._runs)

    # -- position resolution ------------------------------------------------------

    def _positions(self, sources: np.ndarray, destinations: np.ndarray) -> np.ndarray:
        queries = kernels.packed_keys(sources, destinations, self.num_vertices)
        pos = np.searchsorted(self.edge_keys, queries)
        if pos.shape[0]:
            clipped = np.minimum(pos, self.num_edges - 1)
            if self.num_edges == 0 or not np.array_equal(
                self.edge_keys[clipped], queries
            ):
                raise ValueError(
                    "triangle references a pair that is not an oriented edge"
                )
        return pos

    def _record(self, positions: np.ndarray) -> None:
        if self.support is not None:
            np.add.at(self.support, positions, 1)
            return
        cursor = 0
        total = positions.shape[0]
        capacity = self._buffer.shape[0]
        while cursor < total:
            take = min(capacity - self._fill, total - cursor)
            self._buffer[self._fill : self._fill + take] = positions[
                cursor : cursor + take
            ]
            self._fill += take
            cursor += take
            if self._fill == capacity:
                self._flush_run()

    def _flush_run(self) -> None:
        if self._fill == 0:
            return
        run = np.sort(self._buffer[: self._fill])
        self._spill_file.append_array(run)
        self._runs.append(self._fill)
        self._fill = 0

    # -- TriangleSink interface ---------------------------------------------------

    def add(self, u: int, v: int, w: int) -> None:
        self.add_triples(
            np.array([u], dtype=np.int64),
            np.array([v], dtype=np.int64),
            np.array([w], dtype=np.int64),
        )

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        self.add_triples(
            np.full(n, u, dtype=np.int64), np.full(n, v, dtype=np.int64), ws
        )

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        if self.support is not None:
            # compiled tier, dense mode only: resolve all three edge positions
            # and accumulate in one fused loop (no concatenated key arrays,
            # no np.add.at scatter).  A triple referencing a missing edge
            # rolls back its partial increments before we raise, preserving
            # the numpy path's check-before-mutate contract.  Spill mode
            # keeps the numpy path: its run contents are position *streams*,
            # not commutative sums.
            from repro.core import kernel_backend

            fused_accumulate = kernel_backend.fused("edge_support_accumulate")
            if (
                fused_accumulate is not None
                and self.num_vertices <= kernels.MAX_PACKABLE_VERTICES
            ):
                if not fused_accumulate(
                    self.edge_keys, us, vs, ws, self.num_vertices, self.support
                ):
                    raise ValueError(
                        "triangle references a pair that is not an oriented edge"
                    )
                self.count += n
                return
        sources = np.concatenate((us, us, vs))
        destinations = np.concatenate((vs, ws, ws))
        self._record(self._positions(sources, destinations))
        self.count += n

    # -- results ------------------------------------------------------------------

    @classmethod
    def from_supports(
        cls,
        edge_keys: np.ndarray,
        num_vertices: int,
        supports: np.ndarray,
    ) -> "EdgeSupportSink":
        """A dense sink re-hydrated from an already-merged support array.

        The retention path of the dynamic-graph deltas: a finished run's
        supports become sink state again so later batches can
        :meth:`merge_delta` into them.  ``supports`` is copied (the sink
        mutates it); ``count`` is restored from the support identity
        ``Σ support = 3 · triangles``.
        """
        supports = np.asarray(supports, dtype=np.int64)
        if supports.shape[0] != np.asarray(edge_keys).shape[0]:
            raise ValueError("supports and edge_keys must have equal length")
        if supports.shape[0] and int(supports.min()) < 0:
            raise ValueError("supports must be non-negative")
        sink = cls(edge_keys, num_vertices)
        sink.support = supports.copy()
        sink.count = int(supports.sum()) // 3
        return sink

    def merge(self, other: "EdgeSupportSink") -> None:
        """Combine partial supports exactly, in any mode pairing.

        Dense + dense is one array addition.  When either side spills, the
        spilled side's sorted runs are drained through
        :meth:`iter_position_counts` (bounded buffers, reads charged to its
        spill device) and folded in -- into the dense array directly, or
        re-recorded through the bounded spill buffer when *this* sink is
        the spilling one.  Integer addition commutes, so every pairing and
        order yields the same final supports; the dense+dense fast path is
        untouched, keeping its accounting bit-identical.
        """
        if other.num_edges != self.num_edges:
            raise ValueError("cannot merge supports of different edge counts")
        if self.support is not None and other.support is not None:
            self.support += other.support
        elif self.support is not None:
            for positions, counts in other.iter_position_counts():
                np.add.at(self.support, positions, counts)
        else:
            for positions, counts in other.iter_position_counts():
                # re-expand in bounded slices: one dense batch may cover
                # every edge, and this sink's whole point is a small buffer
                for lo in range(0, positions.shape[0], 8192):
                    hi = lo + 8192
                    self._record(np.repeat(positions[lo:hi], counts[lo:hi]))
        self.count += other.count

    def merge_delta(self, positions: np.ndarray, deltas: np.ndarray) -> None:
        """Apply signed support deltas exactly (dense mode only).

        The dynamic-graph mutation path: deleted triangles contribute
        ``-1`` per surviving edge, inserted ones ``+1`` -- integer
        addition over sparse positions, the same exactness argument as
        :meth:`merge`.  A delta that would drive any support negative is
        corrupt input and raises with the sink untouched.  Spill mode is
        refused: its state is a stream of positive increments, not a
        mergeable array (callers re-hydrate via :meth:`from_supports`).
        """
        if self.support is None:
            raise ValueError(
                "merge_delta requires the dense support array; re-hydrate "
                "spilled supports with EdgeSupportSink.from_supports first"
            )
        positions = np.asarray(positions, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if positions.shape != deltas.shape:
            raise ValueError("positions and deltas must align")
        if positions.shape[0] == 0:
            return
        if int(positions.min()) < 0 or int(positions.max()) >= self.num_edges:
            raise ValueError("delta position out of range")
        updated = self.support.copy()
        np.add.at(updated, positions, deltas)
        if int(updated.min()) < 0:
            raise ValueError("support delta drives an edge support negative")
        self.support = updated

    def iter_position_counts(
        self, buffer_items: int = 8192
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Aggregated ``(positions, counts)`` batches, positions strictly
        increasing across the whole iteration (each position appears once).

        Dense mode yields the nonzero entries in one batch.  Spill mode
        flushes the tail run and k-way merges the sorted runs with one
        bounded buffer per run: every round takes the values no future
        block can precede (``<=`` the smallest last-loaded element among
        runs with data still on disk), aggregates them with ``np.unique``,
        and holds the boundary position back as a carry because later
        blocks may still contribute to it.
        """
        if buffer_items <= 0:
            raise ValueError("buffer_items must be positive")
        if self.support is not None:
            positions = np.nonzero(self.support)[0]
            if positions.shape[0]:
                yield positions, self.support[positions]
            return
        self._flush_run()
        starts = np.zeros(len(self._runs) + 1, dtype=np.int64)
        np.cumsum(np.asarray(self._runs, dtype=np.int64), out=starts[1:])
        cursors = [
            _SpillRun(self._spill_file, int(starts[i]), length, buffer_items)
            for i, length in enumerate(self._runs)
        ]
        carry_pos: int | None = None
        carry_cnt = 0
        while cursors:
            for cursor in cursors:
                cursor.ensure()
            cursors = [c for c in cursors if not c.exhausted]
            if not cursors:
                break
            on_disk = [c for c in cursors if c.remaining > 0]
            bound = (
                min(int(c.buf[-1]) for c in on_disk) if on_disk else None
            )
            taken = [c.take_upto(bound) for c in cursors]
            merged = np.concatenate([t for t in taken if t.shape[0]])
            positions, counts = np.unique(merged, return_counts=True)
            if carry_pos is not None:
                if positions.shape[0] and int(positions[0]) == carry_pos:
                    counts[0] += carry_cnt
                else:
                    yield (
                        np.array([carry_pos], dtype=np.int64),
                        np.array([carry_cnt], dtype=np.int64),
                    )
                carry_pos, carry_cnt = None, 0
            if bound is not None and positions.shape[0] and int(positions[-1]) == bound:
                carry_pos, carry_cnt = int(positions[-1]), int(counts[-1])
                positions, counts = positions[:-1], counts[:-1]
            if positions.shape[0]:
                yield positions, counts
        if carry_pos is not None:
            yield (
                np.array([carry_pos], dtype=np.int64),
                np.array([carry_cnt], dtype=np.int64),
            )

    def supports(self) -> np.ndarray:
        """The dense per-edge support array (materialised from the runs when
        spilling -- the merge itself stays within the bounded buffers)."""
        if self.support is not None:
            return self.support
        out = np.zeros(self.num_edges, dtype=np.int64)
        for positions, counts in self.iter_position_counts():
            out[positions] = counts
        return out


# ---------------------------------------------------------------------------
# sink registry
# ---------------------------------------------------------------------------

#: Sink kinds a picklable chunk task can construct worker-side (``file`` is
#: excluded: a :class:`FileSink` binds a host-local handle that cannot cross
#: a process boundary).
CHUNK_SINK_KINDS = ("count", "list", "per-vertex", "edge-support")

_SINK_FACTORIES: dict[str, Callable[..., TriangleSink]] = {}


def register_sink(kind: str) -> Callable:
    """Register a sink factory under ``kind`` (used as a decorator).

    Factories receive the keyword context of :func:`make_sink`
    (``num_vertices``, ``file``, ``graph``, ``spill_file``,
    ``memory_budget_bytes``) and must ignore what they do not need.
    """

    def decorator(factory: Callable[..., TriangleSink]) -> Callable[..., TriangleSink]:
        _SINK_FACTORIES[kind] = factory
        return factory

    return decorator


def sink_kinds() -> tuple[str, ...]:
    """Every registered sink kind, sorted."""
    return tuple(sorted(_SINK_FACTORIES))


def normalize_sink_kind(kind: str) -> str:
    """Accept ``edge_support`` as a spelling of ``edge-support`` and so on."""
    return str(kind).replace("_", "-")


def make_sink(
    kind: str,
    num_vertices: int | None = None,
    file: BlockFile | None = None,
    graph=None,
    spill_file: BlockFile | None = None,
    memory_budget_bytes: int | None = None,
) -> TriangleSink:
    """Build a sink by registered kind: ``count``, ``list``, ``file``,
    ``per-vertex`` or ``edge-support``.

    This is the single dispatch point for every layer (high-level runner,
    chunk scheduler, tests); an unregistered kind raises ``ValueError``
    instead of silently falling back to a default sink.
    """
    factory = _SINK_FACTORIES.get(normalize_sink_kind(kind))
    if factory is None:
        raise ValueError(
            f"unknown sink kind {kind!r}; registered kinds: "
            f"{', '.join(sink_kinds())}"
        )
    return factory(
        num_vertices=num_vertices,
        file=file,
        graph=graph,
        spill_file=spill_file,
        memory_budget_bytes=memory_budget_bytes,
    )


@register_sink("count")
def _make_counting_sink(**_context) -> CountingSink:
    return CountingSink()


@register_sink("list")
def _make_listing_sink(**_context) -> ListingSink:
    return ListingSink()


@register_sink("file")
def _make_file_sink(file: BlockFile | None = None, **_context) -> FileSink:
    if file is None:
        raise ValueError("file sink requires a BlockFile")
    return FileSink(file)


@register_sink("per-vertex")
def _make_per_vertex_sink(
    num_vertices: int | None = None, graph=None, **_context
) -> PerVertexCountSink:
    if num_vertices is None and graph is not None:
        num_vertices = graph.num_vertices
    if num_vertices is None:
        raise ValueError("per-vertex sink requires num_vertices")
    return PerVertexCountSink(num_vertices)


@register_sink("edge-support")
def _make_edge_support_sink(
    graph=None,
    spill_file: BlockFile | None = None,
    memory_budget_bytes: int | None = None,
    **_context,
) -> EdgeSupportSink:
    if graph is None:
        raise ValueError("edge-support sink requires the oriented graph")
    return EdgeSupportSink(
        oriented_edge_keys(graph),
        graph.num_vertices,
        spill_file=spill_file,
        memory_budget_bytes=memory_budget_bytes,
    )
