"""Triangle records and the sinks that consume them.

PDTL is a *listing* framework: the inner loop reports every triangle
``(u, v, w)`` with cone vertex ``u`` and pivot edge ``(v, w)``
(Definition III.3).  What happens to a reported triangle is up to the
sink:

* :class:`CountingSink` only counts (the paper's experiments measure
  counting time so that competing systems can be compared);
* :class:`ListingSink` materialises the triangles in memory;
* :class:`FileSink` appends them to a block-device file, charging the
  ``T/B`` output term of the I/O bound;
* :class:`PerVertexCountSink` accumulates per-vertex triangle counts,
  which is what the clustering-coefficient application in the examples
  needs.

Sinks receive *batches* as numpy arrays wherever possible: the MGT inner
loop produces, for each (cone u, out-neighbour v) pair, the whole array of
pivot endpoints ``w`` at once, so the sink interface is
``add_batch(u, v, ws)`` plus a scalar ``add(u, v, w)`` convenience.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.externalmem.blockio import BlockFile
from repro.utils import ceil_div

__all__ = [
    "Triangle",
    "TriangleSink",
    "CountingSink",
    "ListingSink",
    "FileSink",
    "PerVertexCountSink",
    "make_sink",
]


@dataclass(frozen=True, order=True)
class Triangle:
    """A triangle in cone/pivot orientation: ``cone ≺ v ≺ w`` in the degree order.

    ``as_vertex_set`` recovers the unordered vertex set for comparisons with
    reference implementations that do not track orientation.
    """

    cone: int
    v: int
    w: int

    def as_vertex_set(self) -> frozenset[int]:
        return frozenset((self.cone, self.v, self.w))

    def __iter__(self):
        return iter((self.cone, self.v, self.w))


class TriangleSink(Protocol):
    """Protocol implemented by every triangle consumer."""

    count: int

    def add(self, u: int, v: int, w: int) -> None:
        """Report a single triangle ``(u, v, w)``."""
        ...

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        """Report triangles ``(u, v, w)`` for every ``w`` in ``ws``."""
        ...

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        """Report triangles ``(us[i], vs[i], ws[i])`` for every index ``i``.

        This is the vectorised entry point the MGT inner loop uses: one call
        per scanned block instead of one call per (cone, out-neighbour) pair.
        """
        ...


class CountingSink:
    """Counts triangles without storing them (the paper's measurement mode)."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, u: int, v: int, w: int) -> None:
        self.count += 1

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        self.count += int(ws.shape[0])

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        self.count += int(ws.shape[0])

    def merge(self, other: "CountingSink") -> None:
        self.count += other.count


class ListingSink:
    """Collects every reported triangle in memory as :class:`Triangle` records."""

    __slots__ = ("count", "triangles")

    def __init__(self) -> None:
        self.count = 0
        self.triangles: list[Triangle] = []

    def add(self, u: int, v: int, w: int) -> None:
        self.triangles.append(Triangle(int(u), int(v), int(w)))
        self.count += 1

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        for w in ws:
            self.triangles.append(Triangle(int(u), int(v), int(w)))
        self.count += int(ws.shape[0])

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            self.triangles.append(Triangle(u, v, w))
        self.count += int(ws.shape[0])

    def vertex_sets(self) -> set[frozenset[int]]:
        """Unordered vertex sets of all collected triangles (for equality tests)."""
        return {t.as_vertex_set() for t in self.triangles}

    def merge(self, other: "ListingSink") -> None:
        self.triangles.extend(other.triangles)
        self.count += other.count


class FileSink:
    """Appends triangles to a block-device file as flat int64 triples.

    Every append goes through the block layer, so listing (as opposed to
    counting) pays the ``T/B`` output I/Os of Theorem IV.2 -- the ablation
    benchmark for counting vs. listing relies on this.

    Triples accumulate in a *preallocated* int64 buffer that is flushed in
    batches covering a whole number of device blocks (the buffer capacity
    is rounded up to the least common multiple of the block size and the
    24-byte triple record).  Appends to a fresh file therefore always start
    block-aligned and span exactly ``capacity * 8 / B`` blocks, so the
    charged output I/O equals the ideal ``⌈3T/B_items⌉`` of the theorem --
    the old list-based sink double-charged the boundary block of every
    unaligned flush on top of converting each triple through Python lists.

    A ``buffer_triangles`` below one block quantum is honoured as-is (the
    sink then flushes eagerly and unaligned, as before); block alignment
    only kicks in for buffers of at least one quantum.
    """

    __slots__ = ("count", "file", "_buffer", "_fill", "_capacity")

    def __init__(self, file: BlockFile, buffer_triangles: int = 4096) -> None:
        self.count = 0
        self.file = file
        # smallest number of triples covering whole blocks: lcm(B, 24)/24
        block = file.device.block_size
        quantum = math.lcm(block, 24) // 24
        capacity_triangles = max(buffer_triangles, 1)
        if capacity_triangles >= quantum:
            capacity_triangles = ceil_div(capacity_triangles, quantum) * quantum
        self._capacity = capacity_triangles * 3
        self._buffer = np.empty(self._capacity, dtype=np.int64)
        self._fill = 0

    def _push(self, flat: np.ndarray) -> None:
        """Append flat triple words, flushing whole buffers as they fill."""
        pos = 0
        total = flat.shape[0]
        while pos < total:
            take = min(self._capacity - self._fill, total - pos)
            self._buffer[self._fill : self._fill + take] = flat[pos : pos + take]
            self._fill += take
            pos += take
            if self._fill == self._capacity:
                self.file.append_array(self._buffer)
                self._fill = 0

    def add(self, u: int, v: int, w: int) -> None:
        self._buffer[self._fill] = u
        self._buffer[self._fill + 1] = v
        self._buffer[self._fill + 2] = w
        self._fill += 3
        self.count += 1
        if self._fill == self._capacity:
            self.file.append_array(self._buffer)
            self._fill = 0

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        triples = np.empty((n, 3), dtype=np.int64)
        triples[:, 0] = u
        triples[:, 1] = v
        triples[:, 2] = ws
        self._push(triples.reshape(-1))
        self.count += n

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        triples = np.empty((n, 3), dtype=np.int64)
        triples[:, 0] = us
        triples[:, 1] = vs
        triples[:, 2] = ws
        self._push(triples.reshape(-1))
        self.count += n

    def flush(self) -> None:
        if self._fill:
            self.file.append_array(self._buffer[: self._fill])
            self._fill = 0

    def read_all(self) -> list[Triangle]:
        """Read back every triangle written so far (flushes first)."""
        self.flush()
        total = self.file.num_items()
        if total == 0:
            return []
        flat = self.file.read_array(0, total)
        return [Triangle(int(a), int(b), int(c)) for a, b, c in flat.reshape(-1, 3)]


class PerVertexCountSink:
    """Accumulates, for every vertex, the number of triangles containing it.

    Each reported triangle contributes one to all three of its vertices;
    the resulting array feeds
    :func:`repro.graph.properties.clustering_coefficient`.
    """

    __slots__ = ("count", "per_vertex")

    def __init__(self, num_vertices: int) -> None:
        self.count = 0
        self.per_vertex = np.zeros(num_vertices, dtype=np.int64)

    def add(self, u: int, v: int, w: int) -> None:
        self.per_vertex[u] += 1
        self.per_vertex[v] += 1
        self.per_vertex[w] += 1
        self.count += 1

    def add_batch(self, u: int, v: int, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        self.per_vertex[u] += n
        self.per_vertex[v] += n
        np.add.at(self.per_vertex, ws, 1)
        self.count += n

    def add_triples(self, us: np.ndarray, vs: np.ndarray, ws: np.ndarray) -> None:
        n = int(ws.shape[0])
        if n == 0:
            return
        np.add.at(self.per_vertex, us, 1)
        np.add.at(self.per_vertex, vs, 1)
        np.add.at(self.per_vertex, ws, 1)
        self.count += n

    def merge(self, other: "PerVertexCountSink") -> None:
        self.per_vertex += other.per_vertex
        self.count += other.count


def make_sink(
    kind: str, num_vertices: int | None = None, file: BlockFile | None = None
) -> TriangleSink:
    """Factory used by the high-level runner: ``count``, ``list``, ``file`` or
    ``per-vertex``."""
    if kind == "count":
        return CountingSink()
    if kind == "list":
        return ListingSink()
    if kind == "file":
        if file is None:
            raise ValueError("file sink requires a BlockFile")
        return FileSink(file)
    if kind == "per-vertex":
        if num_vertices is None:
            raise ValueError("per-vertex sink requires num_vertices")
        return PerVertexCountSink(num_vertices)
    raise ValueError(f"unknown sink kind {kind!r}")
