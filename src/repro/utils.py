"""Small shared utilities: timing, size parsing, deterministic RNG, chunking.

The rest of the library never calls :func:`numpy.random.seed` globally;
instead every stochastic component accepts either an integer seed or a
:class:`numpy.random.Generator` and routes it through :func:`as_rng`, which
keeps experiments reproducible and lets property-based tests inject their
own entropy.
"""

from __future__ import annotations

import math
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "as_rng",
    "parse_size",
    "format_size",
    "format_seconds",
    "parse_duration",
    "Timer",
    "StopwatchRegistry",
    "chunk_ranges",
    "even_splits",
    "prefix_sums",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a default, non-deterministic generator; an ``int``
    produces a deterministic one; an existing generator is passed through
    unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


_SIZE_UNITS = {
    "": 1,
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
    "t": 1024**4,
    "tb": 1024**4,
    "tib": 1024**4,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(size: int | float | str) -> int:
    """Parse a human-readable byte size such as ``"8GB"`` or ``"512k"``.

    Integers and floats are returned as-is (rounded to int).  Units are
    interpreted as binary (1K = 1024 bytes), matching how the paper quotes
    memory budgets.
    """
    if isinstance(size, (int, float)) and not isinstance(size, bool):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return int(size)
    match = _SIZE_RE.match(str(size))
    if not match:
        raise ValueError(f"cannot parse size {size!r}")
    value, unit = match.groups()
    unit = unit.lower()
    if unit not in _SIZE_UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {size!r}")
    return int(float(value) * _SIZE_UNITS[unit])


def format_size(num_bytes: int | float) -> str:
    """Format ``num_bytes`` as a human-readable string (binary units)."""
    num = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(num) < 1024.0 or unit == "PiB":
            if unit == "B":
                return f"{int(num)}{unit}"
            return f"{num:.1f}{unit}"
        num /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper's tables do (``1h17m24.5s``)."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    hours = int(seconds // 3600)
    minutes = int((seconds % 3600) // 60)
    secs = seconds - hours * 3600 - minutes * 60
    if hours:
        return f"{hours}h{minutes:02d}m{secs:04.1f}s"
    if minutes:
        return f"{minutes}m{secs:04.1f}s"
    return f"{secs:.1f}s"


_DURATION_RE = re.compile(
    r"^\s*(?:(?P<h>\d+)h)?(?:(?P<m>\d+)m)?(?:(?P<s>[0-9]*\.?[0-9]+)s?)?\s*$"
)


def parse_duration(text: str | float | int) -> float:
    """Parse a duration like ``"2m44.2s"`` or ``"1h17m24.5s"`` into seconds.

    Used by the experiment harness to embed the paper's reported values and
    compare them against measured ones.
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text)
    match = _DURATION_RE.match(str(text))
    if not match or not any(match.groupdict().values()):
        raise ValueError(f"cannot parse duration {text!r}")
    hours = int(match.group("h") or 0)
    minutes = int(match.group("m") or 0)
    seconds = float(match.group("s") or 0.0)
    return hours * 3600.0 + minutes * 60.0 + seconds


@dataclass
class Timer:
    """A tiny wall-clock timer usable as a context manager.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class StopwatchRegistry:
    """Named accumulating timers, used for CPU / I/O time breakdowns.

    The cluster metrics layer uses one registry per simulated node so that
    figures 6-8 (CPU vs I/O breakdown) can be regenerated from a single run.
    """

    times: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def track(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.times[name] = self.times.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        self.times[name] = self.times.get(name, 0.0) + float(seconds)

    def get(self, name: str) -> float:
        return self.times.get(name, 0.0)

    def merge(self, other: "StopwatchRegistry") -> None:
        for name, value in other.times.items():
            self.add(name, value)

    def as_dict(self) -> dict[str, float]:
        return dict(self.times)


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``chunks`` contiguous half-open ranges.

    The ranges cover ``[0, total)`` exactly, are non-overlapping and differ
    in length by at most one element.  Used for the naive (non
    load-balanced) edge split and for parallel orientation.
    """
    if chunks <= 0:
        raise ValueError(f"chunks must be positive, got {chunks}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, chunks)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        length = base + (1 if i < extra else 0)
        ranges.append((start, start + length))
        start += length
    return ranges


def even_splits(weights: Sequence[float] | np.ndarray, parts: int) -> list[tuple[int, int]]:
    """Split indices ``[0, len(weights))`` into ``parts`` contiguous ranges
    with approximately equal total weight.

    This is the core of the paper's load-balancing step: weights are the
    per-edge in-degree estimates and the returned ranges keep edges
    contiguous (a hard requirement of the PDTL protocol) while equalising
    expected intersection work.  A simple greedy sweep against the ideal
    per-part quota is used; it is ``O(len(weights))``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    w = np.asarray(weights, dtype=np.float64)
    n = w.shape[0]
    if n == 0:
        return [(0, 0) for _ in range(parts)]
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    cumulative = np.cumsum(w)
    total = float(cumulative[-1])
    if total == 0.0:
        return chunk_ranges(n, parts)
    boundaries = [0]
    for part in range(1, parts):
        target = total * part / parts
        # first index whose cumulative weight reaches the target
        idx = int(np.searchsorted(cumulative, target, side="left")) + 1
        idx = max(idx, boundaries[-1])
        idx = min(idx, n)
        boundaries.append(idx)
    boundaries.append(n)
    return [(boundaries[i], boundaries[i + 1]) for i in range(parts)]


def prefix_sums(values: Sequence[int] | np.ndarray) -> np.ndarray:
    """Exclusive prefix sums (length ``len(values) + 1``), as int64.

    ``prefix_sums(degrees)`` is the CSR ``indptr`` array.
    """
    arr = np.asarray(values, dtype=np.int64)
    out = np.zeros(arr.shape[0] + 1, dtype=np.int64)
    np.cumsum(arr, out=out[1:])
    return out


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``ceil_div(0, b) == 0``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def is_power_of_two(x: int) -> bool:
    """True when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_int(x: int) -> int:
    """Exact integer log2; raises if ``x`` is not a power of two."""
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return int(math.log2(x))
