"""Simulated machines: cores, memory, and a local block-device disk.

Every node of the paper's clusters stores its own copy of the graph on a
local SSD ("we store a graph copy locally, since each graph is read at
least once per processor", section V-B).  :class:`Machine` therefore owns
a private :class:`~repro.externalmem.blockio.BlockDevice` rooted in its own
directory, a core count, and the per-core memory size; the PDTL master
copies the oriented graph onto each machine's device before the triangle
phase starts.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.externalmem.blockio import BlockDevice, DiskModel
from repro.utils import format_size, parse_size

__all__ = ["Machine"]


@dataclass
class Machine:
    """One simulated cluster node.

    Parameters
    ----------
    index:
        node id; node 0 is always the master.
    num_cores:
        ``P`` for this machine.
    memory_per_core:
        ``M`` bytes for each of its cores.
    device:
        the machine's local disk.  When omitted, a temporary directory is
        created (and remembered so :meth:`cleanup` can delete it).
    """

    index: int
    num_cores: int
    memory_per_core: int
    device: BlockDevice
    _owns_tempdir: bool = field(default=False, repr=False)
    _tempdir: tempfile.TemporaryDirectory | None = field(default=None, repr=False)

    def __init__(
        self,
        index: int,
        num_cores: int,
        memory_per_core: int | str,
        device: BlockDevice | None = None,
        block_size: int = 4096,
        disk_model: DiskModel | None = None,
        storage_root: str | Path | None = None,
        mmap_reads: bool = False,
    ) -> None:
        if num_cores <= 0:
            raise ConfigurationError(f"machine {index} needs at least one core")
        self.index = int(index)
        self.num_cores = int(num_cores)
        self.memory_per_core = parse_size(memory_per_core)
        if self.memory_per_core <= 0:
            raise ConfigurationError("memory_per_core must be positive")
        self._owns_tempdir = False
        self._tempdir = None
        if device is not None:
            self.device = device
        else:
            if storage_root is not None:
                root = Path(storage_root) / f"node{index}"
            else:
                self._tempdir = tempfile.TemporaryDirectory(prefix=f"pdtl_node{index}_")
                self._owns_tempdir = True
                root = Path(self._tempdir.name)
            self.device = BlockDevice(
                root, block_size=block_size, model=disk_model, mmap_reads=mmap_reads
            )

    # -- capacity ------------------------------------------------------------------

    @property
    def total_memory(self) -> int:
        """``P · M`` for this machine."""
        return self.num_cores * self.memory_per_core

    @property
    def is_master(self) -> bool:
        return self.index == 0

    def describe(self) -> str:
        return (
            f"Machine(index={self.index}, cores={self.num_cores}, "
            f"memory/core={format_size(self.memory_per_core)}, "
            f"disk={self.device.root})"
        )

    def cleanup(self) -> None:
        """Delete the machine's temporary storage (no-op for shared devices)."""
        if self._owns_tempdir and self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
