"""Simulated point-to-point network between cluster machines.

The PDTL protocol's network usage is simple but large: the master ships
the whole oriented graph to every client (``N · |E|`` traffic), sends each
processor its configuration (``N · P`` messages) and receives back the
triangle counts (or, for listing, the triangle lists, the ``T`` term of
Theorem IV.3).  :class:`Network` models each master→client link with a
bandwidth/latency pair, records every transfer, and converts byte counts
into modelled transfer seconds -- the quantity Table III reports as
per-node copy time.

Links can have different bandwidths, which is how the benchmark for the
Yahoo copy-time anomaly (the master's disk being busy while copying)
injects a slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkError

__all__ = ["NetworkLink", "Network", "TransferRecord"]

#: Default link model: 10 Gigabit Ethernet as on the paper's EC2 instances.
DEFAULT_BANDWIDTH_BYTES_PER_S = 10e9 / 8
DEFAULT_LATENCY_S = 1e-4


@dataclass
class NetworkLink:
    """A directed link between two nodes with a simple cost model."""

    src: int
    dst: int
    bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH_BYTES_PER_S
    latency_s: float = DEFAULT_LATENCY_S

    def transfer_time(self, nbytes: int) -> float:
        """Modelled seconds to push ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bandwidth = self.bandwidth_bytes_per_s
        time = nbytes / bandwidth if bandwidth > 0 else 0.0
        return time + self.latency_s


@dataclass(frozen=True)
class TransferRecord:
    """One recorded transfer (for the traffic-accounting tests)."""

    src: int
    dst: int
    nbytes: int
    seconds: float
    label: str


@dataclass
class Network:
    """All links of a simulated cluster plus transfer accounting."""

    num_nodes: int
    links: dict[tuple[int, int], NetworkLink] = field(default_factory=dict)
    transfers: list[TransferRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise NetworkError("a network needs at least one node")
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src != dst and (src, dst) not in self.links:
                    self.links[(src, dst)] = NetworkLink(src=src, dst=dst)

    def link(self, src: int, dst: int) -> NetworkLink:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            raise NetworkError("no link from a node to itself")
        return self.links[(src, dst)]

    def set_link(
        self,
        src: int,
        dst: int,
        bandwidth_bytes_per_s: float | None = None,
        latency_s: float | None = None,
    ) -> None:
        """Override the cost model of one link (used by the skewed-copy benches)."""
        link = self.link(src, dst)
        if bandwidth_bytes_per_s is not None:
            link.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        if latency_s is not None:
            link.latency_s = latency_s

    def transfer(self, src: int, dst: int, nbytes: int, label: str = "") -> float:
        """Record a transfer and return its modelled duration in seconds.

        A transfer from a node to itself (the master "sending" to its own
        local disk) is free and recorded with zero time, matching the paper's
        convention of not charging the master a copy.
        """
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src == dst:
            record = TransferRecord(src, dst, nbytes, 0.0, label)
            self.transfers.append(record)
            return 0.0
        seconds = self.link(src, dst).transfer_time(nbytes)
        self.transfers.append(TransferRecord(src, dst, nbytes, seconds, label))
        return seconds

    # -- accounting -----------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """All bytes that actually crossed a link (self-transfers excluded)."""
        return sum(t.nbytes for t in self.transfers if t.src != t.dst)

    @property
    def total_messages(self) -> int:
        return sum(1 for t in self.transfers if t.src != t.dst)

    def bytes_received_by(self, node: int) -> int:
        return sum(t.nbytes for t in self.transfers if t.dst == node and t.src != node)

    def bytes_sent_by(self, node: int) -> int:
        return sum(t.nbytes for t in self.transfers if t.src == node and t.dst != node)

    def bytes_by_label(self, label: str) -> int:
        return sum(t.nbytes for t in self.transfers if t.label == label and t.src != t.dst)

    def reset(self) -> None:
        self.transfers.clear()

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(
                f"node {node} out of range for a {self.num_nodes}-node network"
            )
