"""Execution backends for the per-core MGT jobs.

A PDTL run launches one MGT job per (node, core) pair.  How those jobs are
actually executed on the reproduction host is orthogonal to the simulation
(the modelled CPU/I/O/network times are identical either way), so the
backend is pluggable:

* ``serial``   -- run jobs one after another in the calling process; fully
  deterministic, used by the test suite;
* ``threads``  -- a :class:`concurrent.futures.ThreadPoolExecutor`; numpy
  releases the GIL for the bulk array work, so this gives real concurrency
  for the I/O- and numpy-heavy parts while keeping shared-memory access to
  the block devices simple;
* ``processes`` -- a :class:`concurrent.futures.ProcessPoolExecutor` for
  true CPU parallelism; job callables and results must be picklable.

This mirrors the structure of an MPI deployment (one rank per core, results
gathered at the master) without requiring an MPI runtime, following the
message-passing idioms of the mpi4py tutorial: workers receive a small
configuration message, do local work against local storage, and send back
a small result.
"""

from __future__ import annotations

import concurrent.futures
from enum import Enum
from typing import Callable, Sequence, TypeVar

__all__ = ["ExecutionBackend", "run_jobs"]

T = TypeVar("T")


class ExecutionBackend(str, Enum):
    """How per-core jobs are executed on the host."""

    SERIAL = "serial"
    THREADS = "threads"
    PROCESSES = "processes"


def run_jobs(
    jobs: Sequence[Callable[[], T]],
    backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
    max_workers: int | None = None,
) -> list[T]:
    """Execute ``jobs`` under the chosen backend and return results in order.

    The result order always matches the job order regardless of completion
    order, so callers can zip results back onto their (node, core)
    assignments.
    """
    backend = ExecutionBackend(backend)
    if not jobs:
        return []
    if backend is ExecutionBackend.SERIAL or len(jobs) == 1:
        return [job() for job in jobs]
    if backend is ExecutionBackend.THREADS:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers or len(jobs)
        ) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [f.result() for f in futures]
    if backend is ExecutionBackend.PROCESSES:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers or len(jobs)
        ) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [f.result() for f in futures]
    raise ValueError(f"unknown execution backend {backend!r}")
