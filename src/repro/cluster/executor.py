"""Execution backends for the per-core MGT jobs.

A PDTL run launches MGT work on the reproduction host; how that work is
actually executed is orthogonal to the simulation (the modelled
CPU/I/O/network times are identical either way), so the backend is
pluggable:

* ``serial``   -- run jobs one after another in the calling process; fully
  deterministic, used by the test suite;
* ``threads``  -- worker threads pulling from a shared queue; numpy
  releases the GIL for the bulk array work, so this gives real concurrency
  for the I/O- and numpy-heavy parts while keeping shared-memory access to
  the block devices simple;
* ``processes`` -- a :class:`concurrent.futures.ProcessPoolExecutor` for
  true CPU parallelism; job callables and results must be picklable (the
  dynamic scheduler's :class:`~repro.core.scheduler.ChunkTask` path is).

Two entry points are exposed.  :func:`run_jobs` is the classic fixed-
assignment API (one job per processor, results in submission order).
:func:`run_task_queue` is the pull-based variant the dynamic chunk
scheduler uses: a bounded crew of workers loops over a shared queue of
small tasks, so a slow task only delays the worker holding it -- the
structured-concurrency shape of pygolang's ``sync.WorkGroup``, without the
extra dependency.  Both cap their default parallelism at the host's CPU
count: spawning one OS thread or process per job melts down once jobs
number in the hundreds (the dynamic scheduler routinely queues hundreds of
chunks).
"""

from __future__ import annotations

import concurrent.futures
import os
import queue
import threading
from enum import Enum
from typing import Callable, Sequence, TypeVar

__all__ = ["ExecutionBackend", "run_jobs", "run_task_queue"]

T = TypeVar("T")
U = TypeVar("U")


class ExecutionBackend(str, Enum):
    """How per-core jobs are executed on the host."""

    SERIAL = "serial"
    THREADS = "threads"
    PROCESSES = "processes"


def _effective_workers(max_workers: int | None, num_jobs: int) -> int:
    """Bound the worker crew: the caller's cap if given, else the CPU count."""
    cap = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(cap, num_jobs))


def run_jobs(
    jobs: Sequence[Callable[[], T]],
    backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
    max_workers: int | None = None,
) -> list[T]:
    """Execute ``jobs`` under the chosen backend and return results in order.

    The result order always matches the job order regardless of completion
    order, so callers can zip results back onto their (node, core)
    assignments.  When ``max_workers`` is omitted the crew is capped at
    ``os.cpu_count()`` -- never one worker per job.
    """
    backend = ExecutionBackend(backend)
    if not jobs:
        return []
    if backend is ExecutionBackend.SERIAL or len(jobs) == 1:
        return [job() for job in jobs]
    workers = _effective_workers(max_workers, len(jobs))
    if backend is ExecutionBackend.THREADS:
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [f.result() for f in futures]
    if backend is ExecutionBackend.PROCESSES:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [f.result() for f in futures]
    raise ValueError(f"unknown execution backend {backend!r}")


def run_task_queue(
    tasks: Sequence[U],
    fn: Callable[[U], T],
    backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
    max_workers: int | None = None,
) -> list[T]:
    """Apply ``fn`` to every task with workers *pulling* from a shared queue.

    Results are returned in task order regardless of completion order, so a
    caller can merge them deterministically.  Under ``threads`` each worker
    is an explicit loop -- pop the next task index, run it, repeat until the
    queue drains -- so a straggling task occupies exactly one worker while
    the rest keep pulling.  Under ``processes`` the pool's internal work
    queue provides the same pull behaviour; ``fn`` and the tasks must then
    be picklable.  The first exception raised by any task is re-raised after
    the surviving workers finish.
    """
    backend = ExecutionBackend(backend)
    num_tasks = len(tasks)
    if num_tasks == 0:
        return []
    workers = _effective_workers(max_workers, num_tasks)
    # The processes backend always goes through a real pool (even with one
    # worker) so the picklable-task contract is genuinely exercised; the
    # in-process backends degenerate to a plain loop when only one worker
    # would run anyway.
    if backend is ExecutionBackend.SERIAL or (
        backend is ExecutionBackend.THREADS and (num_tasks == 1 or workers == 1)
    ):
        return [fn(task) for task in tasks]

    results: list[T] = [None] * num_tasks  # type: ignore[list-item]
    if backend is ExecutionBackend.THREADS:
        pending: queue.SimpleQueue[int] = queue.SimpleQueue()
        for index in range(num_tasks):
            pending.put(index)
        errors: list[BaseException] = []
        error_lock = threading.Lock()

        def worker_loop() -> None:
            while True:
                try:
                    index = pending.get_nowait()
                except queue.Empty:
                    return
                try:
                    results[index] = fn(tasks[index])
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with error_lock:
                        errors.append(exc)
                    return

        threads = [threading.Thread(target=worker_loop) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results
    if backend is ExecutionBackend.PROCESSES:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(fn, task): i for i, task in enumerate(tasks)}
            for future in concurrent.futures.as_completed(futures):
                results[futures[future]] = future.result()
        return results
    raise ValueError(f"unknown execution backend {backend!r}")
