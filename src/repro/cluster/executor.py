"""Execution backends for the per-core MGT jobs.

A PDTL run launches MGT work on the reproduction host; how that work is
actually executed is orthogonal to the simulation (the modelled
CPU/I/O/network times are identical either way), so the backend is
pluggable:

* ``serial``   -- run jobs one after another in the calling process; fully
  deterministic, used by the test suite;
* ``threads``  -- worker threads pulling from a shared queue; numpy
  releases the GIL for the bulk array work, so this gives real concurrency
  for the I/O- and numpy-heavy parts while keeping shared-memory access to
  the block devices simple;
* ``processes`` -- a **persistent** :class:`concurrent.futures.ProcessPoolExecutor`
  for true CPU parallelism; job callables and results must be picklable
  (the dynamic scheduler's :class:`~repro.core.scheduler.ChunkTask` path
  is).  The pool is created once and reused across every ``run_jobs`` /
  ``run_task_queue`` call (and across scheduler rounds), so repeated runs
  pay the worker spawn cost exactly once instead of per call -- the
  visible startup tax on small graphs the old per-call pool had.  Each
  worker runs an initializer that resets the process-local shared-memory
  attachment cache (:mod:`repro.core.shm`), after which chunk tasks attach
  published graph segments once and serve every later task zero-copy.

Two entry points are exposed.  :func:`run_jobs` is the classic fixed-
assignment API (one job per processor, results in submission order).
:func:`run_task_queue` is the pull-based variant the dynamic chunk
scheduler uses: a bounded crew of workers loops over a shared queue of
small tasks, so a slow task only delays the worker holding it -- the
structured-concurrency shape of pygolang's ``sync.WorkGroup``, without the
extra dependency.  Both cap their default parallelism at the host's CPU
count: spawning one OS thread or process per job melts down once jobs
number in the hundreds (the dynamic scheduler routinely queues hundreds of
chunks).

Because the process pool outlives individual calls, a caller-supplied
``max_workers`` smaller than the pool is enforced with a sliding
submission window (at most that many tasks in flight), and a crashed
worker (:class:`~concurrent.futures.process.BrokenProcessPool`) discards
the pool so the next call transparently builds a fresh one.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import queue
import threading
from concurrent.futures.process import BrokenProcessPool
from enum import Enum
from typing import Callable, Sequence, TypeVar

__all__ = [
    "ExecutionBackend",
    "run_jobs",
    "run_task_queue",
    "run_preprocess_queue",
    "process_pool",
    "shutdown_process_pool",
]

T = TypeVar("T")
U = TypeVar("U")


class ExecutionBackend(str, Enum):
    """How per-core jobs are executed on the host."""

    SERIAL = "serial"
    THREADS = "threads"
    PROCESSES = "processes"


def _effective_workers(max_workers: int | None, num_jobs: int) -> int:
    """Bound the worker crew: the caller's cap if given, else the CPU count."""
    cap = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(cap, num_jobs))


# ---------------------------------------------------------------------------
# the persistent process pool
# ---------------------------------------------------------------------------


class _PoolHandle:
    """The shared executor plus the bookkeeping that makes replacing it safe.

    ``users`` counts threads currently running a ``_map_on_pool`` round on
    this executor; ``retired`` marks a handle that is no longer the
    current pool (grown past, torn down, or broken).  A retired pool is
    only shut down once its last user releases it, so a concurrent caller
    never has the executor yanked out from under its in-flight submits --
    the safety the old one-executor-per-call design had for free.
    """

    __slots__ = ("pool", "workers", "users", "retired", "close_wait")

    def __init__(self, pool: concurrent.futures.ProcessPoolExecutor, workers: int):
        self.pool = pool
        self.workers = workers
        self.users = 0
        self.retired = False
        self.close_wait = True  # wait flag for a deferred shutdown


_POOL_LOCK = threading.Lock()
_CURRENT: _PoolHandle | None = None


def _pool_worker_init() -> None:
    """Per-worker initializer: start from a clean shared-memory cache.

    Under the ``fork`` start method a new worker inherits the parent's
    attachment cache; the entries belong to the parent's lifecycle, so the
    worker forgets them and re-attaches (once, cached) on first use.
    """
    from repro.core import shm

    shm._reset_worker_cache()


def _ensure_pool_locked(min_workers: int) -> tuple[_PoolHandle, _PoolHandle | None]:
    """Make the current handle hold >= ``min_workers``; caller holds the lock.

    Returns ``(current, to_close)`` where ``to_close`` is a replaced pool
    with no active users (the caller shuts it down outside the lock).
    """
    global _CURRENT
    to_close: _PoolHandle | None = None
    if _CURRENT is None or _CURRENT.workers < min_workers:
        old = _CURRENT
        if old is not None:
            old.retired = True
            if old.users == 0:
                to_close = old
        _CURRENT = _PoolHandle(
            concurrent.futures.ProcessPoolExecutor(
                max_workers=min_workers, initializer=_pool_worker_init
            ),
            min_workers,
        )
    return _CURRENT, to_close


def process_pool(min_workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """Return the persistent process pool, sized for at least ``min_workers``.

    The pool is created lazily on first use and reused for every later
    call; if a caller needs more workers than the current pool has, a
    larger pool replaces it (never shrunk -- idle workers are cheap,
    respawning them is not).

    This is an inspection/warm-up hook, not a submission API: the returned
    executor may be replaced (and shut down) by a later, larger request at
    any time.  Only the internal ``_acquire_pool``/``_release_pool``
    protocol -- which ``run_jobs`` and ``run_task_queue`` use -- defers
    that shutdown while tasks are in flight, so submit work through those
    entry points rather than directly on the returned pool.
    """
    with _POOL_LOCK:
        handle, to_close = _ensure_pool_locked(min_workers)
    if to_close is not None:
        to_close.pool.shutdown(wait=True)
    return handle.pool


def _acquire_pool(min_workers: int) -> _PoolHandle:
    with _POOL_LOCK:
        handle, to_close = _ensure_pool_locked(min_workers)
        handle.users += 1
    if to_close is not None:
        to_close.pool.shutdown(wait=True)
    return handle


def _release_pool(handle: _PoolHandle) -> None:
    with _POOL_LOCK:
        handle.users -= 1
        close_now = handle.retired and handle.users == 0
        close_wait = handle.close_wait
    if close_now:
        handle.pool.shutdown(wait=close_wait)


def _discard_pool(handle: _PoolHandle) -> None:
    """Retire a broken pool so the next call rebuilds; the caller's release
    (or the last concurrent user's) performs the actual shutdown."""
    global _CURRENT
    with _POOL_LOCK:
        handle.retired = True
        if _CURRENT is handle:
            _CURRENT = None


def shutdown_process_pool(wait: bool = True) -> None:
    """Tear down the persistent pool (idempotent; used by tests/atexit).

    The next processes-backend call builds a fresh pool transparently.  If
    another thread is mid-run on the pool, teardown is deferred to that
    thread's release.
    """
    global _CURRENT
    with _POOL_LOCK:
        handle, _CURRENT = _CURRENT, None
        if handle is None:
            return
        handle.retired = True
        handle.close_wait = wait  # honoured by a deferred close too
        close_now = handle.users == 0
    if close_now:
        handle.pool.shutdown(wait=wait)


atexit.register(shutdown_process_pool)


def _map_on_pool(
    fn: Callable[[U], T], tasks: Sequence[U], window: int
) -> list[T]:
    """Run ``fn`` over ``tasks`` on the persistent pool, results in order.

    At most ``window`` tasks are in flight at once, so a caller's
    ``max_workers`` cap holds even when the shared pool is larger.  On a
    worker crash the pool is discarded before the error propagates.
    """
    handle = _acquire_pool(window)
    pool = handle.pool
    results: list[T] = [None] * len(tasks)  # type: ignore[list-item]
    pending: dict[concurrent.futures.Future, int] = {}
    error: BaseException | None = None
    next_index = 0
    try:
        while (next_index < len(tasks) or pending) and error is None:
            while next_index < len(tasks) and len(pending) < window:
                pending[pool.submit(fn, tasks[next_index])] = next_index
                next_index += 1
            done, _ = concurrent.futures.wait(
                pending, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in done:
                index = pending.pop(future)
                try:
                    results[index] = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    error = exc
                    break
        if error is not None:
            for future in pending:
                future.cancel()
            concurrent.futures.wait(list(pending))
            raise error
    except BrokenProcessPool:
        _discard_pool(handle)
        raise
    finally:
        _release_pool(handle)
    return results


def run_jobs(
    jobs: Sequence[Callable[[], T]],
    backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
    max_workers: int | None = None,
) -> list[T]:
    """Execute ``jobs`` under the chosen backend and return results in order.

    The result order always matches the job order regardless of completion
    order, so callers can zip results back onto their (node, core)
    assignments.  When ``max_workers`` is omitted the crew is capped at
    ``os.cpu_count()`` -- never one worker per job.
    """
    backend = ExecutionBackend(backend)
    if not jobs:
        return []
    if backend is ExecutionBackend.SERIAL or len(jobs) == 1:
        return [job() for job in jobs]
    workers = _effective_workers(max_workers, len(jobs))
    if backend is ExecutionBackend.THREADS:
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [f.result() for f in futures]
    if backend is ExecutionBackend.PROCESSES:
        return _map_on_pool(_call_job, jobs, workers)
    raise ValueError(f"unknown execution backend {backend!r}")


def _call_job(job: Callable[[], T]) -> T:
    """Module-level trampoline so ``run_jobs`` callables cross the pickle
    boundary the same way ``run_task_queue`` tasks do."""
    return job()


def run_preprocess_queue(
    tasks: Sequence[U],
    fn: Callable[[U], T],
    max_workers: int | None = None,
) -> list[T]:
    """Fan master-side preprocessing tasks out over the persistent pool.

    This is the task queue the parallel preprocessing pipeline (orientation
    chunks, external-sort run formation) submits to: the pull behaviour of
    :func:`run_task_queue` pinned to the persistent ``processes`` backend,
    so results come back in task order, at most ``max_workers`` (or the CPU
    count) tasks are in flight, and the picklable-task contract is
    genuinely exercised even for a single chunk.
    """
    return run_task_queue(
        tasks, fn, backend=ExecutionBackend.PROCESSES, max_workers=max_workers
    )


def run_task_queue(
    tasks: Sequence[U],
    fn: Callable[[U], T],
    backend: ExecutionBackend | str = ExecutionBackend.SERIAL,
    max_workers: int | None = None,
) -> list[T]:
    """Apply ``fn`` to every task with workers *pulling* from a shared queue.

    Results are returned in task order regardless of completion order, so a
    caller can merge them deterministically.  Under ``threads`` each worker
    is an explicit loop -- pop the next task index, run it, repeat until the
    queue drains -- so a straggling task occupies exactly one worker while
    the rest keep pulling.  Under ``processes`` the *persistent* pool's
    internal work queue provides the same pull behaviour across calls
    without re-spawning workers; ``fn`` and the tasks must then be
    picklable.  The first exception raised by any task is re-raised after
    the surviving workers finish.
    """
    backend = ExecutionBackend(backend)
    num_tasks = len(tasks)
    if num_tasks == 0:
        return []
    workers = _effective_workers(max_workers, num_tasks)
    # The processes backend always goes through the real pool (even with one
    # worker) so the picklable-task contract is genuinely exercised; the
    # in-process backends degenerate to a plain loop when only one worker
    # would run anyway.
    if backend is ExecutionBackend.SERIAL or (
        backend is ExecutionBackend.THREADS and (num_tasks == 1 or workers == 1)
    ):
        return [fn(task) for task in tasks]

    if backend is ExecutionBackend.THREADS:
        results: list[T] = [None] * num_tasks  # type: ignore[list-item]
        pending: queue.SimpleQueue[int] = queue.SimpleQueue()
        for index in range(num_tasks):
            pending.put(index)
        errors: list[BaseException] = []
        error_lock = threading.Lock()

        def worker_loop() -> None:
            while True:
                try:
                    index = pending.get_nowait()
                except queue.Empty:
                    return
                try:
                    results[index] = fn(tasks[index])
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with error_lock:
                        errors.append(exc)
                    return

        threads = [threading.Thread(target=worker_loop) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results
    if backend is ExecutionBackend.PROCESSES:
        return _map_on_pool(fn, tasks, workers)
    raise ValueError(f"unknown execution backend {backend!r}")
