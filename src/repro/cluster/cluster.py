"""The simulated cluster: a set of machines joined by a network.

:class:`Cluster` is the deployment substrate the PDTL master operates on.
It knows how to build itself from a :class:`~repro.core.config.PDTLConfig`
(one machine per node, ``P`` cores and ``M`` memory per core each), how to
duplicate an on-disk graph from the master to every other machine while
charging both the disk and the network models, and how to clean up the
temporary per-machine storage afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.machine import Machine
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.network import Network
from repro.core.config import PDTLConfig
from repro.errors import ConfigurationError
from repro.externalmem.blockio import DiskModel
from repro.graph.binfmt import GraphFile

__all__ = ["Cluster"]


@dataclass
class Cluster:
    """A set of simulated machines (node 0 is the master) plus their network."""

    machines: list[Machine]
    network: Network
    metrics: ClusterMetrics = field(default_factory=ClusterMetrics)

    def __post_init__(self) -> None:
        if not self.machines:
            raise ConfigurationError("a cluster needs at least one machine")
        if self.network.num_nodes != len(self.machines):
            raise ConfigurationError(
                "network size does not match the number of machines"
            )
        for i, machine in enumerate(self.machines):
            if machine.index != i:
                raise ConfigurationError(
                    f"machine at position {i} has index {machine.index}"
                )

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        config: PDTLConfig,
        storage_root: str | Path | None = None,
        disk_model: DiskModel | None = None,
        bandwidth_bytes_per_s: float | None = None,
    ) -> "Cluster":
        """Build a homogeneous cluster matching a :class:`PDTLConfig`."""
        machines = [
            Machine(
                index=i,
                num_cores=config.procs_per_node,
                memory_per_core=config.memory_per_proc,
                block_size=config.block_size,
                disk_model=disk_model,
                storage_root=storage_root,
                mmap_reads=config.mmap_reads,
            )
            for i in range(config.num_nodes)
        ]
        network = Network(num_nodes=config.num_nodes)
        if bandwidth_bytes_per_s is not None:
            for (src, dst), link in network.links.items():
                link.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        return cls(machines=machines, network=network)

    # -- basic accessors --------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.machines)

    @property
    def master(self) -> Machine:
        return self.machines[0]

    @property
    def total_cores(self) -> int:
        return sum(m.num_cores for m in self.machines)

    @property
    def total_memory(self) -> int:
        return sum(m.total_memory for m in self.machines)

    def machine(self, index: int) -> Machine:
        if not 0 <= index < self.num_nodes:
            raise ConfigurationError(f"no machine with index {index}")
        return self.machines[index]

    # -- graph duplication ---------------------------------------------------------------

    def replicate_graph(self, graph: GraphFile) -> dict[int, GraphFile]:
        """Copy an on-disk graph from the master's device to every machine.

        Returns a mapping node index → that node's local :class:`GraphFile`.
        The master's own copy is the original file (no transfer charged); for
        every other node the bytes cross the simulated network and are
        written to that node's disk, and the modelled transfer time is added
        to the node's ``copy_seconds`` -- this is the quantity Table III
        reports as "avg copy time".
        """
        if graph.device is not self.master.device:
            raise ConfigurationError(
                "replicate_graph expects the graph to live on the master's device"
            )
        copies: dict[int, GraphFile] = {0: graph}
        for machine in self.machines[1:]:
            local = graph.copy_to(machine.device, graph.name)
            nbytes = graph.size_bytes + machine.device.file_size(graph.meta_file_name)
            seconds = self.network.transfer(
                0, machine.index, nbytes, label="graph-copy"
            )
            node_metrics = self.metrics.node(machine.index)
            node_metrics.copy_seconds += seconds
            node_metrics.bytes_received += nbytes
            master_metrics = self.metrics.node(0)
            master_metrics.bytes_sent += nbytes
            copies[machine.index] = local
        return copies

    def send_configuration(self, node: int, nbytes: int = 64) -> float:
        """Charge the small per-processor configuration message (the C_{i,j}
        boxes of Figure 1)."""
        seconds = self.network.transfer(0, node, nbytes, label="configuration")
        self.metrics.node(node).bytes_received += nbytes
        self.metrics.node(0).bytes_sent += nbytes
        return seconds

    def send_chunk_grant(self, node: int, nbytes: int = 24) -> float:
        """Charge one master→worker chunk hand-out of the dynamic scheduler.

        Pull-based scheduling trades a little extra coordination traffic
        (one tiny descriptor per chunk instead of one range per processor)
        for balance and fault tolerance; charging each grant makes that
        trade visible in the network metrics.
        """
        seconds = self.network.transfer(0, node, nbytes, label="chunk-grant")
        self.metrics.node(node).bytes_received += nbytes
        self.metrics.node(0).bytes_sent += nbytes
        return seconds

    def send_result(self, node: int, nbytes: int) -> float:
        """Charge a client→master result message (count or triangle list)."""
        seconds = self.network.transfer(node, 0, nbytes, label="result")
        self.metrics.node(0).bytes_received += nbytes
        self.metrics.node(node).bytes_sent += nbytes
        return seconds

    # -- lifecycle ----------------------------------------------------------------------

    def cleanup(self) -> None:
        for machine in self.machines:
            machine.cleanup()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.cleanup()
