"""Per-node and per-cluster resource metrics.

The paper's evaluation repeatedly slices the same three quantities --
CPU time, I/O time, network traffic -- per node and per processor
(Figures 6-8, Tables IV and VII).  :class:`NodeMetrics` is the accumulator
for one simulated machine and :class:`ClusterMetrics` the roll-up across
machines; both are plain data with explicit merge rules so they can be
combined across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.externalmem.iostats import IOStats

__all__ = ["NodeMetrics", "ClusterMetrics"]


@dataclass
class NodeMetrics:
    """Resource accounting for one simulated machine.

    ``cpu_seconds`` / ``io_seconds`` are the sums over the node's workers;
    ``calc_seconds`` is the node's *elapsed* calculation time, i.e. the
    maximum over its concurrently running workers, which is the quantity
    the paper calls the node's calculation time (the "struggler" node's
    value determines the cluster-wide calculation time).
    """

    node_index: int
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    calc_seconds: float = 0.0
    copy_seconds: float = 0.0
    bytes_received: int = 0
    bytes_sent: int = 0
    triangles: int = 0
    workers: int = 0
    io_stats: IOStats = field(default_factory=IOStats)

    def add_worker(
        self, cpu_seconds: float, io_seconds: float, triangles: int, io_stats: IOStats
    ) -> None:
        """Fold one worker's result into this node's totals."""
        self.cpu_seconds += cpu_seconds
        self.io_seconds += io_seconds
        self.calc_seconds = max(self.calc_seconds, cpu_seconds + io_seconds)
        self.triangles += triangles
        self.workers += 1
        self.io_stats.merge(io_stats)

    def total_seconds(self) -> float:
        """Copy time plus elapsed calculation time for this node."""
        return self.copy_seconds + self.calc_seconds

    def as_dict(self) -> dict[str, float]:
        return {
            "node": self.node_index,
            "cpu_seconds": self.cpu_seconds,
            "io_seconds": self.io_seconds,
            "calc_seconds": self.calc_seconds,
            "copy_seconds": self.copy_seconds,
            "bytes_received": self.bytes_received,
            "bytes_sent": self.bytes_sent,
            "triangles": self.triangles,
            "workers": self.workers,
        }


@dataclass
class ClusterMetrics:
    """Cluster-wide roll-up of per-node metrics."""

    nodes: list[NodeMetrics] = field(default_factory=list)

    def node(self, index: int) -> NodeMetrics:
        """Return (creating if necessary) the metrics of node ``index``."""
        while len(self.nodes) <= index:
            self.nodes.append(NodeMetrics(node_index=len(self.nodes)))
        return self.nodes[index]

    @property
    def total_cpu_seconds(self) -> float:
        return sum(n.cpu_seconds for n in self.nodes)

    @property
    def total_io_seconds(self) -> float:
        return sum(n.io_seconds for n in self.nodes)

    @property
    def total_triangles(self) -> int:
        return sum(n.triangles for n in self.nodes)

    @property
    def calc_seconds(self) -> float:
        """Cluster calculation time: the slowest ("struggler") node's value."""
        return max((n.calc_seconds for n in self.nodes), default=0.0)

    @property
    def max_node_total_seconds(self) -> float:
        return max((n.total_seconds() for n in self.nodes), default=0.0)

    @property
    def total_network_bytes(self) -> int:
        return sum(n.bytes_received for n in self.nodes)

    def average_copy_seconds(self, exclude_master: bool = True) -> float:
        """Average copy time over the non-master nodes (Table III convention)."""
        nodes = self.nodes[1:] if exclude_master and len(self.nodes) > 1 else self.nodes
        if not nodes:
            return 0.0
        return sum(n.copy_seconds for n in nodes) / len(nodes)

    def imbalance_ratio(self) -> float:
        """Max/min node calculation time, the skew measure of section V-D5.

        Returns 1.0 for perfectly balanced clusters; the paper quotes the
        discrepancy as a percentage (our 1.13 == their "13% difference").
        """
        times = [n.calc_seconds for n in self.nodes if n.workers > 0]
        if not times or min(times) == 0.0:
            return 1.0
        return max(times) / min(times)

    def as_rows(self) -> list[dict[str, float]]:
        return [n.as_dict() for n in self.nodes]
