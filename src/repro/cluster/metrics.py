"""Per-node and per-cluster resource metrics.

The paper's evaluation repeatedly slices the same three quantities --
CPU time, I/O time, network traffic -- per node and per processor
(Figures 6-8, Tables IV and VII).  :class:`NodeMetrics` is the accumulator
for one simulated machine and :class:`ClusterMetrics` the roll-up across
machines; both are plain data with explicit merge rules so they can be
combined across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.externalmem.iostats import IOStats

__all__ = ["NodeMetrics", "ClusterMetrics"]


@dataclass
class NodeMetrics:
    """Resource accounting for one simulated machine.

    ``cpu_seconds`` / ``io_seconds`` are the sums over the node's workers;
    ``calc_seconds`` is the node's *elapsed* calculation time, i.e. the
    maximum over its concurrently running workers, which is the quantity
    the paper calls the node's calculation time (the "struggler" node's
    value determines the cluster-wide calculation time).
    """

    node_index: int
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    calc_seconds: float = 0.0
    copy_seconds: float = 0.0
    bytes_received: int = 0
    bytes_sent: int = 0
    triangles: int = 0
    workers: int = 0
    chunks_completed: int = 0
    chunks_stolen: int = 0
    chunks_retried: int = 0
    io_stats: IOStats = field(default_factory=IOStats)
    worker_calc_seconds: list[float] = field(default_factory=list)

    def add_worker(
        self,
        cpu_seconds: float,
        io_seconds: float,
        triangles: int,
        io_stats: IOStats,
        chunks_completed: int = 1,
        chunks_stolen: int = 0,
        chunks_retried: int = 0,
        failed: bool = False,
    ) -> None:
        """Fold one worker's result into this node's totals.

        The chunk counters come from the dynamic scheduler: how many chunks
        the worker pulled, how many of those a static split would have given
        to someone else (steals), and how many it re-executed after another
        worker was killed (retries).  Static runs use the defaults -- one
        "chunk" (the worker's range), nothing stolen or retried.

        A ``failed`` worker (killed by the failure-injection spec) still
        contributes its partial work to the node totals, but is excluded
        from the per-worker imbalance sample: it is no longer capacity, so
        its small calc time would deflate the mean and overstate the
        max/mean imbalance of the surviving crew.  Idle-but-alive workers
        *are* sampled -- an under-used processor is genuine imbalance.
        """
        self.cpu_seconds += cpu_seconds
        self.io_seconds += io_seconds
        self.calc_seconds = max(self.calc_seconds, cpu_seconds + io_seconds)
        self.triangles += triangles
        self.workers += 1
        self.chunks_completed += chunks_completed
        self.chunks_stolen += chunks_stolen
        self.chunks_retried += chunks_retried
        self.io_stats.merge(io_stats)
        if not failed:
            self.worker_calc_seconds.append(cpu_seconds + io_seconds)

    def total_seconds(self) -> float:
        """Copy time plus elapsed calculation time for this node."""
        return self.copy_seconds + self.calc_seconds

    def as_dict(self) -> dict[str, float]:
        return {
            "node": self.node_index,
            "cpu_seconds": self.cpu_seconds,
            "io_seconds": self.io_seconds,
            "calc_seconds": self.calc_seconds,
            "copy_seconds": self.copy_seconds,
            "bytes_received": self.bytes_received,
            "bytes_sent": self.bytes_sent,
            "triangles": self.triangles,
            "workers": self.workers,
            "chunks_completed": self.chunks_completed,
            "chunks_stolen": self.chunks_stolen,
            "chunks_retried": self.chunks_retried,
        }


@dataclass
class ClusterMetrics:
    """Cluster-wide roll-up of per-node metrics.

    ``setup_seconds`` / ``setup_io_stats`` isolate the master's
    *preprocessing* phase -- staging the input, orienting it and
    replicating the oriented graph -- as modelled device time and block
    counters on the master's disk.  They are charged identically whether
    the preprocessing ran serially or fanned out over the process pool
    (the accounting is below the execution strategy), which is exactly
    what the preprocessing equivalence suite asserts.
    """

    nodes: list[NodeMetrics] = field(default_factory=list)
    setup_seconds: float = 0.0
    setup_io_stats: IOStats = field(default_factory=IOStats)

    def node(self, index: int) -> NodeMetrics:
        """Return (creating if necessary) the metrics of node ``index``."""
        while len(self.nodes) <= index:
            self.nodes.append(NodeMetrics(node_index=len(self.nodes)))
        return self.nodes[index]

    @property
    def total_cpu_seconds(self) -> float:
        return sum(n.cpu_seconds for n in self.nodes)

    @property
    def total_io_seconds(self) -> float:
        return sum(n.io_seconds for n in self.nodes)

    @property
    def total_triangles(self) -> int:
        return sum(n.triangles for n in self.nodes)

    @property
    def calc_seconds(self) -> float:
        """Cluster calculation time: the slowest ("struggler") node's value."""
        return max((n.calc_seconds for n in self.nodes), default=0.0)

    @property
    def max_node_total_seconds(self) -> float:
        return max((n.total_seconds() for n in self.nodes), default=0.0)

    @property
    def total_network_bytes(self) -> int:
        return sum(n.bytes_received for n in self.nodes)

    @property
    def total_chunks_completed(self) -> int:
        return sum(n.chunks_completed for n in self.nodes)

    @property
    def total_chunks_stolen(self) -> int:
        return sum(n.chunks_stolen for n in self.nodes)

    @property
    def total_chunks_retried(self) -> int:
        return sum(n.chunks_retried for n in self.nodes)

    def average_copy_seconds(self, exclude_master: bool = True) -> float:
        """Average copy time over the non-master nodes (Table III convention)."""
        nodes = self.nodes[1:] if exclude_master and len(self.nodes) > 1 else self.nodes
        if not nodes:
            return 0.0
        return sum(n.copy_seconds for n in nodes) / len(nodes)

    def imbalance_ratio(self) -> float:
        """Max/min node calculation time, the skew measure of section V-D5.

        Returns 1.0 for perfectly balanced clusters; the paper quotes the
        discrepancy as a percentage (our 1.13 == their "13% difference").
        """
        times = [n.calc_seconds for n in self.nodes if n.workers > 0]
        if not times or min(times) == 0.0:
            return 1.0
        return max(times) / min(times)

    def worker_imbalance(self) -> float:
        """Max/mean *per-processor* calculation time across the whole cluster.

        This is the quantity dynamic chunk scheduling attacks: 1.0 means
        every processor finished at the same modelled instant; the paper's
        naive split reaches several × on skewed graphs because one
        struggler processor owns the hub vertices' intersections.
        """
        times = [t for n in self.nodes for t in n.worker_calc_seconds]
        if not times:
            return 1.0
        mean = sum(times) / len(times)
        if mean == 0.0:
            return 1.0
        return max(times) / mean

    def as_rows(self) -> list[dict[str, float]]:
        return [n.as_dict() for n in self.nodes]
