"""Simulated distributed substrate: machines, disks, network links, metrics.

The paper evaluates PDTL on Amazon EC2 instances and local clusters; this
reproduction replaces the physical cluster with a deterministic simulation
that preserves the quantities the evaluation reports:

* every :class:`~repro.cluster.machine.Machine` owns a block device (its
  local disk, since the paper stores a graph copy locally on every node),
  a core count and a per-core memory budget;
* the :class:`~repro.cluster.network.Network` models point-to-point links
  with bandwidth and latency, and accounts every byte the master ships to
  the clients -- the ``Θ(N·(P+|E|)+T)`` network-traffic bound of
  Theorem IV.3 is checked against these counters;
* :class:`~repro.cluster.metrics.NodeMetrics` accumulates per-node CPU
  seconds, I/O seconds and block counts, which regenerate the CPU-vs-I/O
  breakdowns of Figures 6-8 and Tables IV/VII;
* :mod:`~repro.cluster.executor` runs the per-core MGT jobs either
  serially (deterministic, used in tests), with a thread pool, or with a
  process pool (true parallelism for the wall-clock benchmarks).
"""

from repro.cluster.cluster import Cluster
from repro.cluster.executor import (
    ExecutionBackend,
    run_jobs,
    run_task_queue,
    shutdown_process_pool,
)
from repro.cluster.machine import Machine
from repro.cluster.metrics import ClusterMetrics, NodeMetrics
from repro.cluster.network import Network, NetworkLink

__all__ = [
    "Cluster",
    "Machine",
    "Network",
    "NetworkLink",
    "NodeMetrics",
    "ClusterMetrics",
    "ExecutionBackend",
    "run_jobs",
    "run_task_queue",
    "shutdown_process_pool",
]
