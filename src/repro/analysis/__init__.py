"""Analysis layer: the paper's complexity bounds and report formatting.

* :mod:`~repro.analysis.cost_model` evaluates the Theorem IV.2 (MGT) and
  Theorem IV.3 (PDTL) formulas for a concrete graph + configuration so that
  benchmarks can compare measured I/O / CPU / network counters against the
  predicted asymptotic envelope.
* :mod:`~repro.analysis.report` renders the benchmark results as aligned
  text tables in the same row/column layout as the paper's tables, plus the
  paper-vs-measured comparison rows EXPERIMENTS.md records.
"""

from repro.analysis.cost_model import (
    MGTCostEstimate,
    PDTLCostEstimate,
    estimate_mgt_cost,
    estimate_pdtl_cost,
)
from repro.analysis.report import format_seconds_cell, format_table, speedup_table

__all__ = [
    "MGTCostEstimate",
    "PDTLCostEstimate",
    "estimate_mgt_cost",
    "estimate_pdtl_cost",
    "format_table",
    "format_seconds_cell",
    "speedup_table",
]
