"""Analytic cost model: Theorems IV.2 and IV.3 evaluated for concrete inputs.

The theorems give asymptotic envelopes; this module evaluates the dominant
terms (without hidden constants) so that tests and benchmarks can check

* that the measured block-I/O counters of an MGT run scale like
  ``|E|²/(M·B) + T/B`` as ``M`` and ``B`` vary (the cost-model ablation
  benchmark), and
* that PDTL's measured network traffic matches ``Θ(N·(P+|E|) + T)``
  within small constant factors.

Everything is expressed in *elements* (int64 adjacency entries) rather than
bytes, mirroring the paper's convention of measuring ``M`` and ``B`` in
edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import PDTLConfig
from repro.externalmem.iostats import scan_io_cost
from repro.graph.binfmt import GraphFile
from repro.graph.csr import CSRGraph

__all__ = [
    "MGTCostEstimate",
    "PDTLCostEstimate",
    "SetupCostEstimate",
    "estimate_mgt_cost",
    "estimate_pdtl_cost",
    "estimate_setup_cost",
]


def _undirected_edge_count(graph: CSRGraph | GraphFile) -> int:
    """Number of undirected edges for either an in-memory or on-disk graph.

    For oriented graphs (in-memory or on-disk) each undirected edge is stored
    once, so the stored edge count is already |E|.
    """
    if graph.directed:
        return graph.num_edges
    if isinstance(graph, GraphFile):
        return graph.num_edges // 2
    return graph.num_undirected_edges


def _arboricity_bound(num_edges: int) -> int:
    """Theorem III.4(1): α ≤ ⌈√|E|⌉."""
    return int(math.ceil(math.sqrt(max(num_edges, 0))))


@dataclass(frozen=True)
class MGTCostEstimate:
    """Dominant-term estimates of Theorem IV.2 for one MGT execution.

    ``io_blocks`` estimates ``|E|²/(M·B) + T/B`` (scans of the graph once per
    memory window plus the output cost); ``cpu_operations`` estimates
    ``|E|²/M + α·|E|``; ``iterations`` is ``h = ⌈|E|/M⌉``, the number of
    memory windows.
    """

    num_edges: int
    memory_edges: int
    block_edges: int
    num_triangles: int
    iterations: int
    io_blocks: float
    cpu_operations: float
    arboricity_bound: int


@dataclass(frozen=True)
class PDTLCostEstimate:
    """Dominant-term estimates of Theorem IV.3 for a full PDTL run."""

    num_edges: int
    total_processors: int
    num_nodes: int
    memory_edges: int
    block_edges: int
    num_triangles: int
    network_traffic_elements: float
    cpu_operations: float
    io_blocks: float
    iterations_per_processor: int


@dataclass(frozen=True)
class SetupCostEstimate:
    """Dominant-term estimate of the master's preprocessing (setup) I/O.

    The setup phase -- staging the input graph, orienting it and serving
    the replication reads -- is a fixed number of sequential scans of the
    degree and adjacency files, so its block count is execution-strategy
    independent: fanning the orientation over the process pool charges
    exactly the same scans as the serial path (the preprocessing
    equivalence suite asserts the measured counters are bit-identical).
    This estimate gives the scan-cost envelope those counters must sit
    near, in the same no-hidden-constants spirit as the MGT and PDTL
    estimates above.
    """

    num_vertices: int
    adjacency_entries: int
    oriented_entries: int
    num_nodes: int
    stage_write_blocks: int
    orientation_read_blocks: int
    orientation_write_blocks: int
    replication_read_blocks: int

    @property
    def total_blocks(self) -> int:
        return (
            self.stage_write_blocks
            + self.orientation_read_blocks
            + self.orientation_write_blocks
            + self.replication_read_blocks
        )


def estimate_setup_cost(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig,
    oriented_entries: int | None = None,
) -> SetupCostEstimate:
    """Scan-cost envelope of the master's preprocessing for ``graph``.

    ``graph`` is the undirected input; ``oriented_entries`` defaults to
    half its stored adjacency entries (every undirected edge is kept
    exactly once by the orientation).  All quantities are sequential
    scans: staging writes the degree + adjacency files, orientation reads
    both and writes the oriented pair, and each of the ``N - 1`` remote
    nodes costs one replication read of the oriented pair on the master.
    """
    num_vertices, entries = graph.num_vertices, graph.num_edges
    if graph.directed:
        raise ValueError("estimate_setup_cost expects the undirected input graph")
    oriented = entries // 2 if oriented_entries is None else oriented_entries
    block = config.block_items
    graph_scan = scan_io_cost(num_vertices, block) + scan_io_cost(entries, block)
    oriented_scan = scan_io_cost(num_vertices, block) + scan_io_cost(oriented, block)
    return SetupCostEstimate(
        num_vertices=num_vertices,
        adjacency_entries=entries,
        oriented_entries=oriented,
        num_nodes=config.num_nodes,
        stage_write_blocks=graph_scan,
        orientation_read_blocks=graph_scan,
        orientation_write_blocks=oriented_scan,
        replication_read_blocks=(config.num_nodes - 1) * oriented_scan,
    )


def estimate_mgt_cost(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig,
    num_triangles: int = 0,
    count_only: bool = True,
) -> MGTCostEstimate:
    """Evaluate the Theorem IV.2 formulas for ``graph`` under ``config``.

    ``graph`` may be the undirected graph or its orientation; only its edge
    count, triangle count and arboricity bound enter the formulas.
    """
    num_edges = _undirected_edge_count(graph)
    memory_edges = config.window_edges
    block_edges = config.block_items
    output_triangles = 0 if count_only else num_triangles
    iterations = max(math.ceil(num_edges / memory_edges), 1) if num_edges else 0
    alpha = _arboricity_bound(num_edges)

    io_blocks = iterations * (num_edges / block_edges) + output_triangles / block_edges
    cpu_operations = iterations * num_edges + alpha * num_edges
    return MGTCostEstimate(
        num_edges=num_edges,
        memory_edges=memory_edges,
        block_edges=block_edges,
        num_triangles=num_triangles,
        iterations=iterations,
        io_blocks=io_blocks,
        cpu_operations=cpu_operations,
        arboricity_bound=alpha,
    )


def estimate_pdtl_cost(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig,
    num_triangles: int = 0,
) -> PDTLCostEstimate:
    """Evaluate the Theorem IV.3 formulas for ``graph`` under ``config``.

    Network traffic is in "elements" (adjacency entries / messages): the
    graph is shipped once to each of the ``N`` nodes, each of the ``N·P``
    processors receives a configuration message, and ``T`` triangles come
    back when listing (0 when counting, per the theorem's convention).
    """
    num_edges = _undirected_edge_count(graph)
    np_total = config.total_processors
    memory_edges = config.window_edges
    block_edges = config.block_items
    output_triangles = 0 if config.count_only else num_triangles
    alpha = _arboricity_bound(num_edges)

    network = config.num_nodes * (config.procs_per_node + num_edges) + output_triangles
    cpu = np_total * num_edges + (num_edges**2) / memory_edges + alpha * num_edges
    io = (
        np_total * (num_edges / block_edges)
        + (num_edges**2) / (memory_edges * block_edges)
        + output_triangles / block_edges
    )
    chunk = max(num_edges // max(np_total, 1), 1)
    iterations = max(math.ceil(chunk / memory_edges), 1) if num_edges else 0
    return PDTLCostEstimate(
        num_edges=num_edges,
        total_processors=np_total,
        num_nodes=config.num_nodes,
        memory_edges=memory_edges,
        block_edges=block_edges,
        num_triangles=num_triangles,
        network_traffic_elements=network,
        cpu_operations=cpu,
        io_blocks=io,
        iterations_per_processor=iterations,
    )
