"""Plain-text table formatting for the benchmark harness.

The benchmark modules print their results in the same row/column layout as
the paper's tables so that EXPERIMENTS.md can quote them directly.  Only
standard-library string formatting is used -- the output is meant for
terminals and text files, not notebooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.utils import format_seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis ← cluster)
    from repro.cluster.metrics import ClusterMetrics

__all__ = [
    "format_table",
    "format_seconds_cell",
    "speedup_table",
    "paper_vs_measured",
    "load_imbalance_table",
    "truss_summary_table",
    "counters_table",
    "telemetry_summary_table",
]


def format_seconds_cell(value: float | None) -> str:
    """Format a duration cell the way the paper does (``2m44.2s``), with ``-``
    for missing values and ``F`` for failures (out-of-memory)."""
    if value is None:
        return "-"
    if value == float("inf"):
        return "F"
    return format_seconds(value)


def _stringify(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned text table.

    Columns default to the union of all row keys in first-seen order (not
    just the first row's keys), so sparse rows -- e.g. counters that only
    some workers report -- still get a column.  Columns whose every present
    value is numeric are right-aligned.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    header = [str(c) for c in columns]
    body = [[_stringify(row.get(c)) for c in columns] for row in rows]
    numeric = [
        all(_is_numeric(row[c]) for row in rows if row.get(c) is not None)
        and any(c in row and row[c] is not None for row in rows)
        for c in columns
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(columns))
    ]

    def _align(cell: str, i: int) -> str:
        return cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(_align(h, i) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(_align(c, i) for i, c in enumerate(r)))
    return "\n".join(lines)


def speedup_table(
    baseline_seconds: Mapping[str, float],
    measured_seconds: Mapping[str, Mapping[str, float]],
    title: str | None = None,
) -> str:
    """Render speed-ups over a baseline (the Figure 10/11 layout).

    ``baseline_seconds`` maps graph name to the baseline's time;
    ``measured_seconds`` maps graph name to {configuration label: time}.
    """
    rows = []
    for graph, base in baseline_seconds.items():
        row: dict[str, object] = {"Graph": graph, "baseline": format_seconds_cell(base)}
        for label, value in measured_seconds.get(graph, {}).items():
            row[label] = f"{base / value:.1f}x" if value > 0 else "-"
        rows.append(row)
    return format_table(rows, title=title)


def paper_vs_measured(
    rows: Sequence[Mapping[str, object]],
    title: str | None = None,
) -> str:
    """Render paper-vs-measured comparison rows (used by EXPERIMENTS.md).

    Each row should contain at least ``experiment``, ``paper`` and
    ``measured`` keys; extra keys are kept as additional columns.
    """
    return format_table(rows, title=title)


def truss_summary_table(
    rows: Sequence[Mapping[str, object]], title: str | None = None
) -> str:
    """Render the k-truss decomposition summary (one row per truss level).

    ``rows`` come from :func:`repro.analytics.truss.truss_summary_rows`:
    for each ``k``, the number of edges peeled exactly at ``k`` and the
    size (edges, vertices) of the k-truss subgraph.
    """
    return format_table(
        rows,
        columns=["k", "edges_peeled_at_k", "truss_edges", "truss_vertices"],
        title=title,
    )


def counters_table(
    counters: Mapping[str, float],
    title: str | None = None,
    prefix: str | None = None,
) -> str:
    """Render a flat counter mapping as a two-column table.

    Derived hit rates (``<base>.hit_rate`` for every ``.hits``/``.misses``
    sibling pair -- the fd-cache and read-ahead counters in particular) are
    appended automatically so the summary table exposes them without the
    caller precomputing anything.  ``prefix`` filters to one namespace.
    """
    from repro.obs.metrics import derive_rates

    merged = dict(counters)
    merged.update(derive_rates(merged))
    rows = [
        {"counter": key, "value": round(value, 6) if isinstance(value, float) else value}
        for key, value in sorted(merged.items())
        if prefix is None or key.startswith(prefix)
    ]
    return format_table(rows, columns=["counter", "value"], title=title)


def telemetry_summary_table(telemetry, title: str | None = None) -> str:
    """Render a :class:`repro.obs.export.RunTelemetry` span rollup.

    One row per span category (phase/chunk/kernel/host/analytics) with the
    span count and summed wall-clock seconds, preceded by the run shape.
    """
    rows: list[dict[str, object]] = [
        {
            "category": "run",
            "spans": len(telemetry.events),
            "wall_seconds": None,
            "detail": (
                f"backend={telemetry.backend} scheduling={telemetry.scheduling} "
                f"workers={telemetry.num_workers}"
            ),
        }
    ]
    for row in telemetry.summary_rows():
        rows.append(
            {
                "category": row["category"],
                "spans": row["spans"],
                "wall_seconds": round(float(row["wall_seconds"]), 6),
                "detail": None,
            }
        )
    return format_table(
        rows, columns=["category", "spans", "wall_seconds", "detail"], title=title
    )


def load_imbalance_table(metrics: "ClusterMetrics", title: str | None = None) -> str:
    """Per-node chunk-scheduling breakdown plus the cluster imbalance row.

    One row per node with its worker count, pulled/stolen/re-executed chunk
    counters (all zero for static runs) and elapsed calculation time, then a
    cluster summary row carrying the max/mean per-processor calc-time
    imbalance -- the Figure 9 quantity the dynamic scheduler equalises.
    """
    rows: list[dict[str, object]] = []
    for node in metrics.nodes:
        rows.append(
            {
                "node": node.node_index,
                "workers": node.workers,
                "chunks": node.chunks_completed,
                "stolen": node.chunks_stolen,
                "retried": node.chunks_retried,
                "calc": format_seconds_cell(node.calc_seconds),
            }
        )
    rows.append(
        {
            "node": "cluster",
            "workers": sum(n.workers for n in metrics.nodes),
            "chunks": metrics.total_chunks_completed,
            "stolen": metrics.total_chunks_stolen,
            "retried": metrics.total_chunks_retried,
            "calc": f"imbalance {metrics.worker_imbalance():.2f}x",
        }
    )
    return format_table(
        rows, columns=["node", "workers", "chunks", "stolen", "retried", "calc"],
        title=title,
    )
