"""Unified run observability: span tracer, metrics registry, exporters.

Everything here sits strictly *outside* the analytic accounting layer:
enabling tracing never changes modelled times, ``IOStats``, or triangle
counts, and the disabled path (:data:`NULL_TRACER`) records nothing and
allocates nothing.
"""

from repro.obs.export import ChunkSpan, RunTelemetry, WorkerTrack
from repro.obs.logconfig import (
    PDTL_LOG_ENV,
    enable_logging,
    fallback_message,
    get_logger,
    warn_fallback,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_delta,
    derive_rates,
    snapshot_process_counters,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    as_tracer,
)

__all__ = [
    "ChunkSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PDTL_LOG_ENV",
    "RunTelemetry",
    "SpanEvent",
    "Tracer",
    "WorkerTrack",
    "as_tracer",
    "counter_delta",
    "derive_rates",
    "enable_logging",
    "fallback_message",
    "get_logger",
    "snapshot_process_counters",
    "warn_fallback",
]
