"""Hierarchical span tracer with a hard zero-overhead no-op path.

The tracer records *where wall time goes* inside a PDTL run: master phases
(staging, orientation, replication, scheduling), per-chunk triangle scans,
and per-window kernel invocations.  It is deliberately kept outside the
analytic accounting layer -- recording a span never touches ``IOStats``,
modelled clocks, or triangle counts, so traced and untraced runs stay
bit-identical in every accounted quantity.

Design points:

* One ``Tracer`` instance per execution context (the master thread, or one
  per :class:`~repro.core.scheduler.ChunkTask`).  Contexts never share a
  tracer, so no locking is needed and event buffers are append-only.
* Events carry a monotonically increasing ``seq`` assigned at span *entry*;
  buffers are sorted by ``seq`` on export, which makes the merged event
  order deterministic (enter order) even though events are appended on
  span *exit*.
* :data:`NULL_TRACER` is a module-level singleton whose ``span()`` returns
  one shared, pre-allocated null span.  Tracing disabled therefore costs a
  single attribute lookup and method call per span site -- no allocations,
  no event storage.
* ``SpanEvent`` is a frozen dataclass of plain scalars/tuples so chunk
  events can ride back to the master through pickled ``ChunkOutcome``s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanEvent:
    """One completed span (or instant marker) on a single track.

    ``start`` is a ``time.perf_counter()`` reading; exporters rebase it
    against the earliest event so absolute epoch does not matter.
    ``args`` is a tuple of ``(key, value)`` pairs rather than a dict so the
    event is hashable and its pickled form is deterministic.
    """

    seq: int
    name: str
    cat: str
    start: float
    duration: float
    depth: int
    track: str
    args: tuple[tuple[str, object], ...] = ()

    @property
    def args_dict(self) -> dict[str, object]:
        return dict(self.args)

    def retrack(self, track: str) -> "SpanEvent":
        """Copy of this event re-homed onto another track."""
        return SpanEvent(
            seq=self.seq,
            name=self.name,
            cat=self.cat,
            start=self.start,
            duration=self.duration,
            depth=self.depth,
            track=track,
            args=self.args,
        )


class Span:
    """An open span; close it with :meth:`end` or use it as a context manager."""

    __slots__ = ("_tracer", "name", "cat", "seq", "depth", "start", "_args", "_open")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.seq = tracer._next_seq()
        self.depth = tracer._depth
        self._args = args
        self._open = True
        self.start = tracer.clock()

    def annotate(self, **args: object) -> "Span":
        """Attach extra key/value payload to the span while it is open."""
        if self._open:
            self._args.update(args)
        return self

    def end(self, **args: object) -> None:
        if not self._open:
            return
        self._open = False
        if args:
            self._args.update(args)
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.end()


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    def annotate(self, **args: object) -> "_NullSpan":
        return self

    def end(self, **args: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`SpanEvent`s for one track (one execution context)."""

    enabled = True

    __slots__ = ("track", "clock", "_events", "_seq", "_depth")

    def __init__(self, track: str = "master", clock=time.perf_counter):
        self.track = track
        self.clock = clock
        self._events: list[SpanEvent] = []
        self._seq = 0
        self._depth = 0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def span(self, name: str, cat: str = "phase", **args: object) -> Span:
        span = Span(self, name, cat, args)
        self._depth += 1
        return span

    def instant(self, name: str, cat: str = "instant", **args: object) -> None:
        """Record a zero-duration marker event."""
        now = self.clock()
        self._events.append(
            SpanEvent(
                seq=self._next_seq(),
                name=name,
                cat=cat,
                start=now,
                duration=0.0,
                depth=self._depth,
                track=self.track,
                args=tuple(sorted(args.items())),
            )
        )

    def _finish(self, span: Span) -> None:
        self._depth -= 1
        self._events.append(
            SpanEvent(
                seq=span.seq,
                name=span.name,
                cat=span.cat,
                start=span.start,
                duration=self.clock() - span.start,
                depth=span.depth,
                track=self.track,
                args=tuple(sorted(span._args.items())),
            )
        )

    @property
    def events(self) -> tuple[SpanEvent, ...]:
        """Completed events in deterministic (enter-order) sequence."""
        return tuple(sorted(self._events, key=lambda e: e.seq))


class NullTracer:
    """Zero-overhead tracer used when tracing is disabled.

    ``span()``/``instant()`` allocate nothing: every call hands back the one
    module-level :data:`_NULL_SPAN`.
    """

    enabled = False

    __slots__ = ()

    track = "null"

    def span(self, name: str, cat: str = "phase", **args: object) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "instant", **args: object) -> None:
        return None

    @property
    def events(self) -> tuple[SpanEvent, ...]:
        return ()


NULL_TRACER = NullTracer()


def as_tracer(trace: bool, track: str = "master") -> "Tracer | NullTracer":
    """Return a live :class:`Tracer` when ``trace`` else the shared null tracer."""
    return Tracer(track=track) if trace else NULL_TRACER
