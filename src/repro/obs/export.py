"""Run telemetry container and Chrome trace-event exporters.

:class:`RunTelemetry` is the machine-readable summary attached to
``PDTLResult.telemetry`` for traced runs.  It carries the merged span
events (master + every chunk), the flat counter namespace assembled by the
runner, and the modelled per-worker timeline reconstructed from the
scheduler's deterministic replay.

Two Chrome trace variants are exported (both load in Perfetto /
``chrome://tracing``):

* ``wall`` -- measured ``perf_counter`` spans, one track per worker (chunk
  spans are homed onto the worker that owned the chunk in the modelled
  schedule) plus a master track.
* ``modelled`` -- the paper-model timeline: each worker's chunks laid out
  at their modelled start/duration, plus master phase spans sized by the
  per-phase modelled device seconds.

All timestamps are microseconds as the trace-event format requires; wall
events are rebased to the earliest event so the trace starts at ts=0.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import derive_rates
from repro.obs.tracer import SpanEvent

_US = 1_000_000.0


@dataclass(frozen=True)
class ChunkSpan:
    """One chunk's placement on a worker's modelled timeline."""

    index: int
    start: float
    duration: float
    edges: int = 0
    triangles: int = 0


@dataclass
class WorkerTrack:
    """Modelled timeline of one worker (node, proc) pair."""

    worker: int
    node: int
    proc: int
    spans: list[ChunkSpan] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        return sum(span.duration for span in self.spans)

    @property
    def finish_time(self) -> float:
        return max((s.start + s.duration for s in self.spans), default=0.0)


@dataclass
class RunTelemetry:
    """Structured telemetry for one traced PDTL run."""

    backend: str
    scheduling: str
    num_workers: int
    procs_per_node: int
    events: list[SpanEvent] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    worker_tracks: list[WorkerTrack] = field(default_factory=list)
    chunk_owners: dict[int, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    # -- assembly ---------------------------------------------------------

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        cat: str = "phase",
        track: str = "master",
        **args: object,
    ) -> SpanEvent:
        """Append a post-run span (used by the analytics pipeline)."""
        event = SpanEvent(
            seq=len(self.events),
            name=name,
            cat=cat,
            start=start,
            duration=duration,
            depth=0,
            track=track,
            args=tuple(sorted(args.items())),
        )
        self.events.append(event)
        return event

    def record_counter(self, name: str, value: float) -> None:
        """Accumulate a post-run counter (used by the analytics delta path).

        Counters are additive across calls, matching the metrics-registry
        convention, so repeated batches sum (``delta.touched_edges`` over a
        chain of deltas is the chain total).
        """
        self.counters[name] = self.counters.get(name, 0) + value

    # -- derived views ----------------------------------------------------

    def counters_with_rates(self) -> dict[str, float]:
        merged = dict(self.counters)
        merged.update(derive_rates(self.counters))
        return dict(sorted(merged.items()))

    def event_order(self) -> list[tuple[str, str, str]]:
        """Deterministic ``(track, cat, name)`` sequence of all events.

        Master events first (by seq), then each chunk track in chunk-index
        order; this is the ordering invariant the equivalence tests pin
        across backends and injection modes.
        """

        def sort_key(event: SpanEvent):
            track = event.track
            if track.startswith("chunk"):
                try:
                    rank = (1, int(track[len("chunk"):]))
                except ValueError:
                    rank = (2, 0)
            elif track == "master":
                rank = (0, 0)
            else:
                rank = (3, 0)
            return (*rank, track, event.seq)

        return [
            (e.track, e.cat, e.name) for e in sorted(self.events, key=sort_key)
        ]

    def summary_rows(self) -> list[dict[str, object]]:
        """Compact per-category rollup for ``analysis/report.py``."""
        by_cat: dict[str, tuple[int, float]] = {}
        for event in self.events:
            count, seconds = by_cat.get(event.cat, (0, 0.0))
            by_cat[event.cat] = (count + 1, seconds + event.duration)
        rows = [
            {
                "category": cat,
                "spans": count,
                "wall_seconds": round(seconds, 6),
            }
            for cat, (count, seconds) in sorted(by_cat.items())
        ]
        return rows

    # -- chrome trace export ---------------------------------------------

    def _worker_label(self, worker: int) -> tuple[int, int, str]:
        """(pid, tid, thread name) for a modelled worker index."""
        per_node = max(1, self.procs_per_node)
        node, proc = divmod(worker, per_node)
        return node, proc + 1, f"worker {worker} (n{node}p{proc})"

    def _track_location(self, track: str) -> tuple[int, int, str]:
        if track.startswith("chunk"):
            try:
                chunk = int(track[len("chunk"):])
            except ValueError:
                chunk = -1
            owner = self.chunk_owners.get(chunk)
            if owner is not None:
                return self._worker_label(owner)
        if track == "master" or track == "analytics":
            return 0, 0, "master"
        return 0, 0, track

    def chrome_trace(self, variant: str = "wall") -> dict[str, object]:
        """Trace-event JSON object (``{"traceEvents": [...]}``)."""
        if variant == "wall":
            trace_events = self._wall_events()
        elif variant == "modelled":
            trace_events = self._modelled_events()
        else:
            raise ValueError(
                f"unknown trace variant {variant!r}; expected 'wall' or 'modelled'"
            )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "variant": variant,
                "backend": self.backend,
                "scheduling": self.scheduling,
                "num_workers": self.num_workers,
            },
        }

    def _metadata_events(
        self, locations: dict[tuple[int, int], str]
    ) -> list[dict[str, object]]:
        meta: list[dict[str, object]] = []
        nodes = sorted({pid for pid, _ in locations})
        for pid in nodes:
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": "master" if pid == 0 else f"node {pid}"},
                }
            )
        for (pid, tid), label in sorted(locations.items()):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return meta

    def _wall_events(self) -> list[dict[str, object]]:
        if not self.events:
            return []
        base = min(event.start for event in self.events)
        locations: dict[tuple[int, int], str] = {}
        body: list[dict[str, object]] = []
        for event in sorted(self.events, key=lambda e: (e.track, e.seq)):
            pid, tid, label = self._track_location(event.track)
            locations[(pid, tid)] = label
            body.append(
                {
                    "name": event.name,
                    "cat": event.cat,
                    "ph": "X",
                    "ts": (event.start - base) * _US,
                    "dur": event.duration * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": event.args_dict,
                }
            )
        return self._metadata_events(locations) + body

    def _modelled_events(self) -> list[dict[str, object]]:
        locations: dict[tuple[int, int], str] = {(0, 0): "master"}
        body: list[dict[str, object]] = []
        cursor = 0.0
        for phase, seconds in self.phase_seconds.items():
            body.append(
                {
                    "name": phase,
                    "cat": "phase",
                    "ph": "X",
                    "ts": cursor * _US,
                    "dur": seconds * _US,
                    "pid": 0,
                    "tid": 0,
                    "args": {"modelled_seconds": seconds},
                }
            )
            cursor += seconds
        scan_base = cursor
        for track in self.worker_tracks:
            pid, tid, label = self._worker_label(track.worker)
            locations[(pid, tid)] = label
            for span in track.spans:
                body.append(
                    {
                        "name": f"chunk {span.index}",
                        "cat": "chunk",
                        "ph": "X",
                        "ts": (scan_base + span.start) * _US,
                        "dur": span.duration * _US,
                        "pid": pid,
                        "tid": tid,
                        "args": {
                            "chunk": span.index,
                            "edges": span.edges,
                            "triangles": span.triangles,
                            "modelled_seconds": span.duration,
                        },
                    }
                )
        return self._metadata_events(locations) + body

    def write_chrome_trace(self, path, variant: str = "wall") -> Path:
        """Serialize :meth:`chrome_trace` to ``path``; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.chrome_trace(variant), indent=1, sort_keys=True)
        )
        return target
