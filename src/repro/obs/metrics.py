"""Metrics registry: named counters/gauges/histograms for one PDTL run.

The registry unifies the engine's previously scattered signals -- per-phase
``IOStats`` deltas, fd-cache and read-ahead hit/miss counts from
``externalmem/blockio.py``, shm attach-cache hits from ``core/shm.py``,
scheduler queue depths and steal/re-enqueue counts, ``EdgeSupportSink``
spill events, and per-kernel dispatch counts from
``core/kernel_backend.py`` -- under one flat, dotted namespace.

Conventions:

* Counters are monotone sums (``worker.blockio.fd_cache.hits``); gauges are
  point-in-time values (``scheduler.max_queue_depth``); histograms track
  count/sum/min/max of observations (``scheduler.queue_depth``).
* ``<base>.hits`` / ``<base>.misses`` counter pairs get a derived
  ``<base>.hit_rate`` from :func:`derive_rates`.
* Process-global sources (shm attach cache, kernel dispatch) are harvested
  via before/after snapshots (:func:`snapshot_process_counters` +
  :func:`counter_delta`) so worker processes can ship deltas back to the
  master inside pickled ``ChunkOutcome``s.

Nothing in this module imports ``repro.core`` at module level; the snapshot
helper imports lazily inside the function body to keep the dependency
direction core -> obs.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class Counter:
    """Monotone additive metric."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_items(self) -> list[tuple[str, float]]:
        return [(self.name, self.value)]


class Gauge:
    """Last-write-wins point-in-time metric."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def as_items(self) -> list[tuple[str, float]]:
        return [(self.name, self.value)]


class Histogram:
    """Count/sum/min/max summary of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)

    def as_items(self) -> list[tuple[str, float]]:
        items = [
            (f"{self.name}.count", self.count),
            (f"{self.name}.sum", self.total),
            (f"{self.name}.mean", self.mean),
        ]
        if self.min is not None:
            items.append((f"{self.name}.min", self.min))
        if self.max is not None:
            items.append((f"{self.name}.max", self.max))
        return items


class MetricsRegistry:
    """Ordered collection of named metrics with get-or-create accessors."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def add_counts(self, counts: Mapping[str, float], prefix: str = "") -> None:
        """Bulk-add a flat mapping of additive counts under ``prefix``."""
        for key in sorted(counts):
            self.inc(f"{prefix}{key}" if prefix else key, counts[key])

    def add_iostats(self, prefix: str, stats) -> None:
        """Fold an ``IOStats``-like object (``as_dict()``) into counters."""
        for key, value in sorted(stats.as_dict().items()):
            if key == "block_size":
                continue
            self.inc(f"{prefix}.{key}", value)

    def observe_each(self, name: str, values: Iterable[float]) -> None:
        histogram = self.histogram(name)
        for value in values:
            histogram.observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        for name, metric in other._metrics.items():
            mine = self._get(name, type(metric))
            mine.merge(metric)

    def as_dict(self) -> dict[str, float]:
        """Flat ``{name: value}`` view, sorted by metric name."""
        items: list[tuple[str, float]] = []
        for metric in self._metrics.values():
            items.extend(metric.as_items())
        return dict(sorted(items))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


def derive_rates(counters: Mapping[str, float]) -> dict[str, float]:
    """Derive ``<base>.hit_rate`` for every ``.hits``/``.misses`` pair.

    Works on any flat counter mapping; pairs with zero total are skipped so
    a rate is only reported when the cache was actually exercised.
    """
    rates: dict[str, float] = {}
    for key, hits in counters.items():
        if not key.endswith(".hits"):
            continue
        base = key[: -len(".hits")]
        misses = counters.get(f"{base}.misses")
        if misses is None:
            continue
        total = hits + misses
        if total > 0:
            rates[f"{base}.hit_rate"] = hits / total
    return rates


def snapshot_process_counters() -> dict[str, float]:
    """Snapshot the process-global caches instrumented by this package.

    Covers the shm attach cache and the compiled-kernel dispatch counts.
    Call once before and once after a unit of work, then diff with
    :func:`counter_delta`, to attribute increments to that unit.  Inside a
    pool worker (single-threaded, tasks run sequentially) the delta is
    exact; the master-side run-level delta is exact for the serial and
    threads backends where everything shares one process.
    """
    from repro.core import kernel_backend, shm

    counters: dict[str, float] = {}
    attach = shm.attach_cache_stats()
    counters["shm.attach_cache.hits"] = attach["hits"]
    counters["shm.attach_cache.misses"] = attach["misses"]
    for key, value in kernel_backend.dispatch_counts().items():
        counters[f"kernel.dispatch.{key}"] = value
    return counters


def counter_delta(
    after: Mapping[str, float], before: Mapping[str, float]
) -> dict[str, float]:
    """Non-zero differences ``after - before``, keyed like ``after``."""
    delta: dict[str, float] = {}
    for key, value in after.items():
        diff = value - before.get(key, 0)
        if diff:
            delta[key] = diff
    return delta
