"""Structured logging for the ``repro`` package and shared fallback prose.

``enable_logging()`` attaches one stream handler to the ``repro`` root
logger; per-module loggers (``repro.core.pdtl``, ``repro.externalmem...``)
inherit from it, so callers tune verbosity in one place.  The level comes
from the explicit argument or the ``PDTL_LOG_LEVEL`` environment variable.

The engine degrades gracefully in several places (no /dev/shm mount, no
compiled kernel tier, pickling-hostile graph sources).  Every such site
previously built its own ``RuntimeWarning`` prose; they now share
:func:`fallback_message` / :func:`warn_fallback` so the wording stays
uniform: ``"<feature> requested but <reason>; falling back to <fallback>"``.
"""

from __future__ import annotations

import logging
import os
import warnings

PDTL_LOG_ENV = "PDTL_LOG_LEVEL"
DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_ROOT_NAME = "repro"
_HANDLER_TAG = "_pdtl_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``get_logger("core.pdtl")``)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def _resolve_level(level: "int | str | None") -> int:
    if level is None:
        level = os.environ.get(PDTL_LOG_ENV, "INFO")
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def enable_logging(
    level: "int | str | None" = None,
    stream=None,
    fmt: "str | None" = None,
) -> logging.Logger:
    """Configure package-wide logging and return the ``repro`` root logger.

    Idempotent: repeated calls reuse the handler installed by the first call
    (updating its level/stream/format) instead of stacking duplicates.
    ``level`` defaults to the ``PDTL_LOG_LEVEL`` environment variable, then
    ``INFO``.
    """
    root = get_logger()
    root.setLevel(_resolve_level(level))
    handler = next(
        (h for h in root.handlers if getattr(h, _HANDLER_TAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream)
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setFormatter(logging.Formatter(fmt or DEFAULT_FORMAT))
    return root


def logging_enabled() -> bool:
    """True once :func:`enable_logging` has installed the package handler."""
    return any(
        getattr(h, _HANDLER_TAG, False) for h in get_logger().handlers
    )


def fallback_message(feature: str, reason: str, fallback: str) -> str:
    """The one shared prose template for graceful-degradation warnings."""
    return f"{feature} requested but {reason}; falling back to {fallback}"


def warn_fallback(
    feature: str,
    reason: str,
    fallback: str,
    *,
    logger: "logging.Logger | None" = None,
    stacklevel: int = 3,
) -> str:
    """Emit the shared fallback message as a ``RuntimeWarning`` (and log it).

    The log record is only emitted when package logging has been enabled, so
    library users who never call :func:`enable_logging` see exactly the same
    single ``RuntimeWarning`` as before this helper existed.
    """
    message = fallback_message(feature, reason, fallback)
    if logging_enabled():
        (logger or get_logger("fallback")).warning(message)
    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)
    return message
