"""Triangle-consumer analytics layered on the PDTL engine.

The engine below this package *produces* a triangle stream; this package
*consumes* it.  One PDTL run with the ``edge-support`` sink yields the
per-edge triangle supports, and every heavier metric the paper's
introduction names -- clustering coefficients, the transitivity ratio,
truss decomposition -- derives from them:

``truss``
    vectorised k-truss peeling over edge supports
    (:func:`~repro.analytics.truss.truss_decomposition`), with a pinned
    scalar reference for the property tests.
``delta``
    the dynamic-graph mutation path: :class:`~repro.analytics.delta.GraphDelta`
    batches of edge insertions/deletions applied with touched-edge support
    deltas and a truncated peel replay, the full recompute pinned as the
    equality oracle.
``pipeline``
    the one-call :func:`~repro.analytics.pipeline.run_analytics` driver
    fanning a single run into supports, per-vertex counts, clustering,
    transitivity and trussness, plus figure-style report tables (and
    optional ``deltas=`` mutation batches on top of the base run).
"""

from repro.analytics.delta import DeltaResult, GraphDelta
from repro.analytics.pipeline import AnalyticsResult, run_analytics
from repro.analytics.truss import (
    TrussResult,
    canonical_edges,
    truss_decomposition,
    trussness_reference,
    truss_summary_rows,
    undirected_edge_supports,
)

__all__ = [
    "AnalyticsResult",
    "run_analytics",
    "DeltaResult",
    "GraphDelta",
    "TrussResult",
    "canonical_edges",
    "truss_decomposition",
    "trussness_reference",
    "truss_summary_rows",
    "undirected_edge_supports",
]
