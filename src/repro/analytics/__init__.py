"""Triangle-consumer analytics layered on the PDTL engine.

The engine below this package *produces* a triangle stream; this package
*consumes* it.  One PDTL run with the ``edge-support`` sink yields the
per-edge triangle supports, and every heavier metric the paper's
introduction names -- clustering coefficients, the transitivity ratio,
truss decomposition -- derives from them:

``truss``
    vectorised k-truss peeling over edge supports
    (:func:`~repro.analytics.truss.truss_decomposition`), with a pinned
    scalar reference for the property tests.
``pipeline``
    the one-call :func:`~repro.analytics.pipeline.run_analytics` driver
    fanning a single run into supports, per-vertex counts, clustering,
    transitivity and trussness, plus figure-style report tables.
"""

from repro.analytics.pipeline import AnalyticsResult, run_analytics
from repro.analytics.truss import (
    TrussResult,
    canonical_edges,
    truss_decomposition,
    trussness_reference,
    truss_summary_rows,
    undirected_edge_supports,
)

__all__ = [
    "AnalyticsResult",
    "run_analytics",
    "TrussResult",
    "canonical_edges",
    "truss_decomposition",
    "trussness_reference",
    "truss_summary_rows",
    "undirected_edge_supports",
]
