"""k-truss decomposition over per-edge triangle supports.

The paper motivates triangle listing as the building block of heavier
analytics, truss decomposition among them: the *k-truss* of a graph
(Cohen 2008) is the maximal subgraph in which every edge participates in
at least ``k - 2`` triangles *of the subgraph*, and the *trussness* of an
edge is the largest ``k`` whose k-truss contains it.  Computing it is a
peeling process over exactly the per-edge supports the
:class:`~repro.core.triangles.EdgeSupportSink` accumulates from the PDTL
triangle stream.

Two implementations live here:

* :func:`truss_decomposition` -- the vectorised peeler.  The triangles are
  enumerated **once** with the shared MGT counting kernel
  (:func:`~repro.core.kernels.triangle_range` over the degree-based
  orientation), each triangle's three edges are mapped to canonical edge
  ids with one packed-key binary search, and an edge→triangle incidence
  CSR is built with one stable argsort.  Peeling then never searches
  again: every batch gathers the peeled edges' incident triangle ids with
  one :func:`~repro.core.kernels.segment_gather`, kills each still-alive
  triangle exactly once (``np.unique``), and applies the support
  decrements to the surviving edges with one ``np.subtract.at`` -- no
  per-edge Python loops anywhere.
* :func:`trussness_reference` -- a deliberately simple scalar
  implementation (sets, dicts, one edge at a time) kept as the pinned
  reference for the property tests and the perf benchmark.  Trussness is a
  pure function of the graph (independent of peel order), so the two must
  agree exactly.

Both operate on the *canonical undirected edge list*: every edge once as
``(u, v)`` with ``u < v``, sorted lexicographically -- which is exactly the
storage order of the undirected CSR adjacency restricted to ``u < v``
entries, so canonical edge ids are stable across every layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.graph.csr import CSRGraph

__all__ = [
    "TrussResult",
    "canonical_edges",
    "undirected_edge_supports",
    "truss_decomposition",
    "trussness_reference",
    "truss_summary_rows",
]

#: Bound on gathered adjacency entries per support batch, mirroring
#: :data:`repro.core.kernels.DEFAULT_BATCH_ENTRIES`'s cache rationale.
_SUPPORT_BATCH_EDGES = 65536


def canonical_edges(graph: CSRGraph) -> np.ndarray:
    """Every undirected edge once as ``(u, v)``, ``u < v``, lexicographically
    sorted (the canonical edge-id order shared by supports and trussness)."""
    if graph.directed:
        raise ValueError("canonical_edges expects the undirected CSR graph")
    edges = graph.edge_array()
    return edges[edges[:, 0] < edges[:, 1]]


def undirected_edge_supports(
    graph: CSRGraph,
    edges: np.ndarray | None = None,
    batch_edges: int = _SUPPORT_BATCH_EDGES,
) -> np.ndarray:
    """``|N(u) ∩ N(v)|`` for every canonical edge -- its triangle support.

    Evaluated with the shared intersection kernel
    (:func:`repro.core.kernels.edge_intersections`) in bounded batches.
    This is the standalone path; the analytics pipeline instead reuses the
    supports the PDTL run already accumulated.
    """
    if edges is None:
        edges = canonical_edges(graph)
    supports = np.zeros(edges.shape[0], dtype=np.int64)
    csr_keys = kernels.csr_packed_keys(graph.indptr, graph.indices)
    for lo in range(0, edges.shape[0], batch_edges):
        hi = min(lo + batch_edges, edges.shape[0])
        supports[lo:hi] = kernels.edge_intersections(
            graph.indptr,
            graph.indices,
            edges[lo:hi, 0],
            edges[lo:hi, 1],
            csr_keys=csr_keys,
            per_edge=True,
        )
    return supports


@dataclass
class TrussResult:
    """Edge trussness plus everything the report tables need.

    ``edges`` are the canonical undirected edges, ``trussness[i]`` the
    largest ``k`` whose k-truss contains ``edges[i]`` (``>= 2`` for every
    edge of a simple graph), ``support`` the *initial* per-edge supports
    the peeling started from, ``rounds`` the number of peel batches.
    ``tri_edges`` is the ``(T, 3)`` canonical-edge-id triangle table the
    peeling enumerated, retained only under
    ``truss_decomposition(..., keep_triangles=True)`` -- the state the
    dynamic-graph delta path (:mod:`repro.analytics.delta`) updates
    incrementally instead of re-enumerating.
    """

    num_vertices: int
    edges: np.ndarray
    trussness: np.ndarray
    support: np.ndarray
    rounds: int
    tri_edges: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def max_k(self) -> int:
        """The largest ``k`` with a non-empty k-truss, or ``0`` when the
        graph has no edges (every k-truss is empty, so no ``k`` qualifies --
        previously this returned the misleading sentinel ``2``)."""
        if self.trussness.shape[0] == 0:
            return 0
        return int(self.trussness.max())

    def truss_edge_mask(self, k: int) -> np.ndarray:
        """Boolean mask over canonical edges of the k-truss."""
        return self.trussness >= k

    def truss_subgraph(self, k: int) -> CSRGraph:
        """The k-truss as an undirected CSR graph on the original vertex ids."""
        from repro.graph.edgelist import EdgeList

        kept = self.edges[self.truss_edge_mask(k)]
        return CSRGraph.from_edgelist(EdgeList(kept, self.num_vertices))

    def summary_rows(self) -> list[dict[str, object]]:
        return truss_summary_rows(self.edges, self.trussness)


def truss_summary_rows(
    edges: np.ndarray, trussness: np.ndarray
) -> list[dict[str, object]]:
    """One row per truss level: edges peeled at ``k``, edges and vertices of
    the k-truss (the figure-style table
    :func:`repro.analysis.report.truss_summary_table` renders)."""
    rows: list[dict[str, object]] = []
    if trussness.shape[0] == 0:
        return rows
    max_k = int(trussness.max())
    for k in range(2, max_k + 1):
        mask = trussness >= k
        kept = edges[mask]
        vertices = np.unique(kept) if kept.shape[0] else np.empty(0, dtype=np.int64)
        rows.append(
            {
                "k": k,
                "edges_peeled_at_k": int(np.count_nonzero(trussness == k)),
                "truss_edges": int(np.count_nonzero(mask)),
                "truss_vertices": int(vertices.shape[0]),
            }
        )
    return rows


def _triangle_edge_ids(graph: CSRGraph, keys: np.ndarray) -> np.ndarray:
    """Every triangle as its three canonical edge ids, shape ``(T, 3)``.

    Enumerated with the shared MGT counting kernel over the degree-based
    orientation (bounded out-degrees, so the gather volume obeys the
    arboricity bound of Theorem III.4), then mapped to canonical ids with
    one packed-key binary search per edge slot (fused into a single
    compiled loop when the kernel tier provides one).
    """
    from repro.core import kernel_backend
    from repro.core.orientation import orient_csr

    oriented = orient_csr(graph)
    n = graph.num_vertices
    fused_ids = kernel_backend.fused("triangle_edge_ids")
    if n > kernels.MAX_PACKABLE_VERTICES:
        fused_ids = None  # let the numpy packed_keys path raise its PDTLError
    if fused_ids is not None:
        # per-source-vertex slices of the sorted key array confine each
        # fused lookup to its row instead of the whole edge list; one call
        # covers every vertex (the numpy batching below only bounds peak
        # gather memory, which the fused loop never materialises)
        row_start = np.searchsorted(keys, np.arange(n + 1, dtype=np.int64) * n)
        return fused_ids(oriented.indptr, oriented.indices, keys, row_start, n, 0, n)
    parts: list[np.ndarray] = []
    for blo, bhi in kernels.iter_vertex_batches(oriented.indptr, 0, n):
        cones, vs, ws, _ = kernels.triangle_range(
            oriented.indptr, oriented.indices, blo, bhi, want_triples=True
        )
        if cones.shape[0] == 0:
            continue
        tri = np.empty((cones.shape[0], 3), dtype=np.int64)
        for slot, (a, b) in enumerate(((cones, vs), (cones, ws), (vs, ws))):
            queries = kernels.packed_keys(np.minimum(a, b), np.maximum(a, b), n)
            tri[:, slot] = np.searchsorted(keys, queries)
        parts.append(tri)
    if not parts:
        return np.empty((0, 3), dtype=np.int64)
    return np.concatenate(parts)


def truss_decomposition(
    graph: CSRGraph,
    supports: np.ndarray | None = None,
    edges: np.ndarray | None = None,
    keep_triangles: bool = False,
) -> TrussResult:
    """Vectorised k-truss peeling of an undirected CSR graph.

    Parameters
    ----------
    graph:
        the undirected graph (bidirectional CSR storage).
    supports:
        per-canonical-edge triangle supports to start from -- typically the
        merged output of a PDTL ``edge-support`` run.  The decomposition
        cross-checks them against its own triangle enumeration (they are
        the same integer quantity, so any mismatch means corrupt input and
        raises).
    edges:
        the canonical edge array the supports are aligned with; derived
        from ``graph`` when omitted.
    keep_triangles:
        retain the ``(T, 3)`` triangle table on the result
        (``TrussResult.tri_edges``) so the dynamic-graph delta path can
        update it incrementally instead of re-enumerating.

    Algorithm: classic support peeling, batched, with the triangle
    structure materialised up front.  One pass of the shared counting
    kernel yields every triangle's three canonical edge ids; a stable
    argsort turns them into an edge→triangle incidence CSR; initial
    supports are a ``bincount``.  At level ``k`` every surviving edge with
    support ``<= k - 2`` peels at once: its incident still-alive triangles
    are gathered, killed exactly once (``np.unique`` -- a triangle losing
    two or three edges in one batch still dies once), and each dead
    triangle decrements its surviving edges in a single
    ``np.subtract.at``.  When a level stabilises, ``k`` jumps straight to
    ``2 + min(surviving support)``.
    """
    if graph.directed:
        raise ValueError("truss_decomposition expects the undirected CSR graph")
    if edges is None:
        edges = canonical_edges(graph)
    m = int(edges.shape[0])
    n = graph.num_vertices
    keys = kernels.packed_keys(edges[:, 0], edges[:, 1], n)  # sorted by canon order

    tri_edges = _triangle_edge_ids(graph, keys)
    num_triangles = int(tri_edges.shape[0])
    support = np.bincount(tri_edges.reshape(-1), minlength=m).astype(np.int64)
    if supports is not None:
        supports = np.asarray(supports, dtype=np.int64)
        if supports.shape[0] != m:
            raise ValueError(
                f"got {supports.shape[0]} supports for {m} canonical edges"
            )
        if not np.array_equal(supports, support):
            raise ValueError(
                "given supports disagree with the graph's triangle counts"
            )
    initial_support = support.copy()

    # edge -> incident-triangle CSR: one stable argsort of the 3T slots
    # (or, on the compiled tier, one stable counting-sort pass -- same
    # inc_ptr/inc_triangles bit for bit)
    from repro.core import kernel_backend

    flat = tri_edges.reshape(-1)
    fused_incidence = kernel_backend.fused("incidence_csr")
    if fused_incidence is not None:
        inc_ptr, inc_triangles = fused_incidence(flat, m)
    else:
        order = np.argsort(flat, kind="stable")
        inc_triangles = order // 3  # slot index -> owning triangle id
        inc_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(flat, minlength=m), out=inc_ptr[1:])
    inc_degrees = inc_ptr[1:] - inc_ptr[:-1]

    alive = np.ones(m, dtype=bool)
    tri_alive = np.ones(num_triangles, dtype=bool)
    trussness = np.zeros(m, dtype=np.int64)
    rounds = 0
    k = 2

    # compiled tier: one call runs every peel round of level k -- frontier
    # scan, triangle kill, support decrement -- as a single fused loop.
    # Rounds, trussness and the surviving supports are identical to the
    # numpy batch peeling below by contract; Python keeps the outer loop
    # and the k-jump over empty levels.
    fused_peel = kernel_backend.fused("truss_peel_level")
    if fused_peel is not None:
        flat_edges = tri_edges.reshape(-1)
        while alive.any():
            peeled, level_rounds = fused_peel(
                k, alive, support, trussness, inc_ptr, inc_triangles,
                flat_edges, tri_alive,
            )
            rounds += level_rounds
            if peeled == 0:
                # nothing peels at this level: jump to the next populated one
                k = max(k + 1, 2 + int(support[alive].min()))
                continue
            k += 1
        return TrussResult(
            num_vertices=n,
            edges=edges,
            trussness=trussness,
            support=initial_support,
            rounds=rounds,
            tri_edges=tri_edges if keep_triangles else None,
        )

    while alive.any():
        frontier = np.nonzero(alive & (support <= k - 2))[0]
        if frontier.shape[0] == 0:
            # nothing peels at this level: jump to the next populated one
            k = max(k + 1, 2 + int(support[alive].min()))
            continue
        while frontier.shape[0]:
            rounds += 1
            alive[frontier] = False
            trussness[frontier] = k
            # triangles incident to the peeled edges that are still alive
            # die now -- exactly once each, even when two or three of their
            # edges peel in the same batch
            gathered, _ = kernels.segment_gather(
                inc_triangles, inc_ptr[frontier], inc_degrees[frontier]
            )
            if gathered.shape[0]:
                dead = np.unique(gathered[tri_alive[gathered]])
                if dead.shape[0]:
                    tri_alive[dead] = False
                    targets = tri_edges[dead].reshape(-1)
                    targets = targets[alive[targets]]
                    if targets.shape[0]:
                        np.subtract.at(support, targets, 1)
            frontier = np.nonzero(alive & (support <= k - 2))[0]
        k += 1

    return TrussResult(
        num_vertices=n,
        edges=edges,
        trussness=trussness,
        support=initial_support,
        rounds=rounds,
        tri_edges=tri_edges if keep_triangles else None,
    )


def trussness_reference(graph: CSRGraph) -> np.ndarray:
    """Scalar reference k-truss peeling (sets and dicts, one edge at a time).

    Kept deliberately close to the textbook formulation; the property tests
    and the ``analytics_truss`` perf benchmark pin
    :func:`truss_decomposition` against it.  Returns trussness aligned with
    :func:`canonical_edges` order.
    """
    if graph.directed:
        raise ValueError("trussness_reference expects the undirected CSR graph")
    adjacency = [set(map(int, graph.neighbors(v))) for v in range(graph.num_vertices)]
    edge_list = [(int(u), int(v)) for u, v in canonical_edges(graph)]
    support = {
        (u, v): len(adjacency[u] & adjacency[v]) for u, v in edge_list
    }
    trussness: dict[tuple[int, int], int] = {}
    k = 2
    while support:
        peeled_any = True
        while peeled_any:
            peeled_any = False
            for u, v in list(support):
                if support.get((u, v), k) <= k - 2 and (u, v) in support:
                    for z in adjacency[u] & adjacency[v]:
                        for other in ((min(u, z), max(u, z)), (min(v, z), max(v, z))):
                            if other in support:
                                support[other] -= 1
                    del support[(u, v)]
                    adjacency[u].discard(v)
                    adjacency[v].discard(u)
                    trussness[(u, v)] = k
                    peeled_any = True
        k += 1
    return np.array([trussness[e] for e in edge_list], dtype=np.int64)
