"""Dynamic graphs: batch edge mutations with incremental truss maintenance.

The engine so far serves static snapshots: every query re-runs the full
pipeline.  This module adds the mutation path the ROADMAP carries from
PR 5 -- edge supports merge *exactly* (integer addition over sparse
positions in :class:`~repro.core.triangles.EdgeSupportSink`), so an
insertion/deletion batch only needs

1. the triangles through the **touched edges** re-enumerated (the packed-key
   common-neighbour kernel :func:`repro.core.kernels.edge_common_neighbors`
   for insertions, a mask over the retained triangle table for deletions),
2. the support deltas merged into the retained sink state
   (:meth:`EdgeSupportSink.merge_delta`, exact signed integer addition), and
3. only the **affected part** of the truss decomposition recomputed: a
   local downward fixpoint over the touched cascade for deletion-only
   batches, a truncated peel replay otherwise.

Fixpoint soundness (deletion-only batches)
------------------------------------------

Trussness is the greatest fixpoint of the local operator

    ``H(tau)(e) = max { k : #{triangles r of e with
                             min(tau of the other two edges) >= k} >= k-2 }``

*Any* fixpoint ``sigma`` of ``H`` satisfies ``sigma <= tau``: each edge of
``S_k = {e : sigma(e) >= k}`` has at least ``k-2`` triangles lying inside
``S_k``, so ``S_k`` is contained in the maximal ``k``-truss.  Conversely
the true decomposition is itself a fixpoint.  Deleting edges can only
*decrease* trussness, so the old values are a pointwise upper bound, and
``H`` can initially have dropped only at edges that lost a triangle --
the surviving members of the removed rows.  Iterating ``new tau(e) =
min(tau(e), H(tau)(e))`` from that seed worklist, pushing the row-mates
of every edge that drops, therefore converges to the greatest fixpoint
under the old values: the exact new decomposition.  The work is
proportional to the affected cascade, not the graph.

Replay soundness (batches with insertions)
------------------------------------------

Peeling is deterministic, and the state at the start of level ``k`` is a
pure function of the triangle table and the final trussness: ``alive =
{e : τ(e) >= k}``, a triangle row is alive iff all three edges are, and
each alive edge's support counts its alive rows.  The replay therefore
runs the ordinary level loop from ``k = 2`` but stops as soon as the old
run's answer provably takes over, namely when

* ``k`` exceeds the largest old trussness of any **deleted** edge (so the
  old run's level-``k`` state contained none of them, nor any removed
  triangle row), and
* the currently-alive set equals ``{e : tau_hat(e) >= k}``, where
  ``tau_hat`` maps the old trussness onto surviving edges and pins
  inserted edges to ``-1`` (so the equality also forces every inserted
  edge -- and with it every added triangle row -- to be dead already).

Under those two conditions the current peel state is identical to the old
run's level-``k`` state, so the remaining trussness is the old trussness
and is copied wholesale.  A batch that only perturbs low levels replays
only those; a no-op batch replays none.

``rounds`` counts the replayed peel batches only, so it is *not*
comparable with a from-scratch run; the oracle equality the tests pin is
``num_vertices``/``edges``/``trussness``/``support`` (and
:meth:`GraphDelta.apply` re-checks it inline under ``verify=True``).

Semantics
---------

``apply`` computes ``E_new = (E_old \\ deletions) ∪ insertions`` over the
canonical undirected edge space (``u < v``, fixed vertex universe):
deleting an absent edge or inserting a present one is a no-op, duplicates
within a batch collapse, and an edge both deleted and inserted in the same
batch survives.  Self-loops are rejected, as are endpoints outside
``[0, num_vertices)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analytics.truss import (
    TrussResult,
    _triangle_edge_ids,
    canonical_edges,
)
from repro.core import kernels
from repro.core.triangles import EdgeSupportSink
from repro.graph.csr import CSRGraph
from repro.utils import prefix_sums

__all__ = ["DeltaResult", "GraphDelta"]

#: Bound on insertion edges per common-neighbour enumeration batch (the
#: gather volume per batch is the summed degree of the ``v`` endpoints).
_INSERT_BATCH_EDGES = 8192


def _normalise_batch(edges, num_vertices: int, what: str) -> np.ndarray:
    """Canonicalise one mutation batch: ``(u, v)`` with ``u < v``, unique,
    sorted by packed key, self-loops rejected, ids validated."""
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{what} must be an (n, 2) edge array")
    if int(arr.min()) < 0 or int(arr.max()) >= num_vertices:
        raise ValueError(
            f"{what} endpoint outside the vertex universe [0, {num_vertices})"
        )
    low = np.minimum(arr[:, 0], arr[:, 1])
    high = np.maximum(arr[:, 0], arr[:, 1])
    if np.any(low == high):
        raise ValueError(f"{what} contains a self-loop")
    keys = np.unique(kernels.packed_keys(low, high, num_vertices))
    return np.stack([keys // num_vertices, keys % num_vertices], axis=1)


@dataclass
class DeltaResult:
    """Everything one applied mutation batch produces.

    ``graph`` is the mutated undirected CSR graph, ``truss`` the new
    decomposition (with ``tri_edges`` retained so the next batch can chain
    off it), ``sink`` the updated dense support sink over the new canonical
    edge space.  ``inserted``/``deleted`` are the *realised* canonical
    mutations (no-ops dropped).  ``touched_edges`` counts the canonical
    edges whose existence or support changed; ``replayed_levels`` the peel
    levels the truncated replay actually scanned before the old trussness
    took over.
    """

    graph: CSRGraph
    truss: TrussResult
    sink: EdgeSupportSink
    inserted: np.ndarray
    deleted: np.ndarray
    touched_edges: int
    replayed_levels: int

    @property
    def edges(self) -> np.ndarray:
        return self.truss.edges

    @property
    def supports(self) -> np.ndarray:
        return self.truss.support

    @property
    def triangles(self) -> int:
        return int(self.truss.support.sum()) // 3


class GraphDelta:
    """A batch of edge insertions and deletions, applied in one pass.

    Batches accumulate via :meth:`insert_edges` / :meth:`delete_edges`
    (chainable) and take effect in :meth:`apply`.  One ``GraphDelta`` is
    reusable: applying it does not consume the batch.
    """

    def __init__(self, insertions=None, deletions=None) -> None:
        self._insertions: list[np.ndarray] = []
        self._deletions: list[np.ndarray] = []
        if insertions is not None:
            self.insert_edges(insertions)
        if deletions is not None:
            self.delete_edges(deletions)

    def insert_edges(self, edges) -> "GraphDelta":
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if arr.shape[0]:
            self._insertions.append(arr)
        return self

    def delete_edges(self, edges) -> "GraphDelta":
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if arr.shape[0]:
            self._deletions.append(arr)
        return self

    @property
    def num_insertions(self) -> int:
        return int(sum(a.shape[0] for a in self._insertions))

    @property
    def num_deletions(self) -> int:
        return int(sum(a.shape[0] for a in self._deletions))

    def _stacked(self, parts: list[np.ndarray]) -> np.ndarray:
        if not parts:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(parts)

    # -- the mutation path --------------------------------------------------

    def apply(
        self,
        graph: CSRGraph,
        prev: TrussResult | None = None,
        supports: EdgeSupportSink | np.ndarray | None = None,
        telemetry=None,
        verify: bool = False,
    ) -> DeltaResult:
        """Apply the batch to ``graph`` and maintain the truss incrementally.

        Parameters
        ----------
        graph:
            the current undirected CSR graph.
        prev:
            the current :class:`TrussResult`.  When it carries ``tri_edges``
            (``truss_decomposition(..., keep_triangles=True)``) the old
            triangle table is updated in place of a re-enumeration, and the
            old trussness truncates the peel replay.  Without ``prev`` the
            replay degenerates to a full peel (still correct, no skip).
        supports:
            the retained per-canonical-edge support state: a dense
            :class:`EdgeSupportSink`, a support array, or ``None`` to use
            ``prev.support`` (one of the three must provide it when the
            graph has edges -- it is the exact integer state the delta
            merges into).
        telemetry:
            optional :class:`~repro.obs.export.RunTelemetry`; records
            ``delta`` phase spans and the ``delta.touched_edges`` /
            ``delta.replayed_levels`` counters.  Purely observational: the
            result is bit-identical with or without it.
        verify:
            re-run the full from-scratch decomposition on the mutated graph
            and raise unless trussness and supports agree exactly (the
            oracle discipline; the property suites run with this on).
        """
        if graph.directed:
            raise ValueError("GraphDelta.apply expects the undirected CSR graph")
        n = graph.num_vertices
        start = time.perf_counter()

        old_edges = prev.edges if prev is not None else canonical_edges(graph)
        if prev is not None and prev.num_vertices != n:
            raise ValueError("prev TrussResult is for a different vertex universe")
        m_old = int(old_edges.shape[0])
        old_keys = kernels.packed_keys(old_edges[:, 0], old_edges[:, 1], n)

        if isinstance(supports, EdgeSupportSink):
            if supports.spilling:
                raise ValueError(
                    "retained sink state must be dense; re-hydrate spilled "
                    "supports with EdgeSupportSink.from_supports first"
                )
            old_supports = supports.supports()
        elif supports is not None:
            old_supports = np.asarray(supports, dtype=np.int64)
        elif prev is not None:
            old_supports = prev.support
        else:
            old_supports = None
        if old_supports is not None and old_supports.shape[0] != m_old:
            raise ValueError(
                f"got {old_supports.shape[0]} supports for {m_old} canonical edges"
            )

        # -- normalise: realised edge-set difference over packed keys ------
        # everything here is O(|E| + |batch| log |E|): the canonical key
        # arrays are already sorted, so the set algebra is membership masks
        # plus positional delete/insert -- never a fresh sort of the graph
        ins = _normalise_batch(self._stacked(self._insertions), n, "insertions")
        dels = _normalise_batch(self._stacked(self._deletions), n, "deletions")
        ins_keys = kernels.packed_keys(ins[:, 0], ins[:, 1], n)
        del_keys = kernels.packed_keys(dels[:, 0], dels[:, 1], n)
        # an edge both deleted and inserted in one batch survives
        del_mask = kernels.sorted_membership(
            del_keys, old_keys
        ) & ~kernels.sorted_membership(ins_keys, old_keys)
        surviving = ~del_mask
        real_del_keys = old_keys[del_mask]
        real_ins_keys = ins_keys[~kernels.sorted_membership(old_keys, ins_keys)]
        kept_keys = old_keys[surviving]
        new_keys = np.insert(
            kept_keys, np.searchsorted(kept_keys, real_ins_keys), real_ins_keys
        )
        m_new = int(new_keys.shape[0])
        new_edges = np.stack([new_keys // n, new_keys % n], axis=1)
        new_graph = _mutate_csr(graph, real_del_keys, real_ins_keys, n)

        # old edge id -> new edge id (-1 for deleted edges): a survivor's id
        # shifts down by the deletions before it, up by the insertions below
        old_to_new = (
            np.arange(m_old, dtype=np.int64)
            - np.cumsum(del_mask)
            + np.searchsorted(real_ins_keys, old_keys)
        )
        old_to_new[del_mask] = -1
        if telemetry is not None:
            telemetry.record_span(
                "delta_normalise",
                start,
                time.perf_counter() - start,
                cat="delta",
                track="analytics",
                inserted=int(real_ins_keys.shape[0]),
                deleted=int(real_del_keys.shape[0]),
            )

        # -- touched triangles + exact support-delta merge -----------------
        merge_start = time.perf_counter()
        if prev is not None and prev.tri_edges is not None:
            old_tri = prev.tri_edges
        else:
            # documented slow path: without a retained table the old
            # triangles are re-enumerated once (still no full re-peel)
            old_tri = _triangle_edge_ids(graph, old_keys)

        if old_tri.shape[0]:
            row_deleted = (old_to_new[old_tri] < 0).any(axis=1)
            kept_tri = old_to_new[old_tri[~row_deleted]]
            minus_ids = old_to_new[old_tri[row_deleted].reshape(-1)]
            minus_ids = minus_ids[minus_ids >= 0]
        else:
            kept_tri = np.empty((0, 3), dtype=np.int64)
            minus_ids = np.empty(0, dtype=np.int64)

        plus_tri = self._inserted_triangles(new_graph, new_keys, real_ins_keys, n)

        base = np.zeros(m_new, dtype=np.int64)
        if old_supports is not None:
            base[old_to_new[surviving]] = old_supports[surviving]
        elif m_old:
            base[old_to_new[surviving]] = np.bincount(
                old_tri.reshape(-1), minlength=m_old
            )[surviving]
        sink = EdgeSupportSink.from_supports(new_keys, n, base)
        positions = np.concatenate((minus_ids, plus_tri.reshape(-1)))
        deltas = np.concatenate(
            (
                np.full(minus_ids.shape[0], -1, dtype=np.int64),
                np.ones(plus_tri.size, dtype=np.int64),
            )
        )
        sink.merge_delta(positions, deltas)
        sink.count = int(sink.support.sum()) // 3
        new_supports = sink.supports().copy()

        new_tri = np.concatenate((kept_tri, plus_tri))
        # the merged sink state and the maintained triangle table are the
        # same integer quantity; any disagreement means a corrupt delta
        if not np.array_equal(
            np.bincount(new_tri.reshape(-1), minlength=m_new), new_supports
        ):
            raise ValueError(
                "support delta disagrees with the maintained triangle table"
            )
        touched = int(
            real_del_keys.shape[0]
            + real_ins_keys.shape[0]
            + np.unique(minus_ids).shape[0]
        )
        if telemetry is not None:
            telemetry.record_span(
                "delta_support_merge",
                merge_start,
                time.perf_counter() - merge_start,
                cat="delta",
                track="analytics",
                removed_triangles=int(old_tri.shape[0] - kept_tri.shape[0]),
                added_triangles=int(plus_tri.shape[0]),
            )

        # -- incremental trussness ----------------------------------------
        replay_start = time.perf_counter()
        if prev is not None:
            tau_hat = np.full(m_new, -1, dtype=np.int64)
            tau_hat[old_to_new[surviving]] = prev.trussness[surviving]
            deleted_tau = prev.trussness[~surviving]
            del_max = int(deleted_tau.max()) if deleted_tau.shape[0] else -1
        else:
            tau_hat = None
            del_max = -1
        if tau_hat is not None and real_ins_keys.shape[0] == 0:
            # deletion-only: local downward fixpoint from the old trussness
            # seeded at the edges that lost a triangle (module docstring)
            trussness, rounds = _fixpoint_demote(new_tri, tau_hat, minus_ids)
            replayed = rounds
        else:
            trussness, rounds, replayed = _replay_peel(
                m_new, new_tri, new_supports, tau_hat, del_max
            )
        truss = TrussResult(
            num_vertices=n,
            edges=new_edges,
            trussness=trussness,
            support=new_supports,
            rounds=rounds,
            tri_edges=new_tri,
        )
        if telemetry is not None:
            telemetry.record_span(
                "delta_replay",
                replay_start,
                time.perf_counter() - replay_start,
                cat="delta",
                track="analytics",
                replayed_levels=replayed,
                max_k=truss.max_k,
            )
            telemetry.record_counter("delta.touched_edges", touched)
            telemetry.record_counter("delta.replayed_levels", replayed)
            telemetry.record_counter("delta.batches", 1)

        if verify:
            self._verify(new_graph, truss)
        return DeltaResult(
            graph=new_graph,
            truss=truss,
            sink=sink,
            inserted=np.stack(
                [real_ins_keys // n, real_ins_keys % n], axis=1
            ),
            deleted=np.stack(
                [real_del_keys // n, real_del_keys % n], axis=1
            ),
            touched_edges=touched,
            replayed_levels=replayed,
        )

    def _inserted_triangles(
        self,
        new_graph: CSRGraph,
        new_keys: np.ndarray,
        real_ins_keys: np.ndarray,
        n: int,
    ) -> np.ndarray:
        """New-graph triangles through the inserted edges, as deduplicated
        ``(T, 3)`` canonical-edge-id rows (ids sorted within each row).

        One :func:`~repro.core.kernels.edge_common_neighbors` call per
        bounded batch enumerates, for each inserted ``(u, v)``, every common
        neighbour ``w`` -- exactly the triangles gaining that edge.  A
        triangle closing two or three inserted edges is enumerated once per
        such edge; sorting each id row and deduplicating keeps it once.
        """
        if real_ins_keys.shape[0] == 0:
            return np.empty((0, 3), dtype=np.int64)
        us = real_ins_keys // n
        vs = real_ins_keys % n
        csr_keys = kernels.csr_packed_keys(new_graph.indptr, new_graph.indices)
        rows: list[np.ndarray] = []
        for lo in range(0, us.shape[0], _INSERT_BATCH_EDGES):
            hi = lo + _INSERT_BATCH_EDGES
            owners, ws = kernels.edge_common_neighbors(
                new_graph.indptr,
                new_graph.indices,
                us[lo:hi],
                vs[lo:hi],
                csr_keys=csr_keys,
            )
            if owners.shape[0] == 0:
                continue
            a = us[lo:hi][owners]
            b = vs[lo:hi][owners]
            tri = np.empty((owners.shape[0], 3), dtype=np.int64)
            for slot, (x, y) in enumerate(((a, b), (a, ws), (b, ws))):
                queries = kernels.packed_keys(np.minimum(x, y), np.maximum(x, y), n)
                tri[:, slot] = np.searchsorted(new_keys, queries)
            rows.append(tri)
        if not rows:
            return np.empty((0, 3), dtype=np.int64)
        tri = np.concatenate(rows)
        tri.sort(axis=1)  # a triangle is its id set; order rows canonically
        return np.unique(tri, axis=0)

    @staticmethod
    def _verify(new_graph: CSRGraph, truss: TrussResult) -> None:
        from repro.analytics.truss import truss_decomposition

        oracle = truss_decomposition(
            new_graph, supports=truss.support, edges=truss.edges
        )
        if not np.array_equal(oracle.trussness, truss.trussness):
            raise AssertionError(
                "incremental truss disagrees with the full-recompute oracle"
            )


def _fixpoint_demote(
    tri_edges: np.ndarray,
    tau0: np.ndarray,
    seed_ids: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Exact trussness after deletions: downward fixpoint of the local
    ``H`` operator (module docstring) from the old values ``tau0``.

    ``seed_ids`` are the edges that lost a triangle.  Each round gathers
    the incident rows of the worklist edges, evaluates ``H`` as a batched
    h-index (``max_j min(v_j, j+3)`` over each edge's row values sorted
    descending, where ``v`` is the smaller trussness of the row's other
    two edges), demotes, and pushes the row-mates of every demoted edge.
    Work is proportional to the cascade; an untouched graph costs nothing.
    """
    m = int(tau0.shape[0])
    tau = tau0.copy()
    work = np.unique(seed_ids)
    if work.shape[0] == 0 or tri_edges.shape[0] == 0:
        # no triangle can be lost, or none remain: only seeds can drop (to 2)
        tau[work] = 2
        return tau, 0
    flat = tri_edges.reshape(-1)
    order = np.argsort(flat.astype(np.int32), kind="stable")
    inc_triangles = order // 3
    inc_ptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(flat, minlength=m), out=inc_ptr[1:])
    inc_degrees = inc_ptr[1:] - inc_ptr[:-1]

    rounds = 0
    while work.shape[0]:
        rounds += 1
        rows, owners = kernels.segment_gather(
            inc_triangles, inc_ptr[work], inc_degrees[work]
        )
        edge_of = work[owners]
        h = np.full(work.shape[0], 2, dtype=np.int64)
        if rows.shape[0]:
            members = tri_edges[rows]
            taus = tau[members]
            # v = min trussness of the row's other two edges: mask out the
            # owning edge (each id occurs once per row) and take the row min
            taus[members == edge_of[:, None]] = np.iinfo(np.int64).max
            v = taus.min(axis=1)
            # one composite sort == lexsort((-v, owners)): v is bounded by
            # the largest trussness, so the packed key never collides
            span = int(v.max()) + 2
            sort_idx = np.argsort(owners * span + (span - 1 - v), kind="stable")
            v_sorted = v[sort_idx]
            counts = np.bincount(owners, minlength=work.shape[0])
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            rank = np.arange(v_sorted.shape[0], dtype=np.int64) - np.repeat(
                starts, counts
            )
            candidate = np.minimum(v_sorted, rank + 3)
            nonempty = counts > 0
            h[nonempty] = np.maximum(
                2, np.maximum.reduceat(candidate, starts[nonempty])
            )
        dropped = h < tau[work]
        if not dropped.any():
            break
        tau[work[dropped]] = h[dropped]
        # a row-mate g can only be affected if tau(g) exceeds the demoted
        # owner's new value: for k <= h the row's min-other-tau is unchanged
        # (the owner still sits at >= h), so H(g) with tau(g) <= h is stable
        row_dropped = dropped[owners]
        changed_rows = rows[row_dropped]
        thresh = np.repeat(h[owners][row_dropped], 3)
        cand = tri_edges[changed_rows].reshape(-1)
        work = np.unique(cand[tau[cand] > thresh])
    return tau, rounds


def _mutate_csr(
    graph: CSRGraph,
    real_del_keys: np.ndarray,
    real_ins_keys: np.ndarray,
    n: int,
) -> CSRGraph:
    """Apply realised canonical deletions/insertions to the symmetric CSR.

    The adjacency of an undirected CSR is globally sorted by the directed
    packed key ``src * n + dst``, so each mutation is two positional
    entries (one per direction) located by ``searchsorted`` -- an O(|E|)
    delete/insert, never a rebuild through the symmetrize/dedup path.
    """
    if real_del_keys.shape[0] == 0 and real_ins_keys.shape[0] == 0:
        return graph

    def positions(indptr, indices, keys):
        """Sorted adjacency positions of directed ``src * n + dst`` keys."""
        if keys.shape[0] > 1024:
            return np.searchsorted(kernels.csr_packed_keys(indptr, indices), keys)
        # small batches: per-entry binary search inside the source's list
        # beats materialising the full packed-key array
        out = np.empty(keys.shape[0], dtype=np.int64)
        for i, key in enumerate(keys):
            src, dst = divmod(int(key), n)
            lo, hi = int(indptr[src]), int(indptr[src + 1])
            out[i] = lo + int(np.searchsorted(indices[lo:hi], dst))
        return out

    degrees = (graph.indptr[1:] - graph.indptr[:-1]).astype(np.int64)
    indptr = graph.indptr
    indices = graph.indices
    if real_del_keys.shape[0]:
        du, dv = real_del_keys // n, real_del_keys % n
        sym = np.concatenate((du * n + dv, dv * n + du))
        sym.sort()
        keep = np.ones(indices.shape[0], dtype=bool)
        keep[positions(indptr, indices, sym)] = False
        indices = indices[keep]
        degrees -= np.bincount(du, minlength=n) + np.bincount(dv, minlength=n)
        indptr = prefix_sums(degrees)
    if real_ins_keys.shape[0]:
        iu, iv = real_ins_keys // n, real_ins_keys % n
        sym = np.concatenate((iu * n + iv, iv * n + iu))
        sym.sort()
        indices = np.insert(indices, positions(indptr, indices, sym), sym % n)
        degrees += np.bincount(iu, minlength=n) + np.bincount(iv, minlength=n)
        indptr = prefix_sums(degrees)
    return CSRGraph(indptr, indices, directed=False)


def _replay_peel(
    m: int,
    tri_edges: np.ndarray,
    supports: np.ndarray,
    tau_hat: np.ndarray | None,
    del_max: int,
) -> tuple[np.ndarray, int, int]:
    """The level loop of :func:`~repro.analytics.truss.truss_decomposition`
    with the early-termination check of the module docstring.

    ``tau_hat`` is the old trussness mapped onto the new edge ids (``-1``
    for inserted edges) or ``None`` for a cold replay; ``del_max`` the
    largest old trussness among deleted edges.  Returns ``(trussness,
    rounds, replayed_levels)`` where ``replayed_levels`` counts the level
    scans actually executed.
    """
    from repro.core import kernel_backend

    support = supports.copy()
    num_triangles = int(tri_edges.shape[0])
    flat = tri_edges.reshape(-1)
    fused_incidence = kernel_backend.fused("incidence_csr")
    if fused_incidence is not None:
        inc_ptr, inc_triangles = fused_incidence(flat, m)
    else:
        order = np.argsort(flat, kind="stable")
        inc_triangles = order // 3
        inc_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(flat, minlength=m), out=inc_ptr[1:])
    inc_degrees = inc_ptr[1:] - inc_ptr[:-1]

    alive = np.ones(m, dtype=bool)
    tri_alive = np.ones(num_triangles, dtype=bool)
    trussness = np.zeros(m, dtype=np.int64)
    rounds = 0
    replayed = 0
    k = 2

    def settled(k: int) -> bool:
        # the old run takes over once no deleted edge (nor removed row)
        # was part of its level-k state and the alive set matches the old
        # prediction -- which also forces every inserted edge dead
        return (
            tau_hat is not None
            and k > del_max
            and np.array_equal(alive, tau_hat >= k)
        )

    fused_peel = kernel_backend.fused("truss_peel_level")
    if fused_peel is not None:
        flat_edges = flat
        while alive.any():
            if settled(k):
                trussness[alive] = tau_hat[alive]
                return trussness, rounds, replayed
            peeled, level_rounds = fused_peel(
                k, alive, support, trussness, inc_ptr, inc_triangles,
                flat_edges, tri_alive,
            )
            rounds += level_rounds
            replayed += 1
            if peeled == 0:
                k = max(k + 1, 2 + int(support[alive].min()))
                continue
            k += 1
        return trussness, rounds, replayed

    while alive.any():
        if settled(k):
            trussness[alive] = tau_hat[alive]
            return trussness, rounds, replayed
        replayed += 1
        frontier = np.nonzero(alive & (support <= k - 2))[0]
        if frontier.shape[0] == 0:
            k = max(k + 1, 2 + int(support[alive].min()))
            continue
        while frontier.shape[0]:
            rounds += 1
            alive[frontier] = False
            trussness[frontier] = k
            gathered, _ = kernels.segment_gather(
                inc_triangles, inc_ptr[frontier], inc_degrees[frontier]
            )
            if gathered.shape[0]:
                dead = np.unique(gathered[tri_alive[gathered]])
                if dead.shape[0]:
                    tri_alive[dead] = False
                    targets = tri_edges[dead].reshape(-1)
                    targets = targets[alive[targets]]
                    if targets.shape[0]:
                        np.subtract.at(support, targets, 1)
            frontier = np.nonzero(alive & (support <= k - 2))[0]
        k += 1
    return trussness, rounds, replayed
