"""One-call triangle analytics on top of the PDTL engine.

The paper's introduction motivates triangle listing as the substrate of
heavier graph analytics -- clustering coefficients, the transitivity
ratio, truss decomposition.  :func:`run_analytics` turns that motivation
into a pipeline: **one** PDTL run with the ``edge-support`` sink, and the
counting-style metrics are derived from the merged per-edge supports
alone::

                        ┌─ total triangles  (Σ support / 3)
    PDTL (edge-support) ┼─ per-vertex counts (incident support / 2)
      supports per edge ┼─ clustering coefficient, transitivity
                        └─ k-truss decomposition (support peeling)

The derivations are exact integer identities: every triangle contributes
one unit of support to each of its three edges, and at a vertex ``v`` to
exactly the two edges incident to ``v`` -- so the per-vertex counts equal
what a separate ``per-vertex`` PDTL run reports, bit for bit (asserted by
the integration tests).

The truss stage needs more than counts: peeling requires the triangle
*structure*, so :func:`~repro.analytics.truss.truss_decomposition`
re-enumerates the triangles in memory (an ``O(T)`` edge-incidence table)
and uses the PDTL supports as an exact cross-check -- any disagreement
between the engine's stream and the local enumeration raises.  The
external-memory discipline applies to the support *accumulation* (the
sink's spill path), not to the in-memory decomposition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analytics.truss import TrussResult, truss_decomposition
from repro.analysis.report import (
    counters_table,
    format_table,
    telemetry_summary_table,
    truss_summary_table,
)
from repro.cluster.executor import ExecutionBackend
from repro.core import kernels
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLResult
from repro.core.runner import edge_supports
from repro.graph.binfmt import GraphFile
from repro.graph.csr import CSRGraph
from repro.graph.properties import (
    clustering_coefficient,
    per_vertex_counts_from_edge_supports,
    transitivity,
)

__all__ = ["AnalyticsResult", "run_analytics"]


@dataclass
class AnalyticsResult:
    """Everything one analytics pass produces.

    ``edges`` is the canonical undirected edge list (``u < v``,
    lexicographic), ``edge_supports`` the triangle support of each, and the
    remaining fields are derived as in the module docstring.  ``pdtl``
    keeps the full engine result (modelled times, per-node metrics, chunk
    accounting) for callers that want the performance story too.

    ``triangles`` is stored rather than read off ``pdtl``: after applied
    mutation batches (``run_analytics(..., deltas=...)``) every derived
    field -- this count included -- describes the *mutated* graph, while
    ``pdtl`` still describes the base run that produced the initial
    supports.  ``deltas_applied`` says how many batches separate the two.
    """

    pdtl: PDTLResult
    num_vertices: int
    edges: np.ndarray
    edge_supports: np.ndarray
    per_vertex_counts: np.ndarray
    clustering: np.ndarray
    transitivity: float
    truss: TrussResult
    triangles: int
    deltas_applied: int = 0

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def mean_clustering(self) -> float:
        """The network average clustering coefficient (Watts-Strogatz)."""
        return float(self.clustering.mean()) if self.clustering.shape[0] else 0.0

    @property
    def max_truss_k(self) -> int:
        return self.truss.max_k

    def summary_rows(self) -> list[dict[str, object]]:
        """The headline metrics as report rows."""
        return [
            {"metric": "vertices", "value": self.num_vertices},
            {"metric": "edges", "value": self.num_edges},
            {"metric": "triangles", "value": self.triangles},
            {"metric": "transitivity", "value": round(self.transitivity, 6)},
            {"metric": "mean clustering", "value": round(self.mean_clustering, 6)},
            {"metric": "max edge support", "value": int(self.edge_supports.max())
             if self.num_edges else 0},
            {"metric": "max truss k", "value": self.max_truss_k},
            {"metric": "peel rounds", "value": self.truss.rounds},
        ]

    def report(self) -> str:
        """Figure-style plain-text report (summary + truss table).

        When the engine ran with ``trace=True`` the telemetry rollup and the
        counter table (fd-cache / read-ahead hit rates included) are
        appended, so one traced analytics run yields the full story.
        """
        sections = [
            format_table(self.summary_rows(), title="Triangle analytics"),
            truss_summary_table(
                self.truss.summary_rows(), title="k-truss decomposition"
            ),
        ]
        telemetry = self.pdtl.telemetry
        if telemetry is not None:
            sections.append(
                telemetry_summary_table(telemetry, title="Run telemetry")
            )
            sections.append(
                counters_table(telemetry.counters, title="Run counters")
            )
        return "\n\n".join(sections)


def run_analytics(
    graph: CSRGraph | GraphFile,
    config: PDTLConfig | None = None,
    backend: ExecutionBackend | str = "serial",
    deltas: object = None,
    **config_overrides: object,
) -> AnalyticsResult:
    """Run PDTL once and fan the triangle stream into the full analytics set.

    ``graph`` is the undirected input (in-memory CSR or on-disk).  The
    engine configuration comes from ``config`` or keyword overrides exactly
    as in :func:`repro.core.runner.edge_supports` (which this delegates
    to); the sink kind is forced to ``edge-support`` because everything
    downstream derives from the per-edge supports.

    ``deltas`` -- one :class:`~repro.analytics.delta.GraphDelta` or a
    sequence of them -- mutates the graph *after* the base run: each batch
    is applied through the incremental maintenance path (touched-edge
    support deltas, truncated peel replay), and every derived field of the
    result describes the final mutated graph.  The engine runs exactly
    once, on the input graph; with tracing on, the delta phases appear as
    ``delta_*`` spans and ``delta.*`` counters on the run telemetry.
    """
    csr = graph.to_csr() if isinstance(graph, GraphFile) else graph
    if csr.directed:
        raise ValueError("run_analytics expects the undirected graph")
    from repro.analytics.delta import GraphDelta

    if deltas is None:
        delta_batches: list[GraphDelta] = []
    elif isinstance(deltas, GraphDelta):
        delta_batches = [deltas]
    else:
        delta_batches = list(deltas)

    result = edge_supports(graph, config, backend=backend, **config_overrides)
    telemetry = result.telemetry

    # canonicalise: the oriented adjacency stores each undirected edge once,
    # ordered by the degree-based orientation; re-key to (min, max) pairs in
    # lexicographic order, the shared canonical edge-id space
    canon_start = time.perf_counter()
    oriented = result.oriented_edges
    low = np.minimum(oriented[:, 0], oriented[:, 1])
    high = np.maximum(oriented[:, 0], oriented[:, 1])
    order = np.argsort(kernels.packed_keys(low, high, csr.num_vertices))
    edges = np.stack([low[order], high[order]], axis=1)
    supports = result.edge_supports[order]
    if telemetry is not None:
        telemetry.record_span(
            "canonicalise",
            canon_start,
            time.perf_counter() - canon_start,
            cat="analytics",
            track="analytics",
            edges=int(edges.shape[0]),
        )

    truss_start = time.perf_counter()
    truss = truss_decomposition(
        csr, supports=supports, edges=edges, keep_triangles=bool(delta_batches)
    )
    if telemetry is not None:
        telemetry.record_span(
            "truss",
            truss_start,
            time.perf_counter() - truss_start,
            cat="analytics",
            track="analytics",
            max_k=truss.max_k,
            rounds=truss.rounds,
        )

    final_csr = csr
    triangles = result.triangles
    for delta in delta_batches:
        applied = delta.apply(
            final_csr, prev=truss, supports=supports, telemetry=telemetry
        )
        final_csr = applied.graph
        truss = applied.truss
        edges = applied.edges
        supports = applied.supports
        triangles = applied.triangles

    per_vertex = per_vertex_counts_from_edge_supports(
        csr.num_vertices, edges, supports
    )
    return AnalyticsResult(
        pdtl=result,
        num_vertices=csr.num_vertices,
        edges=edges,
        edge_supports=supports,
        per_vertex_counts=per_vertex,
        clustering=clustering_coefficient(final_csr, per_vertex),
        transitivity=transitivity(final_csr, triangles),
        truss=truss,
        triangles=triangles,
        deltas_applied=len(delta_batches),
    )
