"""repro -- a reproduction of *PDTL: Parallel and Distributed Triangle Listing
for Massive Graphs* (Giechaskiel, Panagopoulos, Yoneki; ICPP 2015).

The public API is intentionally small:

* :func:`count_triangles` / :func:`list_triangles` -- run the full PDTL
  pipeline (orientation, load balancing, replication, per-core MGT) on an
  undirected graph under a chosen :class:`PDTLConfig`;
* :class:`PDTLConfig` -- the (N nodes, P processors, M memory, B block size)
  environment model;
* :class:`PDTLRunner` -- the framework object when you need the detailed
  per-node metrics a :class:`~repro.core.pdtl.PDTLResult` carries;
* :mod:`repro.graph` -- graph containers, generators and the binary on-disk
  format;
* :mod:`repro.baselines` -- the in-memory, PowerGraph-, PATRIC-, OPT- and
  CTTP-style comparators used by the evaluation benchmarks;
* :mod:`repro.analysis` -- the Theorem IV.2/IV.3 cost model and report
  formatting;
* :mod:`repro.analytics` -- triangle-*consumer* analytics on top of the
  engine: :func:`run_analytics` fans one PDTL run into per-edge supports,
  per-vertex counts, clustering coefficients, transitivity and the
  k-truss decomposition;
* :mod:`repro.obs` -- run telemetry: the hierarchical span tracer, the
  metrics registry and the Chrome-trace exporter behind
  ``PDTLConfig(trace=True)``, plus :func:`enable_logging` for per-module
  diagnostics (``PDTL_LOG_LEVEL``).
"""

from repro.analytics import AnalyticsResult, run_analytics
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLResult, PDTLRunner
from repro.core.runner import (
    count_triangles,
    edge_supports,
    list_triangles,
    triangle_counts_per_vertex,
)
from repro.core.triangles import Triangle
from repro.errors import (
    ConfigurationError,
    GraphFormatError,
    NetworkError,
    OutOfMemoryError,
    PDTLError,
)
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.obs import RunTelemetry, enable_logging, get_logger

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PDTLConfig",
    "PDTLRunner",
    "PDTLResult",
    "Triangle",
    "CSRGraph",
    "EdgeList",
    "count_triangles",
    "list_triangles",
    "triangle_counts_per_vertex",
    "edge_supports",
    "run_analytics",
    "AnalyticsResult",
    "RunTelemetry",
    "enable_logging",
    "get_logger",
    "PDTLError",
    "GraphFormatError",
    "OutOfMemoryError",
    "ConfigurationError",
    "NetworkError",
]
