"""Simulated block device over a real directory, with full I/O accounting.

PDTL is an external-memory algorithm, so the *unit of cost* is the block
transfer, not the byte.  :class:`BlockDevice` wraps a directory of ordinary
files but routes every read and write through block-granular accounting:

* each access is rounded out to whole blocks of ``block_size`` bytes;
* an access is *sequential* if it starts at the block immediately after the
  previous access to the same file (the cheap case of the Aggarwal–Vitter
  model), otherwise it is *random*;
* when a bandwidth/latency model is configured, the device also accumulates
  the modelled transfer time, which is what the paper's Figures 6–8
  ("I/O seconds" per node) correspond to in this reproduction.

The files themselves are real files on the host filesystem so that the
data genuinely leaves process memory -- the memory budget of an MGT worker
only ever holds the ``Θ(M)`` edge window plus per-vertex scratch arrays,
exactly as in the paper.

Three host-side buffering layers sit **strictly below** the accounting, so
they change wall-clock cost only -- never a single counter of
:class:`~repro.externalmem.iostats.IOStats` nor a microsecond of modelled
device time:

* the device keeps a bounded, thread-safe cache of raw file descriptors
  and serves reads/writes with ``os.pread``/``os.pwrite``, instead of
  re-opening the file on every call (the dominant host cost of the
  fine-grained access patterns the external sort and the MGT scans issue);
* a :class:`BlockFile` can enable an *aligned read-ahead buffer*
  (:meth:`BlockFile.set_readahead`): sequential scans then hit the host
  filesystem once per buffer instead of once per logical read, while every
  logical read is still accounted at exactly its requested offset and
  length;
* a device constructed with ``mmap_reads=True`` serves reads from a cached
  read-only ``mmap`` of each file instead of issuing one ``pread`` syscall
  per logical read (ROADMAP's named candidate for the non-shm backends).
  Mappings are invalidated on every write path through the device, and a
  read the current mapping cannot serve falls back to ``pread``, so the
  returned bytes -- and therefore every accounted length -- are identical
  with the flag on or off.
"""

from __future__ import annotations

import mmap
import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import PDTLError
from repro.externalmem.iostats import IOStats
from repro.utils import ceil_div, parse_size

__all__ = ["BlockDevice", "BlockFile", "DEFAULT_BLOCK_SIZE", "HostCounters"]

DEFAULT_BLOCK_SIZE = 4096

#: Upper bound on cached file descriptors per device; least-recently-used
#: idle descriptors are closed first.  Keeps a long pytest session with
#: hundreds of scratch devices well under the process fd limit.
MAX_CACHED_FDS = 128


class HostCounters:
    """Host-side cache effectiveness counters for one :class:`BlockDevice`.

    These count what the buffering layers *below* the accounting actually
    did -- fd-cache hits vs ``os.open`` calls, read-ahead window loads vs
    logical reads served, mmap-served reads.  They are observability only:
    plain integer increments with no locking (device instances are either
    private to one task or incremented under the caches' existing locks),
    and nothing in the accounting layer reads them.
    """

    __slots__ = (
        "fd_cache_hits",
        "fd_cache_misses",
        "readahead_hits",
        "readahead_misses",
        "readahead_window_loads",
        "mmap_served_reads",
    )

    def __init__(self) -> None:
        self.fd_cache_hits = 0
        self.fd_cache_misses = 0
        self.readahead_hits = 0
        self.readahead_misses = 0
        self.readahead_window_loads = 0
        self.mmap_served_reads = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "fd_cache.hits": self.fd_cache_hits,
            "fd_cache.misses": self.fd_cache_misses,
            "readahead.hits": self.readahead_hits,
            "readahead.misses": self.readahead_misses,
            "readahead.window_loads": self.readahead_window_loads,
            "mmap.served_reads": self.mmap_served_reads,
        }


class _FdEntry:
    """A cached descriptor with a pin count.

    ``refs`` counts in-flight ``pread``/``pwrite`` users; ``closed`` marks
    entries evicted from the cache (or whose file was deleted) while still
    pinned -- the last :meth:`BlockDevice._release_fd` closes those, so a
    descriptor can never be closed (and its number never kernel-reused)
    under a concurrent user.
    """

    __slots__ = ("fd", "refs", "closed", "append_lock")

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.refs = 0
        self.closed = False
        # serializes the size-probe + pwrite pair of append_bytes; a plain
        # pwrite-at-fstat-size is not atomic the way O_APPEND writes were
        self.append_lock = threading.Lock()


@dataclass
class DiskModel:
    """Simple performance model for a simulated disk.

    ``bandwidth_bytes_per_s`` caps sequential throughput;
    ``seek_latency_s`` is added per random access.  The defaults model the
    Samsung 840 SSD used in the paper's local machines (~500 MB/s
    sequential, ~0.1 ms access).
    """

    bandwidth_bytes_per_s: float = 500e6
    seek_latency_s: float = 1e-4

    def transfer_time(self, nbytes: int, sequential: bool) -> float:
        time = nbytes / self.bandwidth_bytes_per_s if self.bandwidth_bytes_per_s else 0.0
        if not sequential:
            time += self.seek_latency_s
        return time


class BlockDevice:
    """A directory-backed simulated disk with block-level accounting.

    Parameters
    ----------
    root:
        directory that holds the device's files (created if missing).
    block_size:
        block size ``B`` in bytes; all I/O is rounded to whole blocks.
    model:
        optional :class:`DiskModel` used to accumulate modelled device time.
    mmap_reads:
        serve reads from cached read-only memory maps (see the module
        docstring); strictly below the accounting layer.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        block_size: int | str = DEFAULT_BLOCK_SIZE,
        model: DiskModel | None = None,
        mmap_reads: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.block_size = parse_size(block_size)
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        self.model = model if model is not None else DiskModel()
        self.stats = IOStats(block_size=self.block_size)
        self._last_block: dict[str, int] = {}
        # raw-fd cache (host-side only, invisible to the accounting)
        self._fd_lock = threading.Lock()
        self._fds: dict[str, _FdEntry] = {}
        # resolved-path cache: Path.resolve() costs a realpath() walk per
        # component, which dominated fine-grained access patterns
        self._root_resolved = self.root.resolve()
        self._path_cache: dict[str, Path] = {}
        # mmap read cache (host-side only, invisible to the accounting)
        self.mmap_reads = bool(mmap_reads)
        self._mmap_lock = threading.Lock()
        self._mmaps: dict[str, mmap.mmap] = {}
        # host-cache effectiveness counters (observability only)
        self.host_counters = HostCounters()

    # -- file management -------------------------------------------------------

    def path(self, name: str) -> Path:
        cached = self._path_cache.get(name)
        if cached is not None:
            return cached
        p = (self.root / name).resolve()
        if self._root_resolved not in p.parents and p != self._root_resolved:
            raise PDTLError(f"file name {name!r} escapes the device root")
        self._path_cache[name] = p
        return p

    def open(self, name: str) -> "BlockFile":
        """Open (or create) a file on this device."""
        return BlockFile(self, name)

    def exists(self, name: str) -> bool:
        return self.path(name).exists()

    def file_size(self, name: str) -> int:
        p = self.path(name)
        return p.stat().st_size if p.exists() else 0

    def delete(self, name: str) -> None:
        self._close_fd(name)
        self._invalidate_mmap(name)
        p = self.path(name)
        if p.exists():
            p.unlink()
        self._last_block.pop(name, None)

    def list_files(self) -> list[str]:
        return sorted(
            str(p.relative_to(self.root)) for p in self.root.rglob("*") if p.is_file()
        )

    def clear(self) -> None:
        """Delete every file on the device (used between benchmark repetitions,
        mirroring the paper's explicit clearing of disk caches)."""
        for name in self.list_files():
            self.delete(name)
        for child in self.root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)
        self._last_block.clear()

    def copy_file(self, name: str, other: "BlockDevice", dest_name: str | None = None) -> int:
        """Copy a file to another device, charging a full sequential scan on
        both sides.  Returns the number of bytes copied.

        This is the primitive behind the master-to-client graph duplication
        whose cost Table III reports as "avg copy time".
        """
        dest_name = dest_name if dest_name is not None else name
        src_path = self.path(name)
        if not src_path.exists():
            raise PDTLError(f"cannot copy missing file {name!r}")
        nbytes = src_path.stat().st_size
        dst_path = other.path(dest_name)
        dst_path.parent.mkdir(parents=True, exist_ok=True)
        other._close_fd(dest_name)
        other._invalidate_mmap(dest_name)
        shutil.copyfile(src_path, dst_path)
        blocks = ceil_div(nbytes, self.block_size) if nbytes else 0
        self.stats.record_read(blocks, nbytes, sequential=True)
        self.stats.add_device_time(self.model.transfer_time(nbytes, sequential=True))
        dst_blocks = ceil_div(nbytes, other.block_size) if nbytes else 0
        other.stats.record_write(dst_blocks, nbytes, sequential=True)
        other.stats.add_device_time(other.model.transfer_time(nbytes, sequential=True))
        return nbytes

    # -- raw-fd cache (below the accounting layer) -------------------------------

    def _acquire_fd(self, name: str, path: Path, create: bool) -> _FdEntry:
        """Check a pinned descriptor entry for ``name`` out of the cache
        (opening it on a miss); must be paired with :meth:`_release_fd` on
        the *returned entry*.

        The pin count keeps the descriptor alive across eviction and
        :meth:`delete`, and releasing by entry (not by name) means a
        delete-and-recreate of the same name can never unpin the new
        file's descriptor.
        """
        with self._fd_lock:
            entry = self._fds.pop(name, None)
            if entry is not None:
                self._fds[name] = entry  # re-insert to bump LRU recency
                entry.refs += 1
                self.host_counters.fd_cache_hits += 1
                return entry
            self.host_counters.fd_cache_misses += 1
        flags = os.O_RDWR | (os.O_CREAT if create else 0)
        fd = os.open(path, flags, 0o644)
        with self._fd_lock:
            entry = self._fds.get(name)
            if entry is not None:
                # another thread opened it concurrently; keep theirs
                os.close(fd)
            else:
                entry = _FdEntry(fd)
                self._fds[name] = entry
                self._evict_locked()
            entry.refs += 1
            return entry

    def _release_fd(self, entry: _FdEntry) -> None:
        with self._fd_lock:
            entry.refs -= 1
            close_now = entry.closed and entry.refs == 0
        if close_now:
            os.close(entry.fd)

    def _evict_locked(self) -> None:
        if len(self._fds) <= MAX_CACHED_FDS:
            return
        for name in list(self._fds):
            if len(self._fds) <= MAX_CACHED_FDS:
                break
            entry = self._fds[name]
            if entry.refs == 0:
                del self._fds[name]
                entry.closed = True
                os.close(entry.fd)

    # -- mmap read cache (below the accounting layer) -----------------------------

    def _mmap_pread(self, name: str, path: Path, nbytes: int, offset: int):
        """Serve a read from a cached read-only mapping of ``name``.

        Returns the bytes (truncated at EOF exactly like ``os.pread``), or
        ``None`` when the mapping cannot serve the request -- missing or
        empty file (an empty file cannot be mapped) -- in which case the
        caller falls back to ``pread`` so error behaviour is unchanged.
        A request past the mapped size triggers a size probe: the mapping
        is rebuilt when the file has grown, otherwise the short read is
        served from the existing map.
        """
        if nbytes <= 0:
            return None  # let pread keep its exact zero-length/error behaviour
        with self._mmap_lock:
            mapped = self._mmaps.get(name)
            if mapped is None or offset + nbytes > len(mapped):
                try:
                    size = path.stat().st_size
                except OSError:
                    return None
                if mapped is not None and size != len(mapped):
                    self._mmaps.pop(name, None)
                    mapped.close()
                    mapped = None
                if mapped is None:
                    if size == 0:
                        return None
                    fd = os.open(path, os.O_RDONLY)
                    try:
                        mapped = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
                    finally:
                        os.close(fd)
                    self._mmaps[name] = mapped
            self.host_counters.mmap_served_reads += 1
            return mapped[offset : offset + nbytes]

    def _invalidate_mmap(self, name: str) -> None:
        """Drop the cached mapping after any write path touches ``name``."""
        if not self.mmap_reads:
            return
        with self._mmap_lock:
            mapped = self._mmaps.pop(name, None)
            if mapped is not None:
                mapped.close()

    def _close_fd(self, name: str) -> None:
        with self._fd_lock:
            entry = self._fds.pop(name, None)
            if entry is None:
                return
            entry.closed = True
            close_now = entry.refs == 0
        if close_now:
            os.close(entry.fd)

    def close(self) -> None:
        """Close every cached descriptor (idempotent; pinned descriptors are
        closed by their last release)."""
        with self._fd_lock:
            entries = list(self._fds.values())
            self._fds.clear()
            for entry in entries:
                entry.closed = True
            to_close = [entry.fd for entry in entries if entry.refs == 0]
        for fd in to_close:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed elsewhere
                pass
        with self._mmap_lock:
            maps = list(self._mmaps.values())
            self._mmaps.clear()
            for mapped in maps:
                mapped.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    # -- accounting primitives ---------------------------------------------------

    def charge_read(self, name: str, offset: int, nbytes: int) -> None:
        """Charge the accounting for a read served out-of-band.

        The parallel preprocessing master uses this to keep the modelled
        I/O of a fanned-out scan bit-identical to the serial scan it
        replaces: workers read the bytes below the accounting (raw
        ``np.fromfile`` or a shared-memory view), and the master charges
        each window here, in the serial scan's order.  Block rounding,
        sequential/random classification and modelled device time are
        exactly what a real :meth:`BlockFile.read_bytes` of the same
        ``(offset, nbytes)`` would have recorded.
        """
        self._account(name, offset, nbytes, write=False)

    def charge_write(self, name: str, offset: int, nbytes: int) -> None:
        """Charge the accounting for a write performed out-of-band
        (the write twin of :meth:`charge_read`)."""
        self._account(name, offset, nbytes, write=True)

    def _account(self, name: str, offset: int, nbytes: int, write: bool) -> None:
        if nbytes <= 0:
            return
        block_size = self.block_size
        first_block = offset // block_size
        last_block = (offset + nbytes - 1) // block_size
        blocks = last_block - first_block + 1
        # -1 is the "never accessed" sentinel: it makes the first access
        # sequential exactly when it starts at block 0, like the previous
        # None-based logic, with a single dict lookup on this hot path
        last = self._last_block.get(name, -1)
        sequential = first_block - 1 <= last <= first_block
        self._last_block[name] = last_block
        if write:
            self.stats.record_write(blocks, nbytes, sequential)
        else:
            self.stats.record_read(blocks, nbytes, sequential)
        self.stats.add_device_time(self.model.transfer_time(nbytes, sequential))


class BlockFile:
    """A single file on a :class:`BlockDevice` with typed numpy helpers.

    All byte offsets are explicit; the file object itself is stateless apart
    from its parent device's sequential/random tracking and the optional
    read-ahead buffer.  Numeric data is stored little-endian int64 unless a
    dtype is given.
    """

    def __init__(self, device: BlockDevice, name: str) -> None:
        self.device = device
        self.name = name
        self.path = device.path(name)
        self._ra_size = 0
        # (window_start, window_bytes): kept as ONE tuple so readers can
        # snapshot it with a single (GIL-atomic) attribute load -- a racing
        # writer swaps the whole pair, never a mismatched half
        self._ra_window: tuple[int, bytes] = (-1, b"")
        # create the file on first open so size/read of a fresh file behave
        # (cheap when the descriptor is already cached)
        with device._fd_lock:
            known = name in device._fds
        if not known and not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.touch()

    # -- read-ahead (below the accounting layer) -----------------------------------

    def set_readahead(self, buffer_bytes: int | str) -> None:
        """Enable (or, with ``0``, disable) an aligned read-ahead buffer.

        Reads are then served from a cached window of ``buffer_bytes``
        (rounded up to a whole number of device blocks) loaded with one
        host read, so a sequential scan touches the host filesystem once
        per window.  Accounting is unaffected: every logical read is still
        charged at its exact offset and length, so
        :class:`~repro.externalmem.iostats.IOStats` and modelled device
        seconds are bit-identical with the buffer on or off.

        The buffer assumes a read-mostly file: writes through *this* handle
        invalidate it, but writes through other handles to the same file do
        not -- enable read-ahead only on scan handles (as
        :meth:`repro.graph.binfmt.GraphFile.set_readahead` does for the
        adjacency file).  Concurrent readers sharing one buffered handle
        stay *correct* (each read serves from a private snapshot of the
        window), but they thrash each other's window -- give each scanning
        thread its own handle for performance.
        """
        nbytes = parse_size(buffer_bytes)
        if nbytes <= 0:
            self._ra_size = 0
        else:
            self._ra_size = ceil_div(nbytes, self.device.block_size) * self.device.block_size
        self._ra_window = (-1, b"")

    def _invalidate_readahead(self) -> None:
        self._ra_window = (-1, b"")

    def _pread(self, nbytes: int, offset: int) -> bytes:
        if self.device.mmap_reads:
            data = self.device._mmap_pread(self.name, self.path, nbytes, offset)
            if data is not None:
                return data
        entry = self.device._acquire_fd(self.name, self.path, create=False)
        try:
            return os.pread(entry.fd, nbytes, offset)
        finally:
            self.device._release_fd(entry)

    def _read_via_buffer(self, offset: int, nbytes: int) -> bytes:
        chunks: list[bytes] = []
        pos = offset
        remaining = nbytes
        loads = 0
        # private snapshot: consistent even if another thread swaps the
        # shared window mid-read
        window_start, window = self._ra_window
        while remaining > 0:
            if not (window_start >= 0 and window_start <= pos < window_start + len(window)):
                window_start = (pos // self._ra_size) * self._ra_size
                window = self._pread(self._ra_size, window_start)
                self._ra_window = (window_start, window)
                loads += 1
                if pos >= window_start + len(window):
                    break  # at or past EOF
            take = min(remaining, window_start + len(window) - pos)
            lo = pos - window_start
            chunks.append(window[lo : lo + take])
            pos += take
            remaining -= take
            if remaining > 0 and len(window) < self._ra_size:
                break  # the window ends at EOF; nothing further to read
        counters = self.device.host_counters
        if loads:
            counters.readahead_misses += 1
            counters.readahead_window_loads += loads
        else:
            counters.readahead_hits += 1
        return b"".join(chunks)

    # -- raw byte interface -------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.path.stat().st_size

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        if self._ra_size:
            data = self._read_via_buffer(offset, nbytes)
        else:
            data = self._pread(nbytes, offset)
        self.device._account(self.name, offset, len(data), write=False)
        return data

    def write_bytes(self, offset: int, data: bytes) -> int:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        entry = self.device._acquire_fd(self.name, self.path, create=True)
        try:
            os.pwrite(entry.fd, data, offset)
        finally:
            self.device._release_fd(entry)
        self._invalidate_readahead()
        self.device._invalidate_mmap(self.name)
        self.device._account(self.name, offset, len(data), write=True)
        return len(data)

    def append_bytes(self, data: bytes) -> int:
        entry = self.device._acquire_fd(self.name, self.path, create=True)
        try:
            with entry.append_lock:
                offset = os.fstat(entry.fd).st_size
                os.pwrite(entry.fd, data, offset)
        finally:
            self.device._release_fd(entry)
        self._invalidate_readahead()
        self.device._invalidate_mmap(self.name)
        self.device._account(self.name, offset, len(data), write=True)
        return len(data)

    def truncate(self, nbytes: int = 0) -> None:
        entry = self.device._acquire_fd(self.name, self.path, create=False)
        try:
            os.ftruncate(entry.fd, nbytes)
        finally:
            self.device._release_fd(entry)
        self._invalidate_readahead()
        self.device._invalidate_mmap(self.name)

    # -- typed numpy interface -------------------------------------------------------

    def write_array(self, array: np.ndarray, offset_items: int = 0) -> int:
        """Write a 1-D numpy array at an item offset; returns items written."""
        arr = np.ascontiguousarray(array)
        itemsize = arr.dtype.itemsize
        self.write_bytes(offset_items * itemsize, arr.tobytes())
        return int(arr.size)

    def append_array(self, array: np.ndarray) -> int:
        arr = np.ascontiguousarray(array)
        self.append_bytes(arr.tobytes())
        return int(arr.size)

    def read_array(
        self, offset_items: int, num_items: int, dtype: np.dtype | type = np.int64
    ) -> np.ndarray:
        """Read ``num_items`` elements of ``dtype`` starting at an item offset."""
        dt = np.dtype(dtype)
        raw = self.read_bytes(offset_items * dt.itemsize, num_items * dt.itemsize)
        return np.frombuffer(raw, dtype=dt).copy()

    def num_items(self, dtype: np.dtype | type = np.int64) -> int:
        dt = np.dtype(dtype)
        return self.size_bytes // dt.itemsize

    def iter_chunks(
        self, chunk_items: int, dtype: np.dtype | type = np.int64
    ) -> Iterator[np.ndarray]:
        """Sequentially stream the whole file in chunks of ``chunk_items``."""
        if chunk_items <= 0:
            raise ValueError("chunk_items must be positive")
        total = self.num_items(dtype)
        offset = 0
        while offset < total:
            count = min(chunk_items, total - offset)
            yield self.read_array(offset, count, dtype)
            offset += count

    def delete(self) -> None:
        self.device.delete(self.name)
