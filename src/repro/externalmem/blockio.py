"""Simulated block device over a real directory, with full I/O accounting.

PDTL is an external-memory algorithm, so the *unit of cost* is the block
transfer, not the byte.  :class:`BlockDevice` wraps a directory of ordinary
files but routes every read and write through block-granular accounting:

* each access is rounded out to whole blocks of ``block_size`` bytes;
* an access is *sequential* if it starts at the block immediately after the
  previous access to the same file (the cheap case of the Aggarwal–Vitter
  model), otherwise it is *random*;
* when a bandwidth/latency model is configured, the device also accumulates
  the modelled transfer time, which is what the paper's Figures 6–8
  ("I/O seconds" per node) correspond to in this reproduction.

The files themselves are real files on the host filesystem so that the
data genuinely leaves process memory -- the memory budget of an MGT worker
only ever holds the ``Θ(M)`` edge window plus per-vertex scratch arrays,
exactly as in the paper.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import PDTLError
from repro.externalmem.iostats import IOStats
from repro.utils import ceil_div, parse_size

__all__ = ["BlockDevice", "BlockFile", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 4096


@dataclass
class DiskModel:
    """Simple performance model for a simulated disk.

    ``bandwidth_bytes_per_s`` caps sequential throughput;
    ``seek_latency_s`` is added per random access.  The defaults model the
    Samsung 840 SSD used in the paper's local machines (~500 MB/s
    sequential, ~0.1 ms access).
    """

    bandwidth_bytes_per_s: float = 500e6
    seek_latency_s: float = 1e-4

    def transfer_time(self, nbytes: int, sequential: bool) -> float:
        time = nbytes / self.bandwidth_bytes_per_s if self.bandwidth_bytes_per_s else 0.0
        if not sequential:
            time += self.seek_latency_s
        return time


class BlockDevice:
    """A directory-backed simulated disk with block-level accounting.

    Parameters
    ----------
    root:
        directory that holds the device's files (created if missing).
    block_size:
        block size ``B`` in bytes; all I/O is rounded to whole blocks.
    model:
        optional :class:`DiskModel` used to accumulate modelled device time.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        block_size: int | str = DEFAULT_BLOCK_SIZE,
        model: DiskModel | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.block_size = parse_size(block_size)
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        self.model = model if model is not None else DiskModel()
        self.stats = IOStats(block_size=self.block_size)
        self._last_block: dict[str, int] = {}

    # -- file management -------------------------------------------------------

    def path(self, name: str) -> Path:
        p = (self.root / name).resolve()
        if self.root.resolve() not in p.parents and p != self.root.resolve():
            raise PDTLError(f"file name {name!r} escapes the device root")
        return p

    def open(self, name: str) -> "BlockFile":
        """Open (or create) a file on this device."""
        return BlockFile(self, name)

    def exists(self, name: str) -> bool:
        return self.path(name).exists()

    def file_size(self, name: str) -> int:
        p = self.path(name)
        return p.stat().st_size if p.exists() else 0

    def delete(self, name: str) -> None:
        p = self.path(name)
        if p.exists():
            p.unlink()
        self._last_block.pop(name, None)

    def list_files(self) -> list[str]:
        return sorted(
            str(p.relative_to(self.root)) for p in self.root.rglob("*") if p.is_file()
        )

    def clear(self) -> None:
        """Delete every file on the device (used between benchmark repetitions,
        mirroring the paper's explicit clearing of disk caches)."""
        for name in self.list_files():
            self.delete(name)
        for child in self.root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)
        self._last_block.clear()

    def copy_file(self, name: str, other: "BlockDevice", dest_name: str | None = None) -> int:
        """Copy a file to another device, charging a full sequential scan on
        both sides.  Returns the number of bytes copied.

        This is the primitive behind the master-to-client graph duplication
        whose cost Table III reports as "avg copy time".
        """
        dest_name = dest_name if dest_name is not None else name
        src_path = self.path(name)
        if not src_path.exists():
            raise PDTLError(f"cannot copy missing file {name!r}")
        nbytes = src_path.stat().st_size
        dst_path = other.path(dest_name)
        dst_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(src_path, dst_path)
        blocks = ceil_div(nbytes, self.block_size) if nbytes else 0
        self.stats.record_read(blocks, nbytes, sequential=True)
        self.stats.add_device_time(self.model.transfer_time(nbytes, sequential=True))
        dst_blocks = ceil_div(nbytes, other.block_size) if nbytes else 0
        other.stats.record_write(dst_blocks, nbytes, sequential=True)
        other.stats.add_device_time(other.model.transfer_time(nbytes, sequential=True))
        return nbytes

    # -- accounting primitives ---------------------------------------------------

    def _account(self, name: str, offset: int, nbytes: int, write: bool) -> None:
        if nbytes <= 0:
            return
        first_block = offset // self.block_size
        last_block = (offset + nbytes - 1) // self.block_size
        blocks = last_block - first_block + 1
        sequential = self._last_block.get(name) == first_block - 1 or (
            self._last_block.get(name) is None and first_block == 0
        ) or self._last_block.get(name) == first_block
        self._last_block[name] = last_block
        if write:
            self.stats.record_write(blocks, nbytes, sequential)
        else:
            self.stats.record_read(blocks, nbytes, sequential)
        self.stats.add_device_time(self.model.transfer_time(nbytes, sequential))


class BlockFile:
    """A single file on a :class:`BlockDevice` with typed numpy helpers.

    All byte offsets are explicit; the file object itself is stateless apart
    from its parent device's sequential/random tracking.  Numeric data is
    stored little-endian int64 unless a dtype is given.
    """

    def __init__(self, device: BlockDevice, name: str) -> None:
        self.device = device
        self.name = name
        self.path = device.path(name)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self.path.touch()

    # -- raw byte interface -------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.path.stat().st_size

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        with self.path.open("rb") as fh:
            fh.seek(offset)
            data = fh.read(nbytes)
        self.device._account(self.name, offset, len(data), write=False)
        return data

    def write_bytes(self, offset: int, data: bytes) -> int:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        with self.path.open("r+b") as fh:
            fh.seek(offset)
            fh.write(data)
        self.device._account(self.name, offset, len(data), write=True)
        return len(data)

    def append_bytes(self, data: bytes) -> int:
        offset = self.size_bytes
        with self.path.open("ab") as fh:
            fh.write(data)
        self.device._account(self.name, offset, len(data), write=True)
        return len(data)

    def truncate(self, nbytes: int = 0) -> None:
        with self.path.open("r+b") as fh:
            fh.truncate(nbytes)

    # -- typed numpy interface -------------------------------------------------------

    def write_array(self, array: np.ndarray, offset_items: int = 0) -> int:
        """Write a 1-D numpy array at an item offset; returns items written."""
        arr = np.ascontiguousarray(array)
        itemsize = arr.dtype.itemsize
        self.write_bytes(offset_items * itemsize, arr.tobytes())
        return int(arr.size)

    def append_array(self, array: np.ndarray) -> int:
        arr = np.ascontiguousarray(array)
        self.append_bytes(arr.tobytes())
        return int(arr.size)

    def read_array(
        self, offset_items: int, num_items: int, dtype: np.dtype | type = np.int64
    ) -> np.ndarray:
        """Read ``num_items`` elements of ``dtype`` starting at an item offset."""
        dt = np.dtype(dtype)
        raw = self.read_bytes(offset_items * dt.itemsize, num_items * dt.itemsize)
        return np.frombuffer(raw, dtype=dt).copy()

    def num_items(self, dtype: np.dtype | type = np.int64) -> int:
        dt = np.dtype(dtype)
        return self.size_bytes // dt.itemsize

    def iter_chunks(
        self, chunk_items: int, dtype: np.dtype | type = np.int64
    ) -> Iterator[np.ndarray]:
        """Sequentially stream the whole file in chunks of ``chunk_items``."""
        if chunk_items <= 0:
            raise ValueError("chunk_items must be positive")
        total = self.num_items(dtype)
        offset = 0
        while offset < total:
            count = min(chunk_items, total - offset)
            yield self.read_array(offset, count, dtype)
            offset += count

    def delete(self) -> None:
        self.device.delete(self.name)
