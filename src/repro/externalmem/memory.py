"""Per-processor memory budgets.

Every MGT worker in PDTL receives ``M`` bytes of memory and never allocates
more than the ``Θ(M)`` edge window plus a few ``d*_max``-sized scratch
arrays; partition-based baselines, by contrast, need the whole partition
(plus replicated boundary vertices) resident.  :class:`MemoryBudget` makes
that difference observable: allocations are tracked explicitly and
exceeding the budget raises :class:`~repro.errors.OutOfMemoryError`, which
is how the PowerGraph/PATRIC baselines reproduce the "F" out-of-memory
entries of Table VI / Table XIV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.utils import format_size, parse_size

__all__ = ["MemoryBudget"]


@dataclass
class MemoryBudget:
    """A strict byte budget with named allocations and peak tracking.

    The budget is deliberately simple (no paging, no eviction): if a
    component requests more than is free, :class:`OutOfMemoryError` is
    raised immediately, matching how the compared systems fail in the
    paper's experiments rather than thrash.
    """

    capacity: int
    allocations: dict[str, int] = field(default_factory=dict)
    peak_usage: int = 0

    def __init__(self, capacity: int | str) -> None:
        cap = parse_size(capacity)
        if cap <= 0:
            raise ConfigurationError(f"memory capacity must be positive, got {cap}")
        self.capacity = cap
        self.allocations = {}
        self.peak_usage = 0

    # -- bookkeeping ----------------------------------------------------------

    @property
    def used(self) -> int:
        return sum(self.allocations.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def allocate(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name`` (replacing any prior reservation)."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        current = self.allocations.get(name, 0)
        projected = self.used - current + nbytes
        if projected > self.capacity:
            raise OutOfMemoryError(
                requested=nbytes,
                available=self.capacity - (self.used - current),
                context=f"allocation {name!r} on budget of {format_size(self.capacity)}",
            )
        self.allocations[name] = nbytes
        self.peak_usage = max(self.peak_usage, projected)

    def allocate_array(self, name: str, shape: int | tuple[int, ...], dtype=np.int64) -> np.ndarray:
        """Allocate and return a zeroed numpy array charged against the budget."""
        arr = np.zeros(shape, dtype=dtype)
        self.allocate(name, arr.nbytes)
        return arr

    def release(self, name: str) -> None:
        self.allocations.pop(name, None)

    def release_all(self) -> None:
        self.allocations.clear()

    def require(self, nbytes: int, context: str = "") -> None:
        """Check that a transient allocation of ``nbytes`` would fit, without
        actually reserving it."""
        if self.used + int(nbytes) > self.capacity:
            raise OutOfMemoryError(int(nbytes), self.free, context)

    # -- capacity helpers ---------------------------------------------------------

    def max_items(self, itemsize: int, reserve_fraction: float = 0.0) -> int:
        """How many items of ``itemsize`` bytes fit in the *free* budget,
        after holding back ``reserve_fraction`` of the capacity."""
        if itemsize <= 0:
            raise ValueError("itemsize must be positive")
        reserve = int(self.capacity * reserve_fraction)
        usable = max(self.free - reserve, 0)
        return usable // itemsize

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(capacity={format_size(self.capacity)}, "
            f"used={format_size(self.used)}, peak={format_size(self.peak_usage)})"
        )
