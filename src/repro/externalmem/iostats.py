"""I/O statistics counters and the Aggarwal–Vitter cost formulas.

Two distinct things live here on purpose:

* :class:`IOStats` counts what a :class:`~repro.externalmem.blockio.BlockDevice`
  *actually did* (block reads/writes, sequential vs. random, bytes moved,
  modelled device time);
* :func:`scan_io_cost` / :func:`sort_io_cost` compute what the theory says
  an access pattern *should* cost, so benchmarks can compare measured
  counters against the Theorem IV.2 / IV.3 predictions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

__all__ = ["IOStats", "scan_io_cost", "sort_io_cost"]


@dataclass
class IOStats:
    """Mutable block-I/O counters attached to a block device or file.

    ``sequential_reads`` counts block reads whose block id directly follows
    the previously read block of the same file (the cheap case in the
    external-memory model); everything else is a ``random_read``.  The same
    split applies to writes.  ``device_seconds`` accumulates the modelled
    transfer time when the owning device has a bandwidth/latency model
    attached; it is what the Figure 6-8 I/O-vs-CPU breakdowns report.
    """

    block_size: int = 4096
    blocks_read: int = 0
    blocks_written: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_calls: int = 0
    write_calls: int = 0
    device_seconds: float = 0.0

    @property
    def total_blocks(self) -> int:
        return self.blocks_read + self.blocks_written

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def record_read(self, blocks: int, nbytes: int, sequential: bool) -> None:
        self.blocks_read += blocks
        self.bytes_read += nbytes
        self.read_calls += 1
        if sequential:
            self.sequential_reads += blocks
        else:
            self.random_reads += blocks

    def record_write(self, blocks: int, nbytes: int, sequential: bool) -> None:
        self.blocks_written += blocks
        self.bytes_written += nbytes
        self.write_calls += 1
        if sequential:
            self.sequential_writes += blocks
        else:
            self.random_writes += blocks

    def add_device_time(self, seconds: float) -> None:
        self.device_seconds += float(seconds)

    def merge(self, other: "IOStats") -> None:
        """Accumulate another counter set into this one (block size kept)."""
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def reset(self) -> None:
        block_size = self.block_size
        self.__init__(block_size=block_size)  # type: ignore[misc]

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        copy = IOStats(block_size=self.block_size)
        copy.merge(self)
        return copy

    def delta(self, baseline: "IOStats") -> "IOStats":
        """Counters accumulated since ``baseline`` (an earlier snapshot).

        Used to isolate one phase of a run -- e.g. the master's
        preprocessing I/O -- so tests can assert that two execution
        strategies charged exactly the same accounting for that phase.
        """
        diff = IOStats(block_size=self.block_size)
        for name in _COUNTER_FIELDS:
            setattr(diff, name, getattr(self, name) - getattr(baseline, name))
        return diff

    def as_dict(self) -> dict[str, float]:
        # kept explicit (stable key order documented by the tests); merge()
        # and delta() iterate _COUNTER_FIELDS so a new counter cannot be
        # silently dropped from either
        return {
            "block_size": self.block_size,
            "blocks_read": self.blocks_read,
            "blocks_written": self.blocks_written,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
            "sequential_writes": self.sequential_writes,
            "random_writes": self.random_writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "read_calls": self.read_calls,
            "write_calls": self.write_calls,
            "device_seconds": self.device_seconds,
        }


#: Every IOStats field except the block size is an additive counter;
#: merge() and delta() iterate this so new counters join them automatically.
_COUNTER_FIELDS = tuple(f.name for f in fields(IOStats) if f.name != "block_size")


def scan_io_cost(num_elements: int, block_size_elements: int) -> int:
    """``scan(N) = ⌈N / B⌉`` block I/Os for reading N elements sequentially."""
    if block_size_elements <= 0:
        raise ValueError("block size must be positive")
    if num_elements <= 0:
        return 0
    return -(-num_elements // block_size_elements)


def sort_io_cost(
    num_elements: int, memory_elements: int, block_size_elements: int
) -> int:
    """``sort(N) = Θ((N/B) log_{M/B}(N/B))`` block I/Os for external merge sort.

    Returns the ceiling of the formula with the logarithm clamped to at
    least 1 (a single merge pass), which matches the behaviour of the
    concrete :func:`~repro.externalmem.extsort.external_sort_edges`
    implementation when the data fits in memory.
    """
    if block_size_elements <= 0 or memory_elements <= 0:
        raise ValueError("block size and memory must be positive")
    if num_elements <= 0:
        return 0
    n_over_b = num_elements / block_size_elements
    m_over_b = max(memory_elements / block_size_elements, 2.0)
    passes = max(math.log(max(n_over_b, 2.0), m_over_b), 1.0)
    return int(math.ceil(n_over_b * passes))
