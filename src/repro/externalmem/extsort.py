"""External merge sort of on-disk edge files under a memory cap.

Theorem IV.2 notes that when the input graph is not already sorted, PDTL
pays an additional ``O(sort(|E|))`` I/Os and ``O(|E| log |E|)`` CPU before
orientation can run.  This module provides that step as a standalone,
fully external k-way merge sort over edge records ``(source, destination)``
stored as consecutive int64 pairs in a :class:`~repro.externalmem.blockio.BlockFile`.

The implementation follows the classic two-phase scheme:

1. **Run formation** -- read windows of at most ``memory_items`` edges,
   sort them in memory (numpy lexsort), and write each as a sorted run to a
   temporary file on the same device.
2. **K-way merge** -- repeatedly merge up to ``fan_in`` runs into longer
   runs until one run remains; the fan-in is derived from the memory cap so
   the merge buffers also respect ``M``.

The merge phase is *vectorised*: each run is buffered in block-sized
chunks, records are encoded as packed ``src * base + dst`` int64 keys, and
every round splices out the prefix of each buffer that is provably safe to
emit (all keys up to the smallest buffer-tail key across runs), merging the
prefixes with one stable ``argsort`` and writing the output in full
buffers.  The Python work per round is proportional to the *number of
runs*, not the number of edges, which is what makes the merge orders of
magnitude cheaper than the per-edge ``heapq`` loop it replaced.  That
original loop is retained as ``merge_impl="heapq"`` -- it remains the
serial reference the equivalence tests and the CI perf-smoke job compare
against, and the fallback for inputs that cannot be packed into int64 keys
(negative ids, or ``max_src * (max_dst + 1)`` overflowing 63 bits).

Both merge implementations issue byte-identical I/O: the same per-run
refill chunks and the same full-buffer output writes, so
:class:`~repro.externalmem.iostats.IOStats` block counts and modelled
device seconds do not depend on the chosen implementation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.errors import ConfigurationError
from repro.externalmem.blockio import BlockDevice, BlockFile
from repro.utils import Timer

__all__ = ["external_sort_edges", "ExternalSortResult"]

_EDGE_ITEMS = 2  # int64 words per edge record
_EDGE_BYTES = _EDGE_ITEMS * 8

#: Inclusive clamp applied to the derived merge fan-in.  The lower bound
#: keeps the merge a true k-way merge; the upper bound caps the number of
#: simultaneously open run files (and the per-round ``argsort`` width).
MIN_FAN_IN = 2
MAX_FAN_IN = 64


@dataclass(frozen=True)
class ExternalSortResult:
    """Outcome of an external sort: the output file plus run statistics.

    ``formation_seconds`` / ``merge_seconds`` are host wall-clock timings of
    the two phases (run formation is a numpy ``lexsort`` in both merge
    implementations; the merge phase is where ``"vectorized"`` and
    ``"heapq"`` differ), recorded so the perf harness can attribute
    speedups to the phase that actually changed.
    """

    output_name: str
    num_edges: int
    num_runs: int
    merge_passes: int
    fan_in: int = 0
    formation_seconds: float = 0.0
    merge_seconds: float = 0.0


def _read_edges(file: BlockFile, offset_edges: int, count_edges: int) -> np.ndarray:
    flat = file.read_array(offset_edges * _EDGE_ITEMS, count_edges * _EDGE_ITEMS)
    return flat.reshape(-1, _EDGE_ITEMS)


def _write_edges(file: BlockFile, edges: np.ndarray) -> None:
    file.append_array(np.ascontiguousarray(edges, dtype=np.int64).reshape(-1))


def _sort_in_memory(edges: np.ndarray) -> np.ndarray:
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


class _RunReader:
    """Buffered sequential reader over one sorted run (scalar ``heapq`` path)."""

    def __init__(self, file: BlockFile, buffer_edges: int) -> None:
        self.file = file
        self.buffer_edges = max(buffer_edges, 1)
        self.total_edges = file.num_items() // _EDGE_ITEMS
        self.position = 0
        self.buffer = np.empty((0, _EDGE_ITEMS), dtype=np.int64)
        self.buffer_pos = 0

    def _refill(self) -> bool:
        if self.position >= self.total_edges:
            return False
        count = min(self.buffer_edges, self.total_edges - self.position)
        self.buffer = _read_edges(self.file, self.position, count)
        self.position += count
        self.buffer_pos = 0
        return True

    def peek(self) -> tuple[int, int] | None:
        if self.buffer_pos >= self.buffer.shape[0] and not self._refill():
            return None
        row = self.buffer[self.buffer_pos]
        return int(row[0]), int(row[1])

    def pop(self) -> tuple[int, int]:
        value = self.peek()
        if value is None:
            raise StopIteration
        self.buffer_pos += 1
        return value


class _RunBuffer:
    """Block-buffered array reader over one sorted run (vectorised path).

    Holds the current refill chunk both as an ``(k, 2)`` edge array and as
    packed int64 keys; :meth:`take_upto` splices out the sorted prefix with
    keys ``<= limit`` via one binary search.
    """

    def __init__(self, file: BlockFile, buffer_edges: int, key_base: int) -> None:
        self.file = file
        self.buffer_edges = max(buffer_edges, 1)
        self.key_base = key_base
        self.total_edges = file.num_items() // _EDGE_ITEMS
        self.position = 0
        self.edges = np.empty((0, _EDGE_ITEMS), dtype=np.int64)
        self.keys = np.empty(0, dtype=np.int64)
        self.cursor = 0
        # head/tail cached as plain ints: the merge loop compares them every
        # round, and a numpy scalar indexing per comparison would dominate
        self.head_key = 0
        self.tail_key = 0

    def ensure_filled(self) -> bool:
        """Make the buffer non-empty; False when the run is exhausted."""
        if self.cursor < self.keys.shape[0]:
            return True
        if self.position >= self.total_edges:
            return False
        count = min(self.buffer_edges, self.total_edges - self.position)
        # zero-copy refill: the raw bytes are never mutated, so the
        # read-only frombuffer view is enough (read_array would copy)
        raw = self.file.read_bytes(
            self.position * _EDGE_BYTES, count * _EDGE_BYTES
        )
        self.edges = np.frombuffer(raw, dtype=np.int64).reshape(-1, _EDGE_ITEMS)
        self.position += count
        self.keys = self.edges[:, 0] * np.int64(self.key_base) + self.edges[:, 1]
        self.cursor = 0
        self.head_key = int(self.keys[0])
        self.tail_key = int(self.keys[-1])
        return True

    def take_upto(self, limit: int) -> tuple[np.ndarray, np.ndarray]:
        """Consume and return ``(rows, keys)`` of every buffered record ``<= limit``."""
        if self.tail_key <= limit:
            hi = self.keys.shape[0]
        else:
            hi = int(self.keys.searchsorted(limit, side="right"))
        rows = self.edges[self.cursor : hi]
        keys = self.keys[self.cursor : hi]
        self.cursor = hi
        if hi < self.keys.shape[0]:
            self.head_key = int(self.keys[hi])
        return rows, keys


def _derive_fan_in(memory_edges: int, block_size: int) -> int:
    """Merge fan-in under the memory cap: one block-sized stream buffer per
    input run plus one for the output must fit in ``memory_edges``."""
    buffer_edges = max(block_size // _EDGE_BYTES, 1)
    return max(min(memory_edges // buffer_edges - 1, MAX_FAN_IN), MIN_FAN_IN)


def external_sort_edges(
    device: BlockDevice,
    input_name: str,
    output_name: str,
    memory_bytes: int,
    fan_in: int | None = None,
    temp_prefix: str = "_extsort",
    merge_impl: str = "vectorized",
) -> ExternalSortResult:
    """Sort the edge file ``input_name`` by (source, destination).

    Parameters
    ----------
    device:
        block device holding both input and output.
    memory_bytes:
        memory cap ``M``; the in-memory window and merge buffers are sized
        so their combined footprint stays within this cap.
    fan_in:
        maximum number of runs merged at once; derived from the memory cap
        and the device block size when omitted (``memory_edges //
        buffer_edges - 1`` clamped to ``[2, 64]``, one block-sized buffer
        per stream).
    merge_impl:
        ``"vectorized"`` (default) merges runs with buffered numpy packed-key
        splicing; ``"heapq"`` uses the original per-edge heap loop.  Both
        produce identical output files and identical I/O accounting.

    Returns an :class:`ExternalSortResult`.  The input file is left intact.
    """
    if memory_bytes < _EDGE_BYTES * 4:
        raise ConfigurationError(
            f"memory budget of {memory_bytes} bytes is too small to sort edges"
        )
    if merge_impl not in ("vectorized", "heapq"):
        raise ConfigurationError(
            f"merge_impl must be 'vectorized' or 'heapq', got {merge_impl!r}"
        )
    infile = device.open(input_name)
    total_edges = infile.num_items() // _EDGE_ITEMS
    memory_edges = max(memory_bytes // _EDGE_BYTES, 4)

    # Phase 1: run formation (also records the value range so the merge can
    # decide whether packed int64 keys are exact for this input)
    formation_timer = Timer().start()
    run_names: list[str] = []
    max_src = -1
    max_dst = -1
    min_value = 0
    offset = 0
    while offset < total_edges:
        count = min(memory_edges, total_edges - offset)
        window = _read_edges(infile, offset, count)
        if window.size:
            max_src = max(max_src, int(window[:, 0].max()))
            max_dst = max(max_dst, int(window[:, 1].max()))
            min_value = min(min_value, int(window.min()))
        sorted_window = _sort_in_memory(window)
        run_name = f"{temp_prefix}_run{len(run_names)}.bin"
        device.delete(run_name)
        _write_edges(device.open(run_name), sorted_window)
        run_names.append(run_name)
        offset += count
    num_runs = len(run_names)
    formation_timer.stop()

    if fan_in is None:
        fan_in = _derive_fan_in(memory_edges, device.block_size)

    if num_runs == 0:
        device.delete(output_name)
        device.open(output_name)  # create empty output
        return ExternalSortResult(
            output_name, 0, 0, 0, fan_in, formation_timer.elapsed, 0.0
        )

    key_base = max_dst + 1
    packable = (
        min_value >= 0 and max_src * key_base + max_dst <= np.iinfo(np.int64).max
    )
    vectorized = merge_impl == "vectorized" and packable

    # Phase 2: iterative k-way merges
    merge_timer = Timer().start()
    merge_passes = 0
    current = list(run_names)
    generation = 0
    while len(current) > 1:
        merge_passes += 1
        next_runs: list[str] = []
        for group_start in range(0, len(current), fan_in):
            group = current[group_start : group_start + fan_in]
            out_name = f"{temp_prefix}_g{generation}_m{len(next_runs)}.bin"
            device.delete(out_name)
            if vectorized:
                _merge_runs_vectorized(device, group, out_name, memory_edges, key_base)
            else:
                _merge_runs_heapq(device, group, out_name, memory_edges)
            next_runs.append(out_name)
            for name in group:
                device.delete(name)
        current = next_runs
        generation += 1

    final_run = current[0]
    device.delete(output_name)
    # rename by copying through the device so accounting stays consistent
    data = device.open(final_run)
    out = device.open(output_name)
    buffer_edges = max(memory_edges // 2, 1)
    pos = 0
    run_total = data.num_items() // _EDGE_ITEMS
    while pos < run_total:
        count = min(buffer_edges, run_total - pos)
        out.append_array(_read_edges(data, pos, count).reshape(-1))
        pos += count
    device.delete(final_run)
    merge_timer.stop()

    return ExternalSortResult(
        output_name,
        total_edges,
        num_runs,
        merge_passes,
        fan_in,
        formation_timer.elapsed,
        merge_timer.elapsed,
    )


def _merge_runs_vectorized(
    device: BlockDevice,
    run_names: list[str],
    output_name: str,
    memory_edges: int,
    key_base: int,
) -> None:
    """Merge sorted runs with buffered numpy splicing (no per-edge Python).

    Every round computes the *safe boundary* -- the smallest buffer-tail
    key across the still-active runs.  Any buffered record with a key at or
    below that boundary precedes every record not yet read from disk, so
    the per-run prefixes up to the boundary can be merged (one stable
    ``argsort`` over their concatenation) and emitted immediately.  At
    least one run drains its whole buffer per round (the one holding the
    minimum), so each record is spliced exactly once.
    """
    per_run = max(memory_edges // (len(run_names) + 1), 1)
    readers = [_RunBuffer(device.open(name), per_run, key_base) for name in run_names]
    out = device.open(output_name)
    out_capacity = max(per_run, 1)
    pending: list[np.ndarray] = []
    pending_count = 0

    active = [reader for reader in readers if reader.ensure_filled()]
    while active:
        if len(active) == 1:
            # only one run still holds records: stream its buffers through
            reader = active[0]
            merged = reader.edges[reader.cursor :]
            reader.cursor = reader.keys.shape[0]
        else:
            limit = min(reader.tail_key for reader in active)
            row_chunks: list[np.ndarray] = []
            key_chunks: list[np.ndarray] = []
            for reader in active:
                if reader.head_key > limit:
                    continue  # nothing safe to splice from this run yet
                rows, keys = reader.take_upto(limit)
                if rows.shape[0]:
                    row_chunks.append(rows)
                    key_chunks.append(keys)
            if len(row_chunks) == 1:
                merged = row_chunks[0]
            elif len(row_chunks) == 2:
                # two contributing runs: the shared galloping merge places
                # both prefixes with two binary searches (stable, run 0
                # first on ties -- the heap's (src, dst, run_index) order)
                pos_a, pos_b = kernels.merge_positions(key_chunks[0], key_chunks[1])
                merged = np.empty(
                    (pos_a.shape[0] + pos_b.shape[0], _EDGE_ITEMS), dtype=np.int64
                )
                merged[pos_a] = row_chunks[0]
                merged[pos_b] = row_chunks[1]
            else:
                # stable sort keeps equal keys in run order -- the same
                # tie-break the heap's (src, dst, run_index) entries produce
                order = np.argsort(np.concatenate(key_chunks), kind="stable")
                merged = np.concatenate(row_chunks)[order]
        pending.append(merged)
        pending_count += int(merged.shape[0])
        if pending_count >= out_capacity:
            # flush in exactly the full-buffer chunks the heap loop writes,
            # so the output I/O pattern (and its accounting) is unchanged
            data = pending[0] if len(pending) == 1 else np.concatenate(pending)
            flush = 0
            while data.shape[0] - flush >= out_capacity:
                _write_edges(out, data[flush : flush + out_capacity])
                flush += out_capacity
            rest = data[flush:]
            pending = [rest] if rest.shape[0] else []
            pending_count = int(rest.shape[0])
        active = [reader for reader in active if reader.ensure_filled()]

    if pending_count:
        _write_edges(out, pending[0] if len(pending) == 1 else np.concatenate(pending))


def _merge_runs_heapq(
    device: BlockDevice, run_names: list[str], output_name: str, memory_edges: int
) -> None:
    """The original per-edge heap merge, kept as the serial reference."""
    per_run = max(memory_edges // (len(run_names) + 1), 1)
    readers = [_RunReader(device.open(name), per_run) for name in run_names]
    out = device.open(output_name)
    out_buffer: list[tuple[int, int]] = []
    out_capacity = max(per_run, 1)

    heap: list[tuple[int, int, int]] = []
    for i, reader in enumerate(readers):
        head = reader.peek()
        if head is not None:
            heapq.heappush(heap, (head[0], head[1], i))

    while heap:
        src, dst, idx = heapq.heappop(heap)
        readers[idx].pop()
        out_buffer.append((src, dst))
        if len(out_buffer) >= out_capacity:
            _write_edges(out, np.array(out_buffer, dtype=np.int64))
            out_buffer.clear()
        head = readers[idx].peek()
        if head is not None:
            heapq.heappush(heap, (head[0], head[1], idx))

    if out_buffer:
        _write_edges(out, np.array(out_buffer, dtype=np.int64))


def edge_file_num_edges(device: BlockDevice, name: str) -> int:
    """Number of edge records in a binary edge file on ``device``."""
    return device.open(name).num_items() // _EDGE_ITEMS


def write_edge_file(device: BlockDevice, name: str, edges: np.ndarray) -> int:
    """Write an ``(m, 2)`` edge array as a flat int64 edge file; returns m."""
    device.delete(name)
    file = device.open(name)
    arr = np.ascontiguousarray(edges, dtype=np.int64)
    if arr.size:
        file.append_array(arr.reshape(-1))
    return int(arr.shape[0]) if arr.ndim == 2 else 0


def read_edge_file(device: BlockDevice, name: str) -> np.ndarray:
    """Read an entire binary edge file back as an ``(m, 2)`` array."""
    file = device.open(name)
    total = file.num_items()
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    flat = file.read_array(0, total)
    return flat.reshape(-1, _EDGE_ITEMS)
