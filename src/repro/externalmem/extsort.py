"""External merge sort of on-disk edge files under a memory cap.

Theorem IV.2 notes that when the input graph is not already sorted, PDTL
pays an additional ``O(sort(|E|))`` I/Os and ``O(|E| log |E|)`` CPU before
orientation can run.  This module provides that step as a standalone,
fully external k-way merge sort over edge records ``(source, destination)``
stored as consecutive int64 pairs in a :class:`~repro.externalmem.blockio.BlockFile`.

The implementation follows the classic two-phase scheme:

1. **Run formation** -- read windows of at most ``memory_items`` edges,
   sort them in memory (numpy lexsort), and write each as a sorted run to a
   temporary file on the same device.
2. **K-way merge** -- repeatedly merge up to ``fan_in`` runs into longer
   runs until one run remains; the fan-in is derived from the memory cap so
   the merge buffers also respect ``M``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.externalmem.blockio import BlockDevice, BlockFile
from repro.utils import ceil_div

__all__ = ["external_sort_edges", "ExternalSortResult"]

_EDGE_ITEMS = 2  # int64 words per edge record


@dataclass(frozen=True)
class ExternalSortResult:
    """Outcome of an external sort: the output file plus run statistics."""

    output_name: str
    num_edges: int
    num_runs: int
    merge_passes: int


def _read_edges(file: BlockFile, offset_edges: int, count_edges: int) -> np.ndarray:
    flat = file.read_array(offset_edges * _EDGE_ITEMS, count_edges * _EDGE_ITEMS)
    return flat.reshape(-1, _EDGE_ITEMS)


def _write_edges(file: BlockFile, edges: np.ndarray) -> None:
    file.append_array(np.ascontiguousarray(edges, dtype=np.int64).reshape(-1))


def _sort_in_memory(edges: np.ndarray) -> np.ndarray:
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


class _RunReader:
    """Buffered sequential reader over one sorted run."""

    def __init__(self, file: BlockFile, buffer_edges: int) -> None:
        self.file = file
        self.buffer_edges = max(buffer_edges, 1)
        self.total_edges = file.num_items() // _EDGE_ITEMS
        self.position = 0
        self.buffer = np.empty((0, _EDGE_ITEMS), dtype=np.int64)
        self.buffer_pos = 0

    def _refill(self) -> bool:
        if self.position >= self.total_edges:
            return False
        count = min(self.buffer_edges, self.total_edges - self.position)
        self.buffer = _read_edges(self.file, self.position, count)
        self.position += count
        self.buffer_pos = 0
        return True

    def peek(self) -> tuple[int, int] | None:
        if self.buffer_pos >= self.buffer.shape[0] and not self._refill():
            return None
        row = self.buffer[self.buffer_pos]
        return int(row[0]), int(row[1])

    def pop(self) -> tuple[int, int]:
        value = self.peek()
        if value is None:
            raise StopIteration
        self.buffer_pos += 1
        return value


def external_sort_edges(
    device: BlockDevice,
    input_name: str,
    output_name: str,
    memory_bytes: int,
    fan_in: int | None = None,
    temp_prefix: str = "_extsort",
) -> ExternalSortResult:
    """Sort the edge file ``input_name`` by (source, destination).

    Parameters
    ----------
    device:
        block device holding both input and output.
    memory_bytes:
        memory cap ``M``; the in-memory window and merge buffers are sized
        so their combined footprint stays within this cap.
    fan_in:
        maximum number of runs merged at once; derived from the memory cap
        when omitted.

    Returns an :class:`ExternalSortResult`.  The input file is left intact.
    """
    if memory_bytes < _EDGE_ITEMS * 8 * 4:
        raise ConfigurationError(
            f"memory budget of {memory_bytes} bytes is too small to sort edges"
        )
    infile = device.open(input_name)
    total_edges = infile.num_items() // _EDGE_ITEMS
    memory_edges = max(memory_bytes // (_EDGE_ITEMS * 8), 4)

    # Phase 1: run formation
    run_names: list[str] = []
    offset = 0
    while offset < total_edges:
        count = min(memory_edges, total_edges - offset)
        window = _read_edges(infile, offset, count)
        sorted_window = _sort_in_memory(window)
        run_name = f"{temp_prefix}_run{len(run_names)}.bin"
        device.delete(run_name)
        _write_edges(device.open(run_name), sorted_window)
        run_names.append(run_name)
        offset += count
    num_runs = len(run_names)

    if num_runs == 0:
        device.delete(output_name)
        device.open(output_name)  # create empty output
        return ExternalSortResult(output_name, 0, 0, 0)

    if fan_in is None:
        # one buffer per input run plus one output buffer must fit in memory
        fan_in = max(int(memory_edges // max(memory_edges // 8, 1)), 2)
        fan_in = max(min(fan_in, 16), 2)

    # Phase 2: iterative k-way merges
    merge_passes = 0
    current = list(run_names)
    generation = 0
    while len(current) > 1:
        merge_passes += 1
        next_runs: list[str] = []
        for group_start in range(0, len(current), fan_in):
            group = current[group_start : group_start + fan_in]
            out_name = f"{temp_prefix}_g{generation}_m{len(next_runs)}.bin"
            device.delete(out_name)
            _merge_runs(device, group, out_name, memory_edges)
            next_runs.append(out_name)
            for name in group:
                device.delete(name)
        current = next_runs
        generation += 1

    final_run = current[0]
    device.delete(output_name)
    # rename by copying through the device so accounting stays consistent
    data = device.open(final_run)
    out = device.open(output_name)
    buffer_edges = max(memory_edges // 2, 1)
    pos = 0
    run_total = data.num_items() // _EDGE_ITEMS
    while pos < run_total:
        count = min(buffer_edges, run_total - pos)
        out.append_array(_read_edges(data, pos, count).reshape(-1))
        pos += count
    device.delete(final_run)

    return ExternalSortResult(output_name, total_edges, num_runs, merge_passes)


def _merge_runs(
    device: BlockDevice, run_names: list[str], output_name: str, memory_edges: int
) -> None:
    """Merge sorted runs into ``output_name`` with bounded buffers."""
    per_run = max(memory_edges // (len(run_names) + 1), 1)
    readers = [_RunReader(device.open(name), per_run) for name in run_names]
    out = device.open(output_name)
    out_buffer: list[tuple[int, int]] = []
    out_capacity = max(per_run, 1)

    heap: list[tuple[int, int, int]] = []
    for i, reader in enumerate(readers):
        head = reader.peek()
        if head is not None:
            heapq.heappush(heap, (head[0], head[1], i))

    while heap:
        src, dst, idx = heapq.heappop(heap)
        readers[idx].pop()
        out_buffer.append((src, dst))
        if len(out_buffer) >= out_capacity:
            _write_edges(out, np.array(out_buffer, dtype=np.int64))
            out_buffer.clear()
        head = readers[idx].peek()
        if head is not None:
            heapq.heappush(heap, (head[0], head[1], idx))

    if out_buffer:
        _write_edges(out, np.array(out_buffer, dtype=np.int64))


def edge_file_num_edges(device: BlockDevice, name: str) -> int:
    """Number of edge records in a binary edge file on ``device``."""
    return device.open(name).num_items() // _EDGE_ITEMS


def write_edge_file(device: BlockDevice, name: str, edges: np.ndarray) -> int:
    """Write an ``(m, 2)`` edge array as a flat int64 edge file; returns m."""
    device.delete(name)
    file = device.open(name)
    arr = np.ascontiguousarray(edges, dtype=np.int64)
    if arr.size:
        file.append_array(arr.reshape(-1))
    return int(arr.shape[0]) if arr.ndim == 2 else 0


def read_edge_file(device: BlockDevice, name: str) -> np.ndarray:
    """Read an entire binary edge file back as an ``(m, 2)`` array."""
    file = device.open(name)
    total = file.num_items()
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    flat = file.read_array(0, total)
    return flat.reshape(-1, _EDGE_ITEMS)
