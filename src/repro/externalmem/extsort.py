"""External merge sort of on-disk edge files under a memory cap.

Theorem IV.2 notes that when the input graph is not already sorted, PDTL
pays an additional ``O(sort(|E|))`` I/Os and ``O(|E| log |E|)`` CPU before
orientation can run.  This module provides that step as a standalone,
fully external k-way merge sort over edge records ``(source, destination)``
stored as consecutive int64 pairs in a :class:`~repro.externalmem.blockio.BlockFile`.

The implementation follows the classic two-phase scheme:

1. **Run formation** -- read windows of at most ``memory_items`` edges,
   sort them in memory (numpy lexsort), and write each as a sorted run to a
   temporary file on the same device.
2. **K-way merge** -- repeatedly merge up to ``fan_in`` runs into longer
   runs until one run remains; the fan-in is derived from the memory cap so
   the merge buffers also respect ``M``.

The merge phase is *vectorised*: each run is buffered in block-sized
chunks, records are encoded as packed ``src * base + dst`` int64 keys, and
every round splices out the prefix of each buffer that is provably safe to
emit (all keys up to the smallest buffer-tail key across runs), merging the
prefixes with one stable ``argsort`` and writing the output in full
buffers.  The Python work per round is proportional to the *number of
runs*, not the number of edges, which is what makes the merge orders of
magnitude cheaper than the per-edge ``heapq`` loop it replaced.  That
original loop is retained as ``merge_impl="heapq"`` -- it remains the
serial reference the equivalence tests and the CI perf-smoke job compare
against, and the fallback for inputs that cannot be packed into int64 keys
(negative ids, or ``max_src * (max_dst + 1)`` overflowing 63 bits).

The *run formation* phase is parallelisable the same way
(``formation="parallel"``): each memory window becomes a picklable
:class:`_RunFormationTask` fanned out over the persistent process pool
(:func:`repro.cluster.executor.run_preprocess_queue`).  A worker reads its
window raw from the host file (below the accounting), sorts it -- by one
radix ``np.sort`` of the packed keys with a divmod reconstruction when the
window packs into int64, the stable ``lexsort`` otherwise; both orders are
identical -- and writes the run raw.  The master then charges the exact
window-read/run-write accounting of the serial pass, in run order, via
:meth:`~repro.externalmem.blockio.BlockDevice.charge_read` /
:meth:`~repro.externalmem.blockio.BlockDevice.charge_write`.  Run bytes,
IOStats and modelled device seconds are bit-identical to
``formation="serial"`` -- the equivalence suite asserts it per run file.

Both merge implementations issue byte-identical I/O: the same per-run
refill chunks and the same full-buffer output writes, so
:class:`~repro.externalmem.iostats.IOStats` block counts and modelled
device seconds do not depend on the chosen implementation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.errors import ConfigurationError
from repro.externalmem.blockio import BlockDevice, BlockFile
from repro.utils import Timer

__all__ = ["external_sort_edges", "ExternalSortResult", "form_runs_parallel"]

_EDGE_ITEMS = 2  # int64 words per edge record
_EDGE_BYTES = _EDGE_ITEMS * 8

#: Inclusive clamp applied to the derived merge fan-in.  The lower bound
#: keeps the merge a true k-way merge; the upper bound caps the number of
#: simultaneously open run files (and the per-round ``argsort`` width).
MIN_FAN_IN = 2
MAX_FAN_IN = 64


@dataclass(frozen=True)
class ExternalSortResult:
    """Outcome of an external sort: the output file plus run statistics.

    ``formation_seconds`` / ``merge_seconds`` are host wall-clock timings of
    the two phases (run formation is a numpy ``lexsort`` in both merge
    implementations; the merge phase is where ``"vectorized"`` and
    ``"heapq"`` differ), recorded so the perf harness can attribute
    speedups to the phase that actually changed.
    """

    output_name: str
    num_edges: int
    num_runs: int
    merge_passes: int
    fan_in: int = 0
    formation_seconds: float = 0.0
    merge_seconds: float = 0.0
    formation_impl: str = "serial"


def _read_edges(file: BlockFile, offset_edges: int, count_edges: int) -> np.ndarray:
    flat = file.read_array(offset_edges * _EDGE_ITEMS, count_edges * _EDGE_ITEMS)
    return flat.reshape(-1, _EDGE_ITEMS)


def _write_edges(file: BlockFile, edges: np.ndarray) -> None:
    file.append_array(np.ascontiguousarray(edges, dtype=np.int64).reshape(-1))


def _sort_in_memory(edges: np.ndarray) -> np.ndarray:
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


def _formation_windows(
    total_edges: int, memory_edges: int, temp_prefix: str
) -> list[tuple[int, int, str]]:
    """The run-formation decomposition: ``(offset, count, run name)`` per
    memory window.  Both formation paths cut (and name) their runs through
    this single helper, so the byte-identity contract between them cannot
    drift on window sizing."""
    windows: list[tuple[int, int, str]] = []
    offset = 0
    while offset < total_edges:
        count = min(memory_edges, total_edges - offset)
        windows.append((offset, count, f"{temp_prefix}_run{len(windows)}.bin"))
        offset += count
    return windows


def _sort_window_fast(window: np.ndarray) -> tuple[np.ndarray, int, int, int]:
    """Sort one run window by (source, destination), same order as
    :func:`_sort_in_memory` but via one radix ``np.sort`` of packed keys.

    When every value is non-negative and ``max_src * (max_dst + 1) +
    max_dst`` fits in int64, the rows are reconstructed from the sorted
    keys with one ``divmod`` -- rows with equal keys are identical records,
    so the result is byte-identical to the stable lexsort (which is the
    fallback for unpackable windows).  Returns ``(sorted window, max_src,
    max_dst, min_value)`` -- the extrema drive the packability decision
    here and the caller's merge-key decision, computed once.
    """
    if window.shape[0] == 0:
        return window, -1, -1, 0
    max_src = int(window[:, 0].max())
    max_dst = int(window[:, 1].max())
    min_value = int(window.min())
    base = max_dst + 1
    packable = (
        min_value >= 0 and max_src * base + max_dst <= np.iinfo(np.int64).max
    )
    if not packable:
        return _sort_in_memory(window), max_src, max_dst, min_value
    keys = np.sort(window[:, 0] * np.int64(base) + window[:, 1])
    return (
        np.stack(np.divmod(keys, np.int64(base)), axis=1),
        max_src,
        max_dst,
        min_value,
    )


@dataclass(frozen=True)
class _RunFormationTask:
    """One run-formation window, picklable for the persistent pool.

    Plain paths and offsets only: the worker reads its window raw from
    ``input_path`` (below the accounting), sorts it, writes the run raw to
    ``run_path`` and returns the window's value range -- the master needs
    it to decide merge-key packability, exactly like the serial pass.
    """

    input_path: str
    run_path: str
    offset_edges: int
    count_edges: int


def _form_run_task(task: _RunFormationTask) -> tuple[int, int, int]:
    """Execute one formation window; module-level so it pickles.

    Returns ``(max_src, max_dst, min_value)`` of the window.  The run file
    bytes are identical to what the serial pass writes for the same window
    (:func:`_sort_window_fast` reproduces the lexsort order exactly).
    """
    window = np.fromfile(
        task.input_path,
        dtype=np.int64,
        count=task.count_edges * _EDGE_ITEMS,
        offset=task.offset_edges * _EDGE_BYTES,
    ).reshape(-1, _EDGE_ITEMS)
    sorted_window, max_src, max_dst, min_value = _sort_window_fast(window)
    np.ascontiguousarray(sorted_window, dtype=np.int64).tofile(task.run_path)
    return max_src, max_dst, min_value


def form_runs_parallel(
    device: BlockDevice,
    input_name: str,
    total_edges: int,
    memory_edges: int,
    temp_prefix: str,
    max_workers: int | None = None,
) -> tuple[list[str], int, int, int]:
    """Form the sorted runs of an external sort on the persistent pool.

    Cuts the input edge file into the same memory windows the serial pass
    reads, fans one :class:`_RunFormationTask` per window out over the
    persistent process pool, then charges the serial pass's exact
    accounting (window read, run write; in run order) on ``device``.
    Returns ``(run names, max_src, max_dst, min_value)`` -- the same state
    the serial formation loop leaves behind, with byte-identical run files
    and bit-identical I/O counters.
    """
    from repro.cluster.executor import run_preprocess_queue

    input_path = str(device.path(input_name))
    windows = _formation_windows(total_edges, memory_edges, temp_prefix)
    tasks: list[_RunFormationTask] = []
    for offset, count, run_name in windows:
        device.delete(run_name)
        tasks.append(
            _RunFormationTask(
                input_path=input_path,
                run_path=str(device.path(run_name)),
                offset_edges=offset,
                count_edges=count,
            )
        )
    outcomes = run_preprocess_queue(tasks, _form_run_task, max_workers=max_workers)

    max_src = -1
    max_dst = -1
    min_value = 0
    run_names: list[str] = []
    for (offset, count, run_name), (w_max_src, w_max_dst, w_min) in zip(
        windows, outcomes
    ):
        # the serial pass's accounting, charge for charge: one window read
        # from the input, one full run write at offset 0
        device.charge_read(input_name, offset * _EDGE_BYTES, count * _EDGE_BYTES)
        device.charge_write(run_name, 0, count * _EDGE_BYTES)
        run_names.append(run_name)
        max_src = max(max_src, w_max_src)
        max_dst = max(max_dst, w_max_dst)
        min_value = min(min_value, w_min)
    return run_names, max_src, max_dst, min_value


class _RunReader:
    """Buffered sequential reader over one sorted run (scalar ``heapq`` path)."""

    def __init__(self, file: BlockFile, buffer_edges: int) -> None:
        self.file = file
        self.buffer_edges = max(buffer_edges, 1)
        self.total_edges = file.num_items() // _EDGE_ITEMS
        self.position = 0
        self.buffer = np.empty((0, _EDGE_ITEMS), dtype=np.int64)
        self.buffer_pos = 0

    def _refill(self) -> bool:
        if self.position >= self.total_edges:
            return False
        count = min(self.buffer_edges, self.total_edges - self.position)
        self.buffer = _read_edges(self.file, self.position, count)
        self.position += count
        self.buffer_pos = 0
        return True

    def peek(self) -> tuple[int, int] | None:
        if self.buffer_pos >= self.buffer.shape[0] and not self._refill():
            return None
        row = self.buffer[self.buffer_pos]
        return int(row[0]), int(row[1])

    def pop(self) -> tuple[int, int]:
        value = self.peek()
        if value is None:
            raise StopIteration
        self.buffer_pos += 1
        return value


class _RunBuffer:
    """Block-buffered array reader over one sorted run (vectorised path).

    Holds the current refill chunk both as an ``(k, 2)`` edge array and as
    packed int64 keys; :meth:`take_upto` splices out the sorted prefix with
    keys ``<= limit`` via one binary search.
    """

    def __init__(self, file: BlockFile, buffer_edges: int, key_base: int) -> None:
        self.file = file
        self.buffer_edges = max(buffer_edges, 1)
        self.key_base = key_base
        self.total_edges = file.num_items() // _EDGE_ITEMS
        self.position = 0
        self.edges = np.empty((0, _EDGE_ITEMS), dtype=np.int64)
        self.keys = np.empty(0, dtype=np.int64)
        self.cursor = 0
        # head/tail cached as plain ints: the merge loop compares them every
        # round, and a numpy scalar indexing per comparison would dominate
        self.head_key = 0
        self.tail_key = 0

    def ensure_filled(self) -> bool:
        """Make the buffer non-empty; False when the run is exhausted."""
        if self.cursor < self.keys.shape[0]:
            return True
        if self.position >= self.total_edges:
            return False
        count = min(self.buffer_edges, self.total_edges - self.position)
        # zero-copy refill: the raw bytes are never mutated, so the
        # read-only frombuffer view is enough (read_array would copy)
        raw = self.file.read_bytes(
            self.position * _EDGE_BYTES, count * _EDGE_BYTES
        )
        self.edges = np.frombuffer(raw, dtype=np.int64).reshape(-1, _EDGE_ITEMS)
        self.position += count
        self.keys = self.edges[:, 0] * np.int64(self.key_base) + self.edges[:, 1]
        self.cursor = 0
        self.head_key = int(self.keys[0])
        self.tail_key = int(self.keys[-1])
        return True

    def take_upto(self, limit: int) -> tuple[np.ndarray, np.ndarray]:
        """Consume and return ``(rows, keys)`` of every buffered record ``<= limit``."""
        if self.tail_key <= limit:
            hi = self.keys.shape[0]
        else:
            hi = int(self.keys.searchsorted(limit, side="right"))
        rows = self.edges[self.cursor : hi]
        keys = self.keys[self.cursor : hi]
        self.cursor = hi
        if hi < self.keys.shape[0]:
            self.head_key = int(self.keys[hi])
        return rows, keys


def _derive_fan_in(memory_edges: int, block_size: int) -> int:
    """Merge fan-in under the memory cap: one block-sized stream buffer per
    input run plus one for the output must fit in ``memory_edges``."""
    buffer_edges = max(block_size // _EDGE_BYTES, 1)
    return max(min(memory_edges // buffer_edges - 1, MAX_FAN_IN), MIN_FAN_IN)


def external_sort_edges(
    device: BlockDevice,
    input_name: str,
    output_name: str,
    memory_bytes: int,
    fan_in: int | None = None,
    temp_prefix: str = "_extsort",
    merge_impl: str = "vectorized",
    formation: str = "serial",
    formation_workers: int | None = None,
) -> ExternalSortResult:
    """Sort the edge file ``input_name`` by (source, destination).

    Parameters
    ----------
    device:
        block device holding both input and output.
    memory_bytes:
        memory cap ``M``; the in-memory window and merge buffers are sized
        so their combined footprint stays within this cap.
    fan_in:
        maximum number of runs merged at once; derived from the memory cap
        and the device block size when omitted (``memory_edges //
        buffer_edges - 1`` clamped to ``[2, 64]``, one block-sized buffer
        per stream).
    merge_impl:
        ``"vectorized"`` (default) merges runs with buffered numpy packed-key
        splicing; ``"heapq"`` uses the original per-edge heap loop.  Both
        produce identical output files and identical I/O accounting.
    formation:
        ``"serial"`` (default) forms runs in the calling process through
        the block layer; ``"parallel"`` fans the windows out over the
        persistent process pool (:func:`form_runs_parallel`).  Both produce
        byte-identical run files and bit-identical I/O accounting.
    formation_workers:
        crew cap for ``formation="parallel"``; the CPU count when omitted.

    Returns an :class:`ExternalSortResult`.  The input file is left intact.
    """
    if memory_bytes < _EDGE_BYTES * 4:
        raise ConfigurationError(
            f"memory budget of {memory_bytes} bytes is too small to sort edges"
        )
    if merge_impl not in ("vectorized", "heapq"):
        raise ConfigurationError(
            f"merge_impl must be 'vectorized' or 'heapq', got {merge_impl!r}"
        )
    if formation not in ("serial", "parallel"):
        raise ConfigurationError(
            f"formation must be 'serial' or 'parallel', got {formation!r}"
        )
    infile = device.open(input_name)
    total_edges = infile.num_items() // _EDGE_ITEMS
    memory_edges = max(memory_bytes // _EDGE_BYTES, 4)

    # Phase 1: run formation (also records the value range so the merge can
    # decide whether packed int64 keys are exact for this input)
    formation_timer = Timer().start()
    if formation == "parallel":
        run_names, max_src, max_dst, min_value = form_runs_parallel(
            device,
            input_name,
            total_edges,
            memory_edges,
            temp_prefix,
            max_workers=formation_workers,
        )
    else:
        run_names = []
        max_src = -1
        max_dst = -1
        min_value = 0
        for offset, count, run_name in _formation_windows(
            total_edges, memory_edges, temp_prefix
        ):
            window = _read_edges(infile, offset, count)
            if window.size:
                max_src = max(max_src, int(window[:, 0].max()))
                max_dst = max(max_dst, int(window[:, 1].max()))
                min_value = min(min_value, int(window.min()))
            sorted_window = _sort_in_memory(window)
            device.delete(run_name)
            _write_edges(device.open(run_name), sorted_window)
            run_names.append(run_name)
    num_runs = len(run_names)
    formation_timer.stop()

    if fan_in is None:
        fan_in = _derive_fan_in(memory_edges, device.block_size)

    if num_runs == 0:
        device.delete(output_name)
        device.open(output_name)  # create empty output
        return ExternalSortResult(
            output_name, 0, 0, 0, fan_in, formation_timer.elapsed, 0.0, formation
        )

    key_base = max_dst + 1
    packable = (
        min_value >= 0 and max_src * key_base + max_dst <= np.iinfo(np.int64).max
    )
    vectorized = merge_impl == "vectorized" and packable

    # Phase 2: iterative k-way merges
    merge_timer = Timer().start()
    merge_passes = 0
    current = list(run_names)
    generation = 0
    while len(current) > 1:
        merge_passes += 1
        next_runs: list[str] = []
        for group_start in range(0, len(current), fan_in):
            group = current[group_start : group_start + fan_in]
            out_name = f"{temp_prefix}_g{generation}_m{len(next_runs)}.bin"
            device.delete(out_name)
            if vectorized:
                _merge_runs_vectorized(device, group, out_name, memory_edges, key_base)
            else:
                _merge_runs_heapq(device, group, out_name, memory_edges)
            next_runs.append(out_name)
            for name in group:
                device.delete(name)
        current = next_runs
        generation += 1

    final_run = current[0]
    device.delete(output_name)
    # rename by copying through the device so accounting stays consistent
    data = device.open(final_run)
    out = device.open(output_name)
    buffer_edges = max(memory_edges // 2, 1)
    pos = 0
    run_total = data.num_items() // _EDGE_ITEMS
    while pos < run_total:
        count = min(buffer_edges, run_total - pos)
        out.append_array(_read_edges(data, pos, count).reshape(-1))
        pos += count
    device.delete(final_run)
    merge_timer.stop()

    return ExternalSortResult(
        output_name,
        total_edges,
        num_runs,
        merge_passes,
        fan_in,
        formation_timer.elapsed,
        merge_timer.elapsed,
        formation,
    )


def _merge_runs_vectorized(
    device: BlockDevice,
    run_names: list[str],
    output_name: str,
    memory_edges: int,
    key_base: int,
) -> None:
    """Merge sorted runs with buffered numpy splicing (no per-edge Python).

    Every round computes the *safe boundary* -- the smallest buffer-tail
    key across the still-active runs.  Any buffered record with a key at or
    below that boundary precedes every record not yet read from disk, so
    the per-run prefixes up to the boundary can be merged (one stable
    ``argsort`` over their concatenation) and emitted immediately.  At
    least one run drains its whole buffer per round (the one holding the
    minimum), so each record is spliced exactly once.
    """
    per_run = max(memory_edges // (len(run_names) + 1), 1)
    readers = [_RunBuffer(device.open(name), per_run, key_base) for name in run_names]
    out = device.open(output_name)
    out_capacity = max(per_run, 1)
    pending: list[np.ndarray] = []
    pending_count = 0

    active = [reader for reader in readers if reader.ensure_filled()]
    while active:
        if len(active) == 1:
            # only one run still holds records: stream its buffers through
            reader = active[0]
            merged = reader.edges[reader.cursor :]
            reader.cursor = reader.keys.shape[0]
        else:
            limit = min(reader.tail_key for reader in active)
            row_chunks: list[np.ndarray] = []
            key_chunks: list[np.ndarray] = []
            for reader in active:
                if reader.head_key > limit:
                    continue  # nothing safe to splice from this run yet
                rows, keys = reader.take_upto(limit)
                if rows.shape[0]:
                    row_chunks.append(rows)
                    key_chunks.append(keys)
            if len(row_chunks) == 1:
                merged = row_chunks[0]
            elif len(row_chunks) == 2:
                # two contributing runs: the shared galloping merge places
                # both prefixes with two binary searches (stable, run 0
                # first on ties -- the heap's (src, dst, run_index) order)
                pos_a, pos_b = kernels.merge_positions(key_chunks[0], key_chunks[1])
                merged = np.empty(
                    (pos_a.shape[0] + pos_b.shape[0], _EDGE_ITEMS), dtype=np.int64
                )
                merged[pos_a] = row_chunks[0]
                merged[pos_b] = row_chunks[1]
            else:
                # stable sort keeps equal keys in run order -- the same
                # tie-break the heap's (src, dst, run_index) entries produce
                order = np.argsort(np.concatenate(key_chunks), kind="stable")
                merged = np.concatenate(row_chunks)[order]
        pending.append(merged)
        pending_count += int(merged.shape[0])
        if pending_count >= out_capacity:
            # flush in exactly the full-buffer chunks the heap loop writes,
            # so the output I/O pattern (and its accounting) is unchanged
            data = pending[0] if len(pending) == 1 else np.concatenate(pending)
            flush = 0
            while data.shape[0] - flush >= out_capacity:
                _write_edges(out, data[flush : flush + out_capacity])
                flush += out_capacity
            rest = data[flush:]
            pending = [rest] if rest.shape[0] else []
            pending_count = int(rest.shape[0])
        active = [reader for reader in active if reader.ensure_filled()]

    if pending_count:
        _write_edges(out, pending[0] if len(pending) == 1 else np.concatenate(pending))


def _merge_runs_heapq(
    device: BlockDevice, run_names: list[str], output_name: str, memory_edges: int
) -> None:
    """The original per-edge heap merge, kept as the serial reference."""
    per_run = max(memory_edges // (len(run_names) + 1), 1)
    readers = [_RunReader(device.open(name), per_run) for name in run_names]
    out = device.open(output_name)
    out_buffer: list[tuple[int, int]] = []
    out_capacity = max(per_run, 1)

    heap: list[tuple[int, int, int]] = []
    for i, reader in enumerate(readers):
        head = reader.peek()
        if head is not None:
            heapq.heappush(heap, (head[0], head[1], i))

    while heap:
        src, dst, idx = heapq.heappop(heap)
        readers[idx].pop()
        out_buffer.append((src, dst))
        if len(out_buffer) >= out_capacity:
            _write_edges(out, np.array(out_buffer, dtype=np.int64))
            out_buffer.clear()
        head = readers[idx].peek()
        if head is not None:
            heapq.heappush(heap, (head[0], head[1], idx))

    if out_buffer:
        _write_edges(out, np.array(out_buffer, dtype=np.int64))


def edge_file_num_edges(device: BlockDevice, name: str) -> int:
    """Number of edge records in a binary edge file on ``device``."""
    return device.open(name).num_items() // _EDGE_ITEMS


def write_edge_file(device: BlockDevice, name: str, edges: np.ndarray) -> int:
    """Write an ``(m, 2)`` edge array as a flat int64 edge file; returns m."""
    device.delete(name)
    file = device.open(name)
    arr = np.ascontiguousarray(edges, dtype=np.int64)
    if arr.size:
        file.append_array(arr.reshape(-1))
    return int(arr.shape[0]) if arr.ndim == 2 else 0


def read_edge_file(device: BlockDevice, name: str) -> np.ndarray:
    """Read an entire binary edge file back as an ``(m, 2)`` array."""
    file = device.open(name)
    total = file.num_items()
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    flat = file.read_array(0, total)
    return flat.reshape(-1, _EDGE_ITEMS)
