"""External-memory substrate: block-granular I/O, memory budgets, external sort.

The paper's analysis follows the Aggarwal–Vitter I/O model: a disk with
block size ``B`` and a memory of size ``M``, where reading ``N``
consecutive elements costs ``scan(N) = Θ(N/B)`` I/Os and sorting costs
``sort(N) = Θ((N/B)·log_{M/B}(N/B))`` I/Os.  This subpackage provides a
concrete substrate for those abstractions:

* :class:`~repro.externalmem.blockio.BlockDevice` -- a simulated disk that
  wraps a real directory, tracks every block read/written, distinguishes
  sequential from random accesses, and can model a bandwidth cap (the
  "SSD capped at 500 MB/s" effect of the paper's Figure 2).
* :class:`~repro.externalmem.blockio.BlockFile` -- a file on a block
  device with typed numpy read/write helpers.
* :class:`~repro.externalmem.memory.MemoryBudget` -- a per-processor memory
  budget ``M`` that raises :class:`~repro.errors.OutOfMemoryError` on
  over-allocation (this is how partition-based baselines fail on large
  graphs the way PowerGraph does in Table VI).
* :func:`~repro.externalmem.extsort.external_sort_edges` -- an external
  merge sort of on-disk edge files under a memory cap, used when the input
  graph is not already sorted (Theorem IV.2's extra ``O(sort(|E|))`` term).
* :class:`~repro.externalmem.iostats.IOStats` -- the counters and the
  analytic ``scan``/``sort`` formulas used both for accounting and for the
  cost-model validation benchmarks.
"""

from repro.externalmem.blockio import BlockDevice, BlockFile
from repro.externalmem.iostats import IOStats, scan_io_cost, sort_io_cost
from repro.externalmem.memory import MemoryBudget
from repro.externalmem.extsort import external_sort_edges

__all__ = [
    "BlockDevice",
    "BlockFile",
    "IOStats",
    "MemoryBudget",
    "external_sort_edges",
    "scan_io_cost",
    "sort_io_cost",
]
