"""Graph substrate: in-memory representations, generators, on-disk formats.

The PDTL pipeline operates on *undirected simple graphs* stored in the
binary two-file format the paper uses (a degree file plus an adjacency
file, both sorted).  This subpackage provides:

* :class:`repro.graph.edgelist.EdgeList` -- a thin wrapper over an
  ``(m, 2)`` numpy array of edges with deduplication / symmetrisation /
  sorting helpers,
* :class:`repro.graph.csr.CSRGraph` -- compressed-sparse-row adjacency used
  by the in-memory baselines and as the canonical in-memory form,
* :mod:`repro.graph.binfmt` -- the on-disk ``.deg`` / ``.adj`` binary
  format with the sortedness invariants required by the modified MGT,
* :mod:`repro.graph.generators` -- RMAT and classic random-graph
  generators,
* :mod:`repro.graph.datasets` -- scaled-down analogues of the paper's
  evaluation datasets (Table I),
* :mod:`repro.graph.properties` -- degree statistics, clustering
  coefficients and arboricity bounds (Theorem III.4).
"""

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    planar_grid,
    ring_graph,
    rmat,
    watts_strogatz,
)
from repro.graph.properties import GraphStats, arboricity_upper_bound, graph_stats

__all__ = [
    "CSRGraph",
    "EdgeList",
    "rmat",
    "erdos_renyi",
    "barabasi_albert",
    "complete_graph",
    "ring_graph",
    "planar_grid",
    "watts_strogatz",
    "GraphStats",
    "graph_stats",
    "arboricity_upper_bound",
]
