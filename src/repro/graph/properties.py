"""Graph statistics and the arboricity-related bounds of Theorem III.4.

These functions back two parts of the reproduction:

* **Table I** -- per-dataset statistics (nodes, edges, triangles, average
  degree, degree standard deviation, maximum degree) are regenerated for
  the scaled-down analogue datasets by :func:`graph_stats`.
* **Theorem III.4** -- the arboricity bounds ``α ≤ ⌈√|E|⌉`` and
  ``Σ min(d(u), d(v)) = O(α |E|)``, plus the triangle-count bound
  ``T ≤ (1/3) Σ min(d(u), d(v))``, are computed exactly so the property
  tests can assert them on arbitrary generated graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "GraphStats",
    "graph_stats",
    "arboricity_upper_bound",
    "min_degree_edge_sum",
    "triangle_count_upper_bound",
    "clustering_coefficient",
    "per_vertex_counts_from_edge_supports",
    "transitivity",
    "degree_histogram",
]


@dataclass(frozen=True)
class GraphStats:
    """The per-dataset statistics row of the paper's Table I."""

    name: str
    num_vertices: int
    num_edges: int
    num_triangles: int | None
    size_bytes: int
    avg_degree: float
    degree_std: float
    max_degree: int

    def as_row(self) -> dict[str, object]:
        """Return the row as a plain dict for the report formatter."""
        return {
            "Graph": self.name,
            "Nodes": self.num_vertices,
            "Edges": self.num_edges,
            "Triangles": self.num_triangles,
            "Size": self.size_bytes,
            "AvDeg": round(self.avg_degree, 1),
            "STD": round(self.degree_std, 1),
            "MaxDeg": self.max_degree,
        }


def graph_stats(
    graph: CSRGraph, name: str = "graph", num_triangles: int | None = None
) -> GraphStats:
    """Compute the Table I statistics for an undirected CSR graph.

    ``size_bytes`` is the size of the binary on-disk representation
    (degree file + adjacency file with 8-byte integers), matching how the
    paper reports dataset sizes.
    """
    if graph.directed:
        raise ValueError("graph_stats expects the undirected (bidirectional) graph")
    degrees = graph.degrees.astype(np.float64)
    n = graph.num_vertices
    m = graph.num_undirected_edges
    avg = float(degrees.mean()) if n else 0.0
    std = float(degrees.std()) if n else 0.0
    size_bytes = int(graph.indptr.nbytes + graph.indices.nbytes)
    return GraphStats(
        name=name,
        num_vertices=n,
        num_edges=m,
        num_triangles=num_triangles,
        size_bytes=size_bytes,
        avg_degree=avg,
        degree_std=std,
        max_degree=graph.max_degree,
    )


def arboricity_upper_bound(graph: CSRGraph) -> int:
    """The ``α ≤ ⌈√|E|⌉`` bound of Theorem III.4(1)."""
    return int(math.ceil(math.sqrt(max(graph.num_undirected_edges, 0))))


def min_degree_edge_sum(graph: CSRGraph) -> int:
    """``Σ_{(u,v) ∈ E} min(d(u), d(v))`` over undirected edges.

    This is the quantity Theorem III.4(3) bounds by ``O(α|E|)`` and that in
    turn bounds ``3T``; the property tests verify both inequalities.
    """
    if graph.num_undirected_edges == 0:
        return 0
    edges = graph.edge_array()
    # keep each undirected edge once
    mask = edges[:, 0] < edges[:, 1]
    edges = edges[mask]
    degs = graph.degrees
    return int(np.minimum(degs[edges[:, 0]], degs[edges[:, 1]]).sum())


def triangle_count_upper_bound(graph: CSRGraph) -> float:
    """``T ≤ (1/3) Σ min(d(u), d(v))`` (discussion after Theorem III.4)."""
    return min_degree_edge_sum(graph) / 3.0


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram of vertex degrees; index ``d`` holds the number of vertices
    of degree ``d``."""
    if graph.num_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.degrees)


def clustering_coefficient(
    graph: CSRGraph, triangles_per_vertex: np.ndarray
) -> np.ndarray:
    """Local clustering coefficient per vertex given per-vertex triangle counts.

    ``triangles_per_vertex[v]`` must count the triangles containing ``v``.
    Vertices of degree < 2 have coefficient 0 by convention.  This is one of
    the headline applications of triangle listing in the paper's
    introduction (Watts–Strogatz clustering, transitivity ratio, sybil and
    spam detection all build on it).
    """
    degrees = graph.degrees.astype(np.float64)
    tri = np.asarray(triangles_per_vertex, dtype=np.float64)
    if tri.shape[0] != graph.num_vertices:
        raise ValueError("triangles_per_vertex has the wrong length")
    possible = degrees * (degrees - 1.0) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        coeff = np.where(possible > 0, tri / possible, 0.0)
    return coeff


def per_vertex_counts_from_edge_supports(
    num_vertices: int, edges: np.ndarray, supports: np.ndarray
) -> np.ndarray:
    """Per-vertex triangle counts from per-edge triangle supports.

    Every triangle containing vertex ``v`` contains exactly two edges
    incident to ``v``, so the triangles at ``v`` are half the summed
    support of its incident edges -- an exact integer identity that lets
    one ``edge-support`` PDTL run also serve the clustering-coefficient
    analyses (no second pass over the triangle stream).
    """
    edges = np.asarray(edges, dtype=np.int64)
    supports = np.asarray(supports, dtype=np.int64)
    if edges.shape[0] != supports.shape[0]:
        raise ValueError(
            f"got {supports.shape[0]} supports for {edges.shape[0]} edges"
        )
    incident = np.zeros(num_vertices, dtype=np.int64)
    np.add.at(incident, edges[:, 0], supports)
    np.add.at(incident, edges[:, 1], supports)
    if np.any(incident & 1):
        raise ValueError(
            "incident support sum is odd at some vertex; corrupt supports"
        )
    return incident // 2


def transitivity(graph: CSRGraph, total_triangles: int) -> float:
    """Global transitivity ratio: ``3T / (number of connected triples)``."""
    degrees = graph.degrees.astype(np.float64)
    triples = float((degrees * (degrees - 1.0) / 2.0).sum())
    if triples == 0:
        return 0.0
    return 3.0 * total_triangles / triples
