"""The paper's on-disk binary graph format: a degree file plus an adjacency file.

Section V-B of the paper: *"Our PDTL framework assumes that graphs are in
binary, bi-directional format, with degrees of vertices and their out-edges
in separate files. Moreover, we assume that edges are sorted by source and
destination."*  This module reproduces that layout on top of the simulated
:class:`~repro.externalmem.blockio.BlockDevice`:

* ``<name>.deg``  -- int64 degree of every vertex, in vertex order;
* ``<name>.adj``  -- the concatenation of all adjacency lists in vertex
  order, each list sorted by destination;
* ``<name>.meta`` -- a tiny header (num_vertices, num_edges, directed flag,
  max_degree) so files can be opened without a full scan.

The same format stores both the bidirectional input graph ``G`` and its
orientation ``G*``; the ``directed`` flag distinguishes them.  The
``max_degree`` field of an oriented file is the ``d*_max`` the modified MGT
uses to size its ``nm`` / ``nmp`` scratch arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.externalmem.blockio import BlockDevice, BlockFile
from repro.graph.csr import CSRGraph
from repro.utils import prefix_sums

__all__ = ["GraphFile", "write_graph", "open_graph"]

_META_MAGIC = 0x7064746C  # "pdtl"
_META_ITEMS = 5  # magic, num_vertices, num_edges, directed, max_degree


@dataclass
class GraphFile:
    """Handle to an on-disk graph in the degree/adjacency format.

    The handle caches nothing except the metadata header; all degree and
    adjacency reads go through the block device so they are charged to its
    I/O counters.  Helper methods expose exactly the access patterns MGT
    and the orientation step need: full degree scans, contiguous adjacency
    ranges (the memory window), and per-vertex adjacency reads during the
    triangle pass.

    ``readahead_bytes`` (see :meth:`set_readahead`) optionally coalesces
    sequential adjacency reads through an aligned host-side buffer -- a
    wall-clock optimisation strictly below the accounting layer, so I/O
    statistics are identical with it on or off.  The buffered handle is
    private to this ``GraphFile`` instance; give each concurrent scanner
    its own handle (as :class:`~repro.core.mgt.MGTWorker` does).
    """

    device: BlockDevice
    name: str
    num_vertices: int
    num_edges: int
    directed: bool
    max_degree: int
    readahead_bytes: int = 0
    _adj_handle: BlockFile | None = field(default=None, repr=False, compare=False)

    # -- file names -------------------------------------------------------------

    @property
    def degree_file_name(self) -> str:
        return f"{self.name}.deg"

    @property
    def adjacency_file_name(self) -> str:
        return f"{self.name}.adj"

    @property
    def meta_file_name(self) -> str:
        return f"{self.name}.meta"

    def _deg_file(self) -> BlockFile:
        return self.device.open(self.degree_file_name)

    def _adj_file(self) -> BlockFile:
        if self.readahead_bytes:
            if self._adj_handle is None:
                handle = self.device.open(self.adjacency_file_name)
                handle.set_readahead(self.readahead_bytes)
                self._adj_handle = handle
            return self._adj_handle
        return self.device.open(self.adjacency_file_name)

    def set_readahead(self, buffer_bytes: int | str) -> None:
        """Enable (``> 0``) or disable (``0``) adjacency read coalescing.

        See :meth:`repro.externalmem.blockio.BlockFile.set_readahead`; the
        buffer serves the sequential scans of
        :meth:`read_adjacency_range` / :meth:`iter_adjacency_blocks`
        without changing a single I/O counter.
        """
        from repro.utils import parse_size

        self.readahead_bytes = parse_size(buffer_bytes)
        self._adj_handle = None

    def with_readahead(self, buffer_bytes: int | str) -> "GraphFile":
        """A new handle to the same on-disk graph with its own read-ahead
        buffer (concurrent scanners must not share one buffered handle)."""
        clone = GraphFile(
            device=self.device,
            name=self.name,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            directed=self.directed,
            max_degree=self.max_degree,
        )
        clone.set_readahead(buffer_bytes)
        return clone

    @property
    def size_bytes(self) -> int:
        """Total on-disk footprint (degree + adjacency files)."""
        return self.device.file_size(self.degree_file_name) + self.device.file_size(
            self.adjacency_file_name
        )

    # -- reads --------------------------------------------------------------------

    def read_degrees(self) -> np.ndarray:
        """Read the full degree array (one sequential scan of the ``.deg`` file)."""
        return self._deg_file().read_array(0, self.num_vertices)

    def read_degree_range(self, start_vertex: int, count: int) -> np.ndarray:
        """Read degrees for a contiguous vertex range."""
        if start_vertex < 0 or count < 0 or start_vertex + count > self.num_vertices:
            raise GraphFormatError(
                f"degree range [{start_vertex}, {start_vertex + count}) out of bounds"
            )
        return self._deg_file().read_array(start_vertex, count)

    def read_adjacency_range(self, start_edge: int, count: int) -> np.ndarray:
        """Read a contiguous slice of the adjacency file (the MGT edge window)."""
        if start_edge < 0 or count < 0 or start_edge + count > self.num_edges:
            raise GraphFormatError(
                f"adjacency range [{start_edge}, {start_edge + count}) out of bounds "
                f"(file has {self.num_edges} entries)"
            )
        return self._adj_file().read_array(start_edge, count)

    def read_neighbors(self, vertex: int, offsets: np.ndarray) -> np.ndarray:
        """Read the adjacency list of one vertex given the offset array.

        ``offsets`` must be the exclusive prefix sums of the degree array
        (callers compute it once per scan to avoid re-reading the degree
        file for every vertex).
        """
        start = int(offsets[vertex])
        count = int(offsets[vertex + 1] - offsets[vertex])
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self._adj_file().read_array(start, count)

    def iter_adjacency_blocks(
        self, vertices_per_block: int
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Stream the whole graph as ``(first_vertex, degrees, adjacency)`` blocks.

        Used by the sequential full-graph scan inside MGT's vertex loop:
        reading many vertices' lists at once keeps the device access pattern
        sequential (and therefore cheap in the I/O model) instead of issuing
        one tiny read per vertex.
        """
        if vertices_per_block <= 0:
            raise ValueError("vertices_per_block must be positive")
        offsets = prefix_sums(self.read_degrees())
        v = 0
        while v < self.num_vertices:
            hi = min(v + vertices_per_block, self.num_vertices)
            degrees = (offsets[v + 1 : hi + 1] - offsets[v:hi]).astype(np.int64)
            start = int(offsets[v])
            count = int(offsets[hi] - offsets[v])
            adjacency = (
                self.read_adjacency_range(start, count)
                if count
                else np.empty(0, dtype=np.int64)
            )
            yield v, degrees, adjacency
            v = hi

    def offsets(self) -> np.ndarray:
        """Exclusive prefix sums of the degree array (length ``n + 1``)."""
        return prefix_sums(self.read_degrees())

    def to_csr(self) -> CSRGraph:
        """Load the entire graph into memory as a CSR structure."""
        degrees = self.read_degrees()
        adjacency = (
            self.read_adjacency_range(0, self.num_edges)
            if self.num_edges
            else np.empty(0, dtype=np.int64)
        )
        return CSRGraph.from_arrays(degrees, adjacency, directed=self.directed)

    # -- validation ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the sortedness and consistency invariants of the format.

        Raises :class:`GraphFormatError` on violation.  This is the guard
        against the silent-missing-triangles failure mode of unsorted input
        described in section IV-A1 of the paper.
        """
        degrees = self.read_degrees()
        if degrees.shape[0] != self.num_vertices:
            raise GraphFormatError("degree file length does not match metadata")
        if int(degrees.sum()) != self.num_edges:
            raise GraphFormatError(
                f"degree sum {int(degrees.sum())} does not match adjacency length "
                f"{self.num_edges}"
            )
        if degrees.size and int(degrees.max()) != self.max_degree:
            raise GraphFormatError("max_degree metadata is stale")
        csr = self.to_csr()
        csr.check_sorted_adjacency()
        csr.check_simple()

    # -- copy (graph duplication across machines) --------------------------------------

    def copy_to(self, device: BlockDevice, name: str | None = None) -> "GraphFile":
        """Duplicate this graph onto another device (master → client copy).

        Both degree and adjacency files are copied through the block layer
        so the transfer shows up in both devices' I/O statistics; the
        cluster layer additionally charges the network-transfer time that
        Table III reports as copy time.
        """
        name = name if name is not None else self.name
        self.device.copy_file(self.degree_file_name, device, f"{name}.deg")
        self.device.copy_file(self.adjacency_file_name, device, f"{name}.adj")
        self.device.copy_file(self.meta_file_name, device, f"{name}.meta")
        return GraphFile(
            device=device,
            name=name,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            directed=self.directed,
            max_degree=self.max_degree,
        )

    def delete(self) -> None:
        self.device.delete(self.degree_file_name)
        self.device.delete(self.adjacency_file_name)
        self.device.delete(self.meta_file_name)


def write_graph(device: BlockDevice, name: str, graph: CSRGraph) -> GraphFile:
    """Write a CSR graph to ``device`` in the degree/adjacency format.

    The CSR invariants (sorted lists, no loops, no duplicates) are checked
    before writing so that every on-disk graph satisfies the modified-MGT
    preconditions.
    """
    graph.check_sorted_adjacency()
    graph.check_simple()
    for suffix in (".deg", ".adj", ".meta"):
        device.delete(f"{name}{suffix}")
    deg_file = device.open(f"{name}.deg")
    adj_file = device.open(f"{name}.adj")
    meta_file = device.open(f"{name}.meta")

    deg_file.append_array(graph.degrees.astype(np.int64))
    if graph.num_edges:
        adj_file.append_array(graph.indices.astype(np.int64))
    meta = np.array(
        [
            _META_MAGIC,
            graph.num_vertices,
            graph.num_edges,
            1 if graph.directed else 0,
            graph.max_degree,
        ],
        dtype=np.int64,
    )
    meta_file.append_array(meta)
    return GraphFile(
        device=device,
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        directed=graph.directed,
        max_degree=graph.max_degree,
    )


def open_graph(device: BlockDevice, name: str) -> GraphFile:
    """Open an existing on-disk graph by reading its ``.meta`` header."""
    meta_name = f"{name}.meta"
    if not device.exists(meta_name):
        raise GraphFormatError(f"no graph named {name!r} on device {device.root}")
    meta = device.open(meta_name).read_array(0, _META_ITEMS)
    if meta.shape[0] != _META_ITEMS or int(meta[0]) != _META_MAGIC:
        raise GraphFormatError(f"corrupt metadata for graph {name!r}")
    return GraphFile(
        device=device,
        name=name,
        num_vertices=int(meta[1]),
        num_edges=int(meta[2]),
        directed=bool(meta[3]),
        max_degree=int(meta[4]),
    )
