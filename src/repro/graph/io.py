"""Text and binary edge-list I/O.

Real deployments of PDTL ingest graphs from SNAP-style whitespace-separated
edge lists or from binary edge dumps; this module provides both, plus
round-trip helpers used by the tests.  The *processing* format (separate
degree and adjacency binary files) lives in :mod:`repro.graph.binfmt` --
this module only covers interchange formats.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList

__all__ = [
    "read_edgelist_text",
    "write_edgelist_text",
    "read_edgelist_binary",
    "write_edgelist_binary",
]


def write_edgelist_text(
    edgelist: EdgeList, path: str | os.PathLike[str], header: bool = True
) -> Path:
    """Write a whitespace-separated text edge list (SNAP style).

    With ``header=True`` a comment line records the vertex count so that
    isolated trailing vertices survive a round trip.
    """
    path = Path(path)
    with path.open("w", encoding="ascii") as fh:
        if header:
            fh.write(f"# nodes {edgelist.num_vertices} edges {edgelist.num_edges}\n")
        for u, v in edgelist:
            fh.write(f"{u}\t{v}\n")
    return path


def read_edgelist_text(
    path: str | os.PathLike[str], num_vertices: int | None = None
) -> EdgeList:
    """Read a whitespace-separated edge list; ``#``-prefixed lines are comments.

    A ``# nodes N ...`` header, if present, sets the vertex-universe size.
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    header_vertices: int | None = None
    with path.open("r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                tokens = line[1:].split()
                if len(tokens) >= 2 and tokens[0] == "nodes":
                    try:
                        header_vertices = int(tokens[1])
                    except ValueError:
                        pass
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected two vertex ids, got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            edges.append((u, v))
    if num_vertices is None:
        num_vertices = header_vertices
    return EdgeList(edges, num_vertices)


def write_edgelist_binary(
    edgelist: EdgeList, path: str | os.PathLike[str]
) -> Path:
    """Write a binary edge dump: int64 header (n, m) followed by m (u, v) pairs."""
    path = Path(path)
    with path.open("wb") as fh:
        header = np.array([edgelist.num_vertices, edgelist.num_edges], dtype=np.int64)
        fh.write(header.tobytes())
        fh.write(np.ascontiguousarray(edgelist.edges, dtype=np.int64).tobytes())
    return path


def read_edgelist_binary(path: str | os.PathLike[str]) -> EdgeList:
    """Read a binary edge dump written by :func:`write_edgelist_binary`."""
    path = Path(path)
    raw = np.fromfile(path, dtype=np.int64)
    if raw.shape[0] < 2:
        raise GraphFormatError(f"{path}: truncated binary edge list")
    n, m = int(raw[0]), int(raw[1])
    expected = 2 + 2 * m
    if raw.shape[0] != expected:
        raise GraphFormatError(
            f"{path}: expected {expected} int64 words, found {raw.shape[0]}"
        )
    edges = raw[2:].reshape(m, 2)
    return EdgeList(edges, n)


def edges_from_iterable(
    pairs: Iterable[tuple[int, int]], num_vertices: int | None = None
) -> EdgeList:
    """Convenience wrapper kept for API symmetry with the readers."""
    return EdgeList.from_pairs(pairs, num_vertices)
