"""Compressed-sparse-row (CSR) adjacency for undirected and oriented graphs.

:class:`CSRGraph` is the canonical in-memory representation used throughout
the library: two numpy arrays, ``indptr`` (length ``n + 1``) and ``indices``
(length ``m``), exactly mirroring the paper's on-disk layout of a degree
file plus a concatenated adjacency file.  Adjacency lists are kept sorted
by destination, which the modified MGT requires for its sorted-array
intersections.

The same class represents both the undirected input graph ``G`` (every
undirected edge stored twice) and its orientation ``G*`` (each edge stored
once, from the ``≺``-smaller endpoint to the larger); the
``directed`` flag records which one an instance is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList
from repro.utils import prefix_sums

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """CSR adjacency structure over vertices ``[0, n)``.

    Parameters
    ----------
    indptr:
        int64 array of length ``n + 1``; the neighbours of vertex ``v`` are
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        int64 array of length ``m`` holding destination vertices, sorted
        within each adjacency list.
    directed:
        ``False`` for the bidirectional (undirected) storage of ``G``,
        ``True`` for an orientation ``G*`` where each undirected edge appears
        exactly once.
    """

    indptr: np.ndarray
    indices: np.ndarray
    directed: bool = False
    _degrees: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.shape[0] < 1:
            raise GraphFormatError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0:
            raise GraphFormatError("indptr[0] must be 0")
        if self.indices.ndim != 1:
            raise GraphFormatError("indices must be a 1-D array")
        if self.indptr[-1] != self.indices.shape[0]:
            raise GraphFormatError(
                f"indptr[-1]={int(self.indptr[-1])} does not match "
                f"len(indices)={self.indices.shape[0]}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise GraphFormatError("indices contain out-of-range vertex ids")

    # -- core accessors ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) adjacency entries.

        For an undirected graph this is ``2 * |E|``; for an orientation it is
        ``|E|``.
        """
        return int(self.indices.shape[0])

    @property
    def num_undirected_edges(self) -> int:
        """Number of undirected edges |E|."""
        if self.directed:
            return self.num_edges
        return self.num_edges // 2

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (== degree for undirected storage)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(self.degrees.max())

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search on the sorted adjacency list."""
        nbrs = self.neighbors(u)
        idx = int(np.searchsorted(nbrs, v))
        return idx < nbrs.shape[0] and int(nbrs[idx]) == v

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield every stored (directed) edge in (source, destination) order."""
        for v in range(self.num_vertices):
            for w in self.neighbors(v):
                yield v, int(w)

    def edge_array(self) -> np.ndarray:
        """Return all stored edges as an ``(m, 2)`` array, source-major order."""
        if self.num_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        return np.stack([sources, self.indices], axis=1)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every stored edge, in storage order (length m)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)

    # -- invariants ------------------------------------------------------------

    def check_sorted_adjacency(self) -> None:
        """Raise :class:`GraphFormatError` unless every adjacency list is sorted.

        This is the invariant whose violation makes the original MGT binary
        miss triangles (paper section IV-A1); we check it eagerly at the
        format boundary.
        """
        if self.num_edges == 0:
            return
        diffs = np.diff(self.indices)
        # boundaries between adjacency lists are allowed to decrease
        boundary = np.zeros(self.num_edges - 1, dtype=bool)
        boundary_positions = self.indptr[1:-1] - 1
        boundary_positions = boundary_positions[
            (boundary_positions >= 0) & (boundary_positions < self.num_edges - 1)
        ]
        boundary[boundary_positions] = True
        bad = (diffs < 0) & ~boundary
        if np.any(bad):
            v = int(np.searchsorted(self.indptr, np.nonzero(bad)[0][0], side="right")) - 1
            raise GraphFormatError(
                f"adjacency list of vertex {v} is not sorted; "
                "modified MGT requires destination-sorted lists"
            )

    def check_simple(self) -> None:
        """Raise unless the graph has no self loops and no duplicate edges."""
        if self.num_edges == 0:
            return
        sources = self.edge_sources()
        loops = np.nonzero(self.indices == sources)[0]
        if loops.size:
            raise GraphFormatError(f"self loop at vertex {int(sources[loops[0]])}")
        # duplicates: equal consecutive destinations within one adjacency list
        same_dst = np.nonzero(np.diff(self.indices) == 0)[0]
        if same_dst.size:
            same_src = sources[same_dst] == sources[same_dst + 1]
            if np.any(same_src):
                v = int(sources[same_dst[np.argmax(same_src)]])
                raise GraphFormatError(f"duplicate edge out of vertex {v}")

    def is_undirected_consistent(self) -> bool:
        """True when every stored edge has its reverse also stored."""
        edges = self.edge_array()
        if edges.shape[0] == 0:
            return True
        forward = set(map(tuple, edges.tolist()))
        return all((v, u) in forward for u, v in forward)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_edgelist(
        cls, edgelist: EdgeList, directed: bool = False, symmetrize: bool = True
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        With ``symmetrize=True`` (the default for undirected use) the edge
        list is first converted to its simple bidirectional closure.  With
        ``directed=True`` the rows are taken as-is (after dedup/sort), which
        is how orientations are materialised.
        """
        if directed:
            clean = edgelist.without_self_loops().deduplicated().sorted()
        elif symmetrize:
            clean = edgelist.symmetrized()
        else:
            clean = edgelist.without_self_loops().deduplicated().sorted()
        n = clean.num_vertices
        if clean.num_edges == 0:
            return cls(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64), directed)
        counts = np.bincount(clean.edges[:, 0], minlength=n)
        indptr = prefix_sums(counts)
        indices = clean.edges[:, 1].astype(np.int64, copy=True)
        return cls(indptr, indices, directed)

    @classmethod
    def from_arrays(
        cls, degrees: np.ndarray, adjacency: np.ndarray, directed: bool = False
    ) -> "CSRGraph":
        """Build from a degree array and a concatenated adjacency array.

        This is the in-memory twin of the on-disk ``.deg`` / ``.adj`` pair.
        """
        degrees = np.asarray(degrees, dtype=np.int64)
        adjacency = np.asarray(adjacency, dtype=np.int64)
        if int(degrees.sum()) != adjacency.shape[0]:
            raise GraphFormatError(
                f"sum of degrees ({int(degrees.sum())}) does not match adjacency "
                f"length ({adjacency.shape[0]})"
            )
        return cls(prefix_sums(degrees), adjacency.copy(), directed)

    @classmethod
    def empty(cls, num_vertices: int = 0, directed: bool = False) -> "CSRGraph":
        return cls(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            directed,
        )

    # -- conversions -------------------------------------------------------------

    def to_edgelist(self) -> EdgeList:
        return EdgeList(self.edge_array(), self.num_vertices)

    def to_networkx(self):  # pragma: no cover - thin convenience wrapper
        """Convert to a :mod:`networkx` graph (DiGraph when oriented)."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        g.add_edges_from(self.iter_edges())
        return g

    def memory_bytes(self) -> int:
        """Approximate resident size of the CSR arrays in bytes."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and bool(np.array_equal(self.indptr, other.indptr))
            and bool(np.array_equal(self.indices, other.indices))
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"CSRGraph(n={self.num_vertices}, stored_edges={self.num_edges}, "
            f"{kind})"
        )
