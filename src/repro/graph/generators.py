"""Synthetic graph generators used by the evaluation harness.

The paper's synthetic workloads are R-MAT graphs (Chakrabarti et al.,
SDM'04): ``RMAT-n`` has ``2^n`` vertices and ``2^{n+4}`` edges, i.e. an
average degree of 32 (16 undirected edges per vertex).  We reproduce the
generator with the conventional (a, b, c, d) = (0.57, 0.19, 0.19, 0.05)
partition probabilities, which yields the heavy-tailed degree
distributions the paper's scalability results rely on.

The remaining generators (Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
complete, ring, planar grid) back the unit/property tests and the
arboricity-bound experiments: planar graphs have ``α = O(1)`` while
``K_n`` has ``α = Θ(n)`` (Theorem III.4), so they probe opposite ends of
the CPU-bound analysis.

All generators are vectorised over numpy and fully deterministic given a
seed; they return :class:`~repro.graph.edgelist.EdgeList` instances in
canonical undirected form (each edge once, no self loops).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.utils import as_rng

__all__ = [
    "rmat",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "complete_graph",
    "ring_graph",
    "planar_grid",
    "power_law_degree_graph",
    "relabel_by_degree",
]


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator | None = 0,
    noise: float = 0.1,
) -> EdgeList:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the number of vertices; the paper's ``RMAT-n`` uses
        ``scale = n``.
    edge_factor:
        number of undirected edges per vertex *before* deduplication; the
        paper's graphs use ``2^{n+4}`` edges, i.e. ``edge_factor = 16``.
    a, b, c:
        recursive quadrant probabilities (d is ``1 - a - b - c``).
    noise:
        multiplicative perturbation applied per recursion level, which
        avoids exactly repeating quadrant splits and produces smoother
        degree distributions (standard Graph500-style smoothing).

    Returns the canonical undirected edge list (duplicates and self loops
    removed), so the realised edge count is slightly below
    ``edge_factor * 2**scale``.
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("RMAT probabilities must be non-negative and sum to <= 1")
    rng = as_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    if m == 0 or scale == 0:
        return EdgeList.empty(n)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / (a + c) if (a + c) > 0 else 0.5
    c_norm = a_norm  # same column split used for both halves before noise

    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        # per-level noisy probabilities
        if noise > 0:
            ab_l = ab * (1.0 + noise * (rng.random(m) - 0.5))
            a_l = a_norm * (1.0 + noise * (rng.random(m) - 0.5))
            c_l = c_norm * (1.0 + noise * (rng.random(m) - 0.5))
            ab_l = np.clip(ab_l, 0.0, 1.0)
            a_l = np.clip(a_l, 0.0, 1.0)
            c_l = np.clip(c_l, 0.0, 1.0)
        else:
            ab_l = np.full(m, ab)
            a_l = np.full(m, a_norm)
            c_l = np.full(m, c_norm)
        go_down = rng.random(m) > ab_l  # row bit set (source in lower half)
        col_prob = np.where(go_down, c_l, a_l)
        go_right = rng.random(m) > col_prob  # column bit set
        src += bit * go_down.astype(np.int64)
        dst += bit * go_right.astype(np.int64)

    edges = np.stack([src, dst], axis=1)
    return EdgeList(edges, n).canonical_undirected()


def erdos_renyi(
    n: int, p: float | None = None, m: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> EdgeList:
    """Erdős–Rényi random graph, either G(n, p) or G(n, m).

    Exactly one of ``p`` (edge probability) or ``m`` (edge count) must be
    given.  The G(n, m) variant samples undirected edges without
    replacement, which is what the unit tests use for exact edge counts.
    """
    if (p is None) == (m is None):
        raise ValueError("specify exactly one of p or m")
    rng = as_rng(seed)
    if n < 0:
        raise ValueError("n must be non-negative")
    max_edges = n * (n - 1) // 2
    if p is not None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if n <= 1 or p == 0.0:
            return EdgeList.empty(n)
        # sample upper-triangular pairs via geometric skipping for sparsity
        expected = int(p * max_edges * 1.3) + 16
        u = rng.integers(0, n, size=expected, dtype=np.int64)
        v = rng.integers(0, n, size=expected, dtype=np.int64)
        keep = rng.random(expected) < p
        edges = np.stack([u[keep], v[keep]], axis=1)
        # the sampling above is approximate; for exactness on small graphs,
        # fall back to the dense Bernoulli draw when feasible
        if max_edges <= 2_000_000:
            iu, iv = np.triu_indices(n, k=1)
            keep = rng.random(iu.shape[0]) < p
            edges = np.stack([iu[keep], iv[keep]], axis=1)
        return EdgeList(edges, n).canonical_undirected()
    assert m is not None
    if m < 0:
        raise ValueError("m must be non-negative")
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    if m == 0:
        return EdgeList.empty(n)
    if max_edges <= 4_000_000:
        iu, iv = np.triu_indices(n, k=1)
        choice = rng.choice(iu.shape[0], size=m, replace=False)
        edges = np.stack([iu[choice], iv[choice]], axis=1)
        return EdgeList(edges, n).canonical_undirected()
    # rejection sampling for large vertex sets
    seen: set[tuple[int, int]] = set()
    while len(seen) < m:
        need = m - len(seen)
        u = rng.integers(0, n, size=2 * need + 8, dtype=np.int64)
        v = rng.integers(0, n, size=2 * need + 8, dtype=np.int64)
        for a_, b_ in zip(u, v):
            if a_ == b_:
                continue
            key = (int(min(a_, b_)), int(max(a_, b_)))
            seen.add(key)
            if len(seen) >= m:
                break
    edges = np.array(sorted(seen), dtype=np.int64)
    return EdgeList(edges, n)


def barabasi_albert(
    n: int, attach: int = 3, seed: int | np.random.Generator | None = 0
) -> EdgeList:
    """Barabási–Albert preferential-attachment graph.

    Produces a scale-free degree distribution; used by the datasets module
    for the social-network analogues (LiveJournal/Orkut-like graphs whose
    triangle density comes from hub vertices).
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if n <= attach:
        return complete_graph(max(n, 0))
    rng = as_rng(seed)
    # start from a small complete core
    core = attach + 1
    targets_pool = list(np.repeat(np.arange(core), core - 1))
    edges: list[tuple[int, int]] = [
        (i, j) for i in range(core) for j in range(i + 1, core)
    ]
    repeated = list(range(core)) * (core - 1)
    pool = np.array(repeated, dtype=np.int64)
    for v in range(core, n):
        # preferential attachment: sample proportional to current degree by
        # drawing from the pool of edge endpoints
        chosen: set[int] = set()
        while len(chosen) < attach:
            idx = rng.integers(0, pool.shape[0], size=attach * 2)
            for t in pool[idx]:
                t = int(t)
                if t != v:
                    chosen.add(t)
                if len(chosen) >= attach:
                    break
        new_targets = np.fromiter(chosen, dtype=np.int64, count=len(chosen))
        for t in new_targets:
            edges.append((v, int(t)))
        pool = np.concatenate(
            [pool, new_targets, np.full(len(new_targets), v, dtype=np.int64)]
        )
    del targets_pool
    return EdgeList(np.array(edges, dtype=np.int64), n).canonical_undirected()


def watts_strogatz(
    n: int, k: int = 4, p: float = 0.1, seed: int | np.random.Generator | None = 0
) -> EdgeList:
    """Watts–Strogatz small-world graph (ring lattice with rewiring).

    High clustering coefficient by construction, so it is triangle-rich and
    a good stress test for listing sinks.
    """
    if k % 2 != 0 or k < 0:
        raise ValueError("k must be a non-negative even integer")
    if n <= 0:
        return EdgeList.empty(max(n, 0))
    if k >= n:
        return complete_graph(n)
    rng = as_rng(seed)
    edges: list[tuple[int, int]] = []
    half = k // 2
    for offset in range(1, half + 1):
        u = np.arange(n, dtype=np.int64)
        v = (u + offset) % n
        rewire = rng.random(n) < p
        new_v = rng.integers(0, n, size=n, dtype=np.int64)
        v = np.where(rewire, new_v, v)
        edges.append(np.stack([u, v], axis=1))  # type: ignore[arg-type]
    all_edges = np.vstack(edges)  # type: ignore[arg-type]
    return EdgeList(all_edges, n).canonical_undirected()


def complete_graph(n: int) -> EdgeList:
    """The complete graph ``K_n`` -- the paper's worst case for partitioning.

    Partition-based frameworks need ``Θ(n²)`` memory per processor on ``K_n``
    (section IV-B2), while PDTL only needs memory proportional to the
    maximum degree, so this generator anchors the memory-requirement tests.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n < 2:
        return EdgeList.empty(max(n, 0))
    iu, iv = np.triu_indices(n, k=1)
    return EdgeList(np.stack([iu, iv], axis=1).astype(np.int64), n)


def ring_graph(n: int) -> EdgeList:
    """Simple cycle on ``n`` vertices (triangle-free for ``n != 3``)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n < 3:
        if n == 2:
            return EdgeList(np.array([[0, 1]], dtype=np.int64), 2)
        return EdgeList.empty(max(n, 0))
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return EdgeList(np.stack([u, v], axis=1), n).canonical_undirected()


def planar_grid(rows: int, cols: int, diagonals: bool = False) -> EdgeList:
    """A rows×cols planar grid; with ``diagonals=True`` each cell gains one
    diagonal, producing two triangles per cell while staying planar.

    Planar graphs have constant arboricity (Theorem III.4 case 2), making
    this the low end of the ``O(α|E|)`` CPU bound.
    """
    if rows < 0 or cols < 0:
        raise ValueError("rows and cols must be non-negative")
    n = rows * cols
    if n == 0:
        return EdgeList.empty(0)
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    edges = []
    if cols > 1:
        right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
        edges.append(right)
    if rows > 1:
        down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
        edges.append(down)
    if diagonals and rows > 1 and cols > 1:
        diag = np.stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()], axis=1)
        edges.append(diag)
    if not edges:
        return EdgeList.empty(n)
    return EdgeList(np.vstack(edges), n).canonical_undirected()


def power_law_degree_graph(
    n: int,
    exponent: float = 2.3,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> EdgeList:
    """Chung–Lu style graph with a power-law expected degree sequence.

    Used to build the "Yahoo-like" analogue: very sparse on average but
    with a handful of enormous hubs, which is the structural feature the
    paper blames for Yahoo's poor scaling beyond 16 cores.
    """
    if n <= 1:
        return EdgeList.empty(max(n, 0))
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    rng = as_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n) * 4))
    # inverse-CDF sampling of a bounded Pareto distribution
    u = rng.random(n)
    lo, hi, alpha = float(min_degree), float(max_degree), exponent - 1.0
    weights = (lo**-alpha - u * (lo**-alpha - hi**-alpha)) ** (-1.0 / alpha)
    total = weights.sum()
    probs = weights / total
    m = int(total / 2)
    if m == 0:
        return EdgeList.empty(n)
    src = rng.choice(n, size=m, p=probs)
    dst = rng.choice(n, size=m, p=probs)
    edges = np.stack([src, dst], axis=1).astype(np.int64)
    return EdgeList(edges, n).canonical_undirected()


def relabel_by_degree(edges: EdgeList) -> EdgeList:
    """Permute vertex ids so the highest-degree vertex becomes id 0.

    Real crawled graphs tend to have degree-correlated ids (early crawl
    ids are the hubs), which is exactly the regime where contiguous
    equal-edge splits put all the expensive intersections on the first
    processors (Figure 9's struggler).  Synthetic generators assign hub
    ids uniformly at random, hiding that skew; this relabelling restores
    it, so load-balancing experiments see the adversarial ordering.
    """
    n = edges.num_vertices
    if n == 0 or edges.edges.shape[0] == 0:
        return edges
    degrees = np.zeros(n, dtype=np.int64)
    np.add.at(degrees, edges.edges[:, 0], 1)
    np.add.at(degrees, edges.edges[:, 1], 1)
    order = np.argsort(-degrees, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    remapped = np.stack(
        [rank[edges.edges[:, 0]], rank[edges.edges[:, 1]]], axis=1
    )
    return EdgeList(remapped, n).canonical_undirected()
