"""Edge-list container and normalisation utilities.

All generators produce an :class:`EdgeList`; the conversion helpers here
turn arbitrary (possibly noisy) edge sets into the *simple, undirected,
sorted* form PDTL requires:

* no self loops,
* no duplicate edges,
* bi-directional storage (both ``(u, v)`` and ``(v, u)`` present), and
* lexicographic sorting by ``(source, destination)``.

The sortedness requirement is not cosmetic: the paper (section IV-A1)
observes that the MGT implementation silently *misses triangles* when
adjacency lists are unsorted, because it uses sorted-array intersection
rather than hash sets.  We therefore make sortedness an explicit, checked
invariant of the on-disk format (see :mod:`repro.graph.binfmt`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphFormatError
from repro.utils import as_rng

__all__ = ["EdgeList"]


def _as_edge_array(edges: Iterable[tuple[int, int]] | np.ndarray) -> np.ndarray:
    """Coerce ``edges`` into an ``(m, 2)`` int64 array (may be empty)."""
    if isinstance(edges, np.ndarray):
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            return arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(
                f"edge array must have shape (m, 2), got {arr.shape}"
            )
        return arr
    rows = list(edges)
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(rows, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError(f"edge list rows must be pairs, got shape {arr.shape}")
    return arr


@dataclass
class EdgeList:
    """A list of directed edges stored as an ``(m, 2)`` int64 numpy array.

    ``num_vertices`` is the size of the vertex universe ``[0, n)``; vertices
    with no incident edges are allowed.  The class is deliberately dumb --
    it is a staging area before conversion to :class:`~repro.graph.csr.CSRGraph`
    or to the binary on-disk format.
    """

    edges: np.ndarray
    num_vertices: int

    def __init__(
        self,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        num_vertices: int | None = None,
    ) -> None:
        arr = _as_edge_array(edges)
        if arr.size and arr.min() < 0:
            raise GraphFormatError("vertex ids must be non-negative")
        inferred = int(arr.max()) + 1 if arr.size else 0
        if num_vertices is None:
            num_vertices = inferred
        elif num_vertices < inferred:
            raise GraphFormatError(
                f"num_vertices={num_vertices} is smaller than max vertex id "
                f"{inferred - 1}"
            )
        self.edges = arr
        self.num_vertices = int(num_vertices)

    # -- basic protocol ----------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of *directed* edge records currently stored."""
        return int(self.edges.shape[0])

    def __len__(self) -> int:
        return self.num_edges

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for u, v in self.edges:
            yield int(u), int(v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.edges.shape == other.edges.shape
            and bool(np.array_equal(self.edges, other.edges))
        )

    def copy(self) -> "EdgeList":
        return EdgeList(self.edges.copy(), self.num_vertices)

    # -- normalisation steps -----------------------------------------------

    def without_self_loops(self) -> "EdgeList":
        """Return a copy with all ``(u, u)`` edges removed."""
        if self.num_edges == 0:
            return self.copy()
        mask = self.edges[:, 0] != self.edges[:, 1]
        return EdgeList(self.edges[mask], self.num_vertices)

    def deduplicated(self) -> "EdgeList":
        """Return a copy with duplicate directed edges removed (sorted)."""
        if self.num_edges == 0:
            return self.copy()
        unique = np.unique(self.edges, axis=0)
        return EdgeList(unique, self.num_vertices)

    def symmetrized(self) -> "EdgeList":
        """Return the bi-directional closure: for every ``(u, v)`` also ``(v, u)``.

        Self loops are dropped and duplicates removed; the result is sorted
        lexicographically, i.e. exactly the storage form the paper's binary
        format expects.
        """
        no_loops = self.without_self_loops()
        if no_loops.num_edges == 0:
            return no_loops
        forward = no_loops.edges
        backward = forward[:, ::-1]
        both = np.vstack([forward, backward])
        unique = np.unique(both, axis=0)
        return EdgeList(unique, self.num_vertices)

    def canonical_undirected(self) -> "EdgeList":
        """Return each undirected edge once as ``(min(u,v), max(u,v))``, sorted."""
        no_loops = self.without_self_loops()
        if no_loops.num_edges == 0:
            return no_loops
        lo = np.minimum(no_loops.edges[:, 0], no_loops.edges[:, 1])
        hi = np.maximum(no_loops.edges[:, 0], no_loops.edges[:, 1])
        canon = np.unique(np.stack([lo, hi], axis=1), axis=0)
        return EdgeList(canon, self.num_vertices)

    def sorted(self) -> "EdgeList":
        """Return a copy sorted lexicographically by (source, destination)."""
        if self.num_edges == 0:
            return self.copy()
        order = np.lexsort((self.edges[:, 1], self.edges[:, 0]))
        return EdgeList(self.edges[order], self.num_vertices)

    def is_sorted(self) -> bool:
        """True if edges are lexicographically sorted by (source, destination)."""
        if self.num_edges <= 1:
            return True
        src, dst = self.edges[:, 0], self.edges[:, 1]
        src_nondec = np.all(src[1:] >= src[:-1])
        if not src_nondec:
            return False
        same_src = src[1:] == src[:-1]
        return bool(np.all(dst[1:][same_src] >= dst[:-1][same_src]))

    def is_symmetric(self) -> bool:
        """True if for every ``(u, v)`` the reverse ``(v, u)`` is also present."""
        if self.num_edges == 0:
            return True
        forward = self.deduplicated().edges
        backward = np.unique(forward[:, ::-1], axis=0)
        return forward.shape == backward.shape and bool(
            np.array_equal(np.unique(forward, axis=0), backward)
        )

    def has_self_loops(self) -> bool:
        if self.num_edges == 0:
            return False
        return bool(np.any(self.edges[:, 0] == self.edges[:, 1]))

    # -- transformations -----------------------------------------------------

    def relabeled(self, permutation: Sequence[int] | np.ndarray) -> "EdgeList":
        """Apply a vertex permutation: vertex ``v`` becomes ``permutation[v]``.

        Triangle counts are invariant under relabelling; property-based tests
        rely on this method.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape[0] != self.num_vertices:
            raise GraphFormatError(
                f"permutation has length {perm.shape[0]}, expected {self.num_vertices}"
            )
        if not np.array_equal(np.sort(perm), np.arange(self.num_vertices)):
            raise GraphFormatError("permutation must be a bijection on [0, n)")
        if self.num_edges == 0:
            return self.copy()
        return EdgeList(perm[self.edges], self.num_vertices)

    def shuffled(self, seed: int | np.random.Generator | None = 0) -> "EdgeList":
        """Return a copy with edge rows in random order (for robustness tests)."""
        if self.num_edges == 0:
            return self.copy()
        rng = as_rng(seed)
        order = rng.permutation(self.num_edges)
        return EdgeList(self.edges[order], self.num_vertices)

    def subsampled(
        self, fraction: float, seed: int | np.random.Generator | None = 0
    ) -> "EdgeList":
        """Keep each *undirected* edge independently with probability ``fraction``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        canon = self.canonical_undirected()
        if canon.num_edges == 0:
            return canon
        rng = as_rng(seed)
        keep = rng.random(canon.num_edges) < fraction
        return EdgeList(canon.edges[keep], self.num_vertices)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, int]], num_vertices: int | None = None
    ) -> "EdgeList":
        """Build an edge list from an iterable of ``(u, v)`` pairs."""
        return cls(pairs, num_vertices)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "EdgeList":
        return cls(np.empty((0, 2), dtype=np.int64), num_vertices)
