"""Scaled-down analogues of the paper's evaluation datasets (Table I).

The paper evaluates on four real graphs (soc-LiveJournal1, com-Orkut,
Twitter, Yahoo) with 68M--6.6B edges, and four synthetic RMAT graphs
(RMAT-26..29) with 1.1B--8.6B edges.  A pure-Python reproduction cannot
touch graphs of that size in the available time budget, so each dataset is
replaced by a *structural analogue* at a much smaller scale:

* the **RMAT-n** analogues use the same generator family and the same
  ``|E| = 16·|V|`` density, just at smaller scale parameters, preserving
  the scale-free structure the paper credits for good multicore scaling;
* **twitter-like** is a dense scale-free graph (Barabási–Albert core plus
  RMAT noise) with average degree ≈ 58 and a heavy hub tail, matching the
  Twitter row of Table I in shape;
* **yahoo-like** is sparse (average degree ≈ 18) with extreme hubs via a
  power-law (Chung–Lu) construction — the skew that makes Yahoo scale
  poorly beyond 16 cores in Figures 3/4;
* **livejournal-like** and **orkut-like** are mid-size social-network
  analogues built from Watts–Strogatz + Barabási–Albert mixtures with high
  clustering (plenty of triangles).

Every entry records the paper's original statistics so the Table I
benchmark prints paper-vs-measured rows side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    barabasi_albert,
    power_law_degree_graph,
    rmat,
    watts_strogatz,
)

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "PAPER_TABLE1"]


#: The original Table I rows (paper values), for paper-vs-measured reporting.
PAPER_TABLE1: dict[str, dict[str, object]] = {
    "livejournal": {
        "Graph": "soc-LiveJournal1",
        "Nodes": 4_800_000,
        "Edges": 68_000_000,
        "Triangles": 285_730_264,
        "AvDeg": 17.8,
        "STD": 52,
        "MaxDeg": 20_334,
    },
    "orkut": {
        "Graph": "com-Orkut",
        "Nodes": 3_100_000,
        "Edges": 117_200_000,
        "Triangles": 627_584_181,
        "AvDeg": 76.0,
        "STD": 155,
        "MaxDeg": 33_313,
    },
    "twitter": {
        "Graph": "Twitter",
        "Nodes": 61_600_000,
        "Edges": 1_500_000_000,
        "Triangles": 34_824_916_864,
        "AvDeg": 57.7,
        "STD": 402,
        "MaxDeg": 2_997_487,
    },
    "yahoo": {
        "Graph": "Yahoo",
        "Nodes": 1_400_000_000,
        "Edges": 6_600_000_000,
        "Triangles": 85_782_928_684,
        "AvDeg": 17.9,
        "STD": 279,
        "MaxDeg": 7_637_656,
    },
    "rmat-26": {
        "Graph": "RMAT-26",
        "Nodes": 67_100_000,
        "Edges": 1_100_000_000,
        "Triangles": 51_559_452_522,
        "AvDeg": 61.2,
        "STD": 632,
        "MaxDeg": 430_269,
    },
    "rmat-27": {
        "Graph": "RMAT-27",
        "Nodes": 134_200_000,
        "Edges": 2_100_000_000,
        "Triangles": 114_007_006_286,
        "AvDeg": 63.6,
        "STD": 601,
        "MaxDeg": 676_199,
    },
    "rmat-28": {
        "Graph": "RMAT-28",
        "Nodes": 268_400_000,
        "Edges": 4_300_000_000,
        "Triangles": 251_913_686_661,
        "AvDeg": 66.0,
        "STD": 660,
        "MaxDeg": 1_062_289,
    },
    "rmat-29": {
        "Graph": "RMAT-29",
        "Nodes": 536_900_000,
        "Edges": 8_600_000_000,
        "Triangles": 556_443_109_053,
        "AvDeg": 69.0,
        "STD": 782,
        "MaxDeg": 1_665_635,
    },
}


@dataclass(frozen=True)
class DatasetSpec:
    """A named analogue dataset: a generator plus its paper counterpart."""

    name: str
    paper_name: str
    description: str
    builder: Callable[[int, float], EdgeList]
    default_scale: float = 1.0

    def build(self, seed: int = 0, scale: float | None = None) -> CSRGraph:
        """Generate the analogue graph as an undirected CSR graph.

        ``scale`` multiplies the default size (0.25 builds a quarter-size
        variant for quick tests; benchmarks use 1.0).
        """
        effective = self.default_scale * (scale if scale is not None else 1.0)
        edges = self.builder(seed, effective)
        return CSRGraph.from_edgelist(edges, directed=False, symmetrize=True)

    def build_edgelist(self, seed: int = 0, scale: float | None = None) -> EdgeList:
        effective = self.default_scale * (scale if scale is not None else 1.0)
        return self.builder(seed, effective)


def _scaled(value: int, scale: float, minimum: int = 16) -> int:
    return max(int(round(value * scale)), minimum)


def _build_livejournal(seed: int, scale: float) -> EdgeList:
    # social graph with strong community clustering; avg degree ~18
    n = _scaled(6000, scale)
    ws = watts_strogatz(n, k=10, p=0.08, seed=seed)
    ba = barabasi_albert(n, attach=4, seed=seed + 1)
    combined = np.vstack([ws.edges, ba.edges])
    return EdgeList(combined, n).canonical_undirected()


def _build_orkut(seed: int, scale: float) -> EdgeList:
    # denser social graph; avg degree ~76 in the paper, so a denser mix here
    n = _scaled(3000, scale)
    ws = watts_strogatz(n, k=24, p=0.05, seed=seed)
    ba = barabasi_albert(n, attach=12, seed=seed + 1)
    combined = np.vstack([ws.edges, ba.edges])
    return EdgeList(combined, n).canonical_undirected()


def _build_twitter(seed: int, scale: float) -> EdgeList:
    # dense scale-free graph with pronounced hubs (paper avg degree 57.7)
    scale_param = 12 if scale >= 1.0 else 11
    base = rmat(scale_param, edge_factor=24, seed=seed)
    ba = barabasi_albert(1 << scale_param, attach=6, seed=seed + 1)
    combined = np.vstack([base.edges, ba.edges])
    return EdgeList(combined, 1 << scale_param).canonical_undirected()


def _build_yahoo(seed: int, scale: float) -> EdgeList:
    # sparse (avg degree ~18) with extreme hubs: web-graph style skew
    n = _scaled(16000, scale)
    body = power_law_degree_graph(
        n, exponent=2.05, min_degree=4, max_degree=max(n // 8, 32), seed=seed
    )
    # add a sparse backbone so the graph is not dominated by isolated vertices
    backbone = watts_strogatz(n, k=4, p=0.02, seed=seed + 1)
    combined = np.vstack([body.edges, backbone.edges])
    return EdgeList(combined, n).canonical_undirected()


def _make_rmat_builder(scale_param: int) -> Callable[[int, float], EdgeList]:
    def build(seed: int, scale: float) -> EdgeList:
        effective_scale = scale_param if scale >= 1.0 else max(scale_param - 1, 4)
        return rmat(effective_scale, edge_factor=16, seed=seed)

    return build


#: Registry of all analogue datasets, keyed by short name.
DATASETS: dict[str, DatasetSpec] = {
    "livejournal": DatasetSpec(
        name="livejournal",
        paper_name="soc-LiveJournal1",
        description="social graph analogue: Watts-Strogatz + Barabasi-Albert mixture",
        builder=_build_livejournal,
    ),
    "orkut": DatasetSpec(
        name="orkut",
        paper_name="com-Orkut",
        description="denser social graph analogue (higher average degree)",
        builder=_build_orkut,
    ),
    "twitter": DatasetSpec(
        name="twitter",
        paper_name="Twitter",
        description="dense scale-free analogue with pronounced hubs",
        builder=_build_twitter,
    ),
    "yahoo": DatasetSpec(
        name="yahoo",
        paper_name="Yahoo",
        description="sparse web-graph analogue with extreme degree skew",
        builder=_build_yahoo,
    ),
    "rmat-10": DatasetSpec(
        name="rmat-10",
        paper_name="RMAT-26 (scaled)",
        description="RMAT analogue of RMAT-26 at scale 10",
        builder=_make_rmat_builder(10),
    ),
    "rmat-11": DatasetSpec(
        name="rmat-11",
        paper_name="RMAT-27 (scaled)",
        description="RMAT analogue of RMAT-27 at scale 11",
        builder=_make_rmat_builder(11),
    ),
    "rmat-12": DatasetSpec(
        name="rmat-12",
        paper_name="RMAT-28 (scaled)",
        description="RMAT analogue of RMAT-28 at scale 12",
        builder=_make_rmat_builder(12),
    ),
    "rmat-13": DatasetSpec(
        name="rmat-13",
        paper_name="RMAT-29 (scaled)",
        description="RMAT analogue of RMAT-29 at scale 13",
        builder=_make_rmat_builder(13),
    ),
}

#: Mapping from analogue name to the paper dataset it stands in for.
ANALOGUE_OF: dict[str, str] = {
    "livejournal": "livejournal",
    "orkut": "orkut",
    "twitter": "twitter",
    "yahoo": "yahoo",
    "rmat-10": "rmat-26",
    "rmat-11": "rmat-27",
    "rmat-12": "rmat-28",
    "rmat-13": "rmat-29",
}


def dataset_names() -> list[str]:
    """Names of all registered analogue datasets."""
    return list(DATASETS.keys())


def load_dataset(name: str, seed: int = 0, scale: float | None = None) -> CSRGraph:
    """Build the analogue dataset ``name`` as an undirected CSR graph."""
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    return DATASETS[name].build(seed=seed, scale=scale)
