"""Unit tests for the in-memory reference counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inmemory import (
    forward_count,
    forward_list,
    node_iterator_count,
    per_vertex_triangle_counts,
    reference_triangle_count,
)
from repro.core.orientation import orient_csr
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    planar_grid,
    ring_graph,
    rmat,
    watts_strogatz,
)


KNOWN = [
    (complete_graph(4), 4),
    (complete_graph(7), 35),
    (ring_graph(3), 1),
    (ring_graph(10), 0),
    (planar_grid(3, 3, diagonals=True), 8),
    (EdgeList([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]), 1),
]


@pytest.mark.parametrize("edgelist,expected", KNOWN, ids=[f"case{i}" for i in range(len(KNOWN))])
def test_known_counts_node_iterator(edgelist, expected):
    assert node_iterator_count(CSRGraph.from_edgelist(edgelist)) == expected


@pytest.mark.parametrize("edgelist,expected", KNOWN, ids=[f"case{i}" for i in range(len(KNOWN))])
def test_known_counts_forward(edgelist, expected):
    assert forward_count(CSRGraph.from_edgelist(edgelist)) == expected


class TestAgainstNetworkx:
    @pytest.mark.parametrize(
        "edgelist",
        [
            rmat(7, edge_factor=6, seed=0),
            erdos_renyi(80, p=0.1, seed=1),
            watts_strogatz(100, k=6, p=0.2, seed=2),
        ],
        ids=["rmat", "er", "ws"],
    )
    def test_both_algorithms_match_networkx(self, edgelist, nx_count):
        graph = CSRGraph.from_edgelist(edgelist)
        expected = nx_count(graph)
        assert forward_count(graph) == expected
        assert node_iterator_count(graph) == expected

    def test_per_vertex_matches_networkx(self):
        import networkx as nx

        graph = CSRGraph.from_edgelist(watts_strogatz(60, k=6, p=0.1, seed=3))
        expected = nx.triangles(graph.to_networkx())
        ours = per_vertex_triangle_counts(graph)
        assert {v: int(c) for v, c in enumerate(ours)} == expected


class TestForwardVariants:
    def test_forward_accepts_pre_oriented_graph(self):
        graph = CSRGraph.from_edgelist(complete_graph(6))
        oriented = orient_csr(graph)
        assert forward_count(oriented) == 20

    def test_forward_list_matches_count(self):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=4))
        assert len(forward_list(graph)) == forward_count(graph)

    def test_forward_list_contains_actual_triangles(self):
        graph = CSRGraph.from_edgelist(complete_graph(4))
        for tri in forward_list(graph):
            vertices = sorted(tri)
            for i in range(3):
                for j in range(i + 1, 3):
                    assert graph.has_edge(vertices[i], vertices[j])

    def test_reference_alias(self):
        graph = CSRGraph.from_edgelist(complete_graph(5))
        assert reference_triangle_count(graph) == forward_count(graph) == 10


class TestInputValidation:
    def test_node_iterator_rejects_directed(self):
        oriented = orient_csr(CSRGraph.from_edgelist(complete_graph(4)))
        with pytest.raises(ValueError):
            node_iterator_count(oriented)

    def test_per_vertex_rejects_directed(self):
        oriented = orient_csr(CSRGraph.from_edgelist(complete_graph(4)))
        with pytest.raises(ValueError):
            per_vertex_triangle_counts(oriented)

    def test_empty_graph(self):
        empty = CSRGraph.empty(3)
        assert forward_count(empty) == 0
        assert node_iterator_count(empty) == 0
        assert per_vertex_triangle_counts(empty).tolist() == [0, 0, 0]
