"""Unit tests for the PowerGraph-, PATRIC-, OPT- and CTTP-style baselines."""

from __future__ import annotations

import pytest

from repro.baselines.cttp import run_cttp
from repro.baselines.inmemory import forward_count
from repro.baselines.mgt_single import run_single_core_mgt
from repro.baselines.opt import run_opt
from repro.baselines.patric import run_patric
from repro.baselines.powergraph import run_powergraph
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, rmat, watts_strogatz


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=17))


@pytest.fixture(scope="module")
def expected(graph) -> int:
    return forward_count(graph)


class TestMGTSingleBaseline:
    def test_count_matches_reference(self, graph, expected):
        result = run_single_core_mgt(graph, memory_per_proc="1MB")
        assert result.triangles == expected

    def test_phases_measured_separately(self, graph):
        result = run_single_core_mgt(graph, memory_per_proc="1MB")
        assert result.orientation_seconds >= 0.0
        assert result.calc_seconds >= 0.0
        assert result.total_seconds == pytest.approx(
            result.orientation_seconds + result.calc_seconds
        )

    def test_accepts_on_disk_graph(self, device, graph):
        from repro.graph.binfmt import write_graph

        gf = write_graph(device, "g", graph)
        assert run_single_core_mgt(gf).triangles == forward_count(graph)


class TestPowerGraphBaseline:
    def test_count_matches_reference(self, graph, expected):
        result = run_powergraph(graph, num_machines=2, memory_per_machine="64MB")
        assert result.succeeded
        assert result.triangles == expected

    def test_single_machine(self, expected, graph):
        assert run_powergraph(graph, num_machines=1).triangles == expected

    def test_oom_on_small_memory(self, graph):
        result = run_powergraph(graph, num_machines=2, memory_per_machine=8 * 1024)
        assert result.oom
        assert result.triangles is None
        assert not result.succeeded

    def test_memory_footprint_exceeds_pdtl(self, graph):
        """The paper's core claim: partition+replication needs far more memory
        than PDTL's window-plus-scratch."""
        from repro.core.config import PDTLConfig
        from repro.core.pdtl import PDTLRunner

        pg = run_powergraph(graph, num_machines=1, memory_per_machine="256MB")
        pdtl = PDTLRunner(PDTLConfig(memory_per_proc="1MB")).run(graph)
        pdtl_peak = max(w.result.peak_memory_bytes for w in pdtl.workers)
        assert pg.peak_memory_bytes > pdtl_peak

    def test_replication_factor_at_least_one(self, graph):
        result = run_powergraph(graph, num_machines=4, memory_per_machine="256MB")
        assert result.replication_factor >= 1.0
        assert result.network_bytes > 0

    def test_invalid_machine_count(self, graph):
        with pytest.raises(ValueError):
            run_powergraph(graph, num_machines=0)


class TestPatricBaseline:
    def test_count_matches_reference(self, graph, expected):
        result = run_patric(graph, num_processors=4, memory_per_processor="64MB")
        assert result.succeeded
        assert result.triangles == expected

    def test_oom_on_small_memory(self, graph):
        result = run_patric(graph, num_processors=2, memory_per_processor=8 * 1024)
        assert result.oom
        assert result.triangles is None

    def test_message_traffic_recorded(self, graph):
        result = run_patric(graph, num_processors=4, memory_per_processor="64MB")
        assert result.message_bytes > 0

    def test_single_processor(self, graph, expected):
        assert run_patric(graph, num_processors=1).triangles == expected

    def test_invalid_processor_count(self, graph):
        with pytest.raises(ValueError):
            run_patric(graph, num_processors=0)


class TestOPTBaseline:
    def test_count_matches_reference(self, graph, expected):
        result = run_opt(graph, num_threads=2)
        assert result.triangles == expected

    def test_database_artifacts_written(self, tmp_path, graph):
        from repro.externalmem.blockio import BlockDevice

        device = BlockDevice(tmp_path / "optdb")
        result = run_opt(graph, device=device)
        assert result.database_bytes > 0
        assert device.exists("opt_database.bin")
        assert device.exists("opt_index.bin")

    def test_two_phases_measured(self, graph):
        result = run_opt(graph)
        assert result.database_seconds > 0.0
        assert result.calc_seconds > 0.0

    def test_database_larger_than_oriented_graph(self, graph):
        """Table II's shape (structural form): OPT's database re-encodes the
        whole bidirectional graph plus indexes, so it is strictly larger than
        the oriented graph PDTL's preprocessing produces -- the deterministic
        reason its setup phase costs more.  (The wall-clock comparison itself
        is reported by the Table II / Figure 12 benchmarks.)"""
        opt = run_opt(graph)
        oriented_bytes = 8 * (graph.num_vertices + graph.num_undirected_edges)
        assert opt.database_bytes > oriented_bytes

    def test_invalid_threads(self, graph):
        with pytest.raises(ValueError):
            run_opt(graph, num_threads=0)


class TestCTTPBaseline:
    def test_count_matches_reference(self, graph, expected):
        assert run_cttp(graph, num_reducers=3).triangles == expected

    def test_two_rounds(self, graph):
        assert run_cttp(graph).rounds == 2

    def test_shuffle_volume_exceeds_graph_size(self):
        """The paper's criticism of MapReduce counters: intermediate wedge
        data dwarfs the input graph."""
        graph = CSRGraph.from_edgelist(watts_strogatz(200, k=10, p=0.05, seed=1))
        result = run_cttp(graph)
        graph_bytes = 8 * graph.num_edges
        assert result.shuffle_bytes > graph_bytes

    def test_wedges_bound_triangles(self, graph, expected):
        result = run_cttp(graph)
        assert result.num_wedges >= expected

    def test_triangle_free_graph(self):
        from repro.graph.generators import ring_graph

        graph = CSRGraph.from_edgelist(ring_graph(20))
        result = run_cttp(graph)
        assert result.triangles == 0

    def test_invalid_reducers(self, graph):
        with pytest.raises(ValueError):
            run_cttp(graph, num_reducers=0)


class TestAllBaselinesAgree:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_every_system_returns_the_same_count(self, seed):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=seed))
        expected = forward_count(graph)
        assert run_single_core_mgt(graph).triangles == expected
        assert run_powergraph(graph, 2).triangles == expected
        assert run_patric(graph, 3).triangles == expected
        assert run_opt(graph).triangles == expected
        assert run_cttp(graph).triangles == expected
