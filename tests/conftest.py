"""Shared fixtures for the PDTL reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PDTLConfig
from repro.externalmem.blockio import BlockDevice
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    planar_grid,
    ring_graph,
    rmat,
    watts_strogatz,
)


@pytest.fixture
def device(tmp_path) -> BlockDevice:
    """A small-block device rooted in the test's temporary directory."""
    return BlockDevice(tmp_path / "disk", block_size=512)


@pytest.fixture
def small_config() -> PDTLConfig:
    """A deliberately tiny configuration that forces several MGT windows."""
    return PDTLConfig(
        num_nodes=1,
        procs_per_node=1,
        memory_per_proc=256 * 1024,
        block_size=512,
    )


@pytest.fixture
def k6() -> CSRGraph:
    """The complete graph on 6 vertices (20 triangles)."""
    return CSRGraph.from_edgelist(complete_graph(6))


@pytest.fixture
def triangle_graph() -> CSRGraph:
    """A single triangle."""
    return CSRGraph.from_edgelist(EdgeList([(0, 1), (1, 2), (0, 2)]))


@pytest.fixture
def triangle_free_graph() -> CSRGraph:
    """A 6-cycle: connected but triangle-free."""
    return CSRGraph.from_edgelist(ring_graph(6))


@pytest.fixture
def rmat_small() -> CSRGraph:
    """A small RMAT graph with a few thousand triangles."""
    return CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=3))


@pytest.fixture
def social_small() -> CSRGraph:
    """A triangle-rich small-world graph."""
    return CSRGraph.from_edgelist(watts_strogatz(200, k=8, p=0.1, seed=7))


@pytest.fixture
def sparse_random() -> CSRGraph:
    """A sparse Erdős–Rényi graph (few triangles)."""
    return CSRGraph.from_edgelist(erdos_renyi(300, p=0.01, seed=11))


@pytest.fixture
def grid_graph() -> CSRGraph:
    """A planar grid with diagonals: 2 triangles per cell, constant arboricity."""
    return CSRGraph.from_edgelist(planar_grid(10, 12, diagonals=True))


@pytest.fixture
def empty_graph() -> CSRGraph:
    return CSRGraph.empty(5)


def networkx_triangle_count(graph: CSRGraph) -> int:
    """Reference triangle count via networkx (used by several test modules)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.iter_edges())
    return sum(nx.triangles(g).values()) // 3


@pytest.fixture
def nx_count():
    return networkx_triangle_count


def random_small_graph(seed: int, max_vertices: int = 40, edge_prob: float = 0.2) -> CSRGraph:
    """Deterministic small random graph used by the property-style sweeps."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, max_vertices))
    iu, iv = np.triu_indices(n, k=1)
    keep = rng.random(iu.shape[0]) < edge_prob
    edges = np.stack([iu[keep], iv[keep]], axis=1)
    return CSRGraph.from_edgelist(EdgeList(edges, n))
