"""Unit tests for the Theorem IV.2 / IV.3 cost model."""

from __future__ import annotations

import pytest

from repro.analysis.cost_model import estimate_mgt_cost, estimate_pdtl_cost
from repro.core.config import PDTLConfig
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, rmat


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=0))


class TestMGTEstimate:
    def test_iterations_formula(self, graph):
        config = PDTLConfig(memory_per_proc=16 * 1024, block_size=512)
        est = estimate_mgt_cost(graph, config)
        expected = -(-graph.num_undirected_edges // config.window_edges)
        assert est.iterations == expected

    def test_io_decreases_with_more_memory(self, graph):
        small = estimate_mgt_cost(graph, PDTLConfig(memory_per_proc=16 * 1024, block_size=512))
        large = estimate_mgt_cost(graph, PDTLConfig(memory_per_proc=1 << 20, block_size=512))
        assert large.io_blocks < small.io_blocks

    def test_io_decreases_with_larger_blocks(self, graph):
        small_b = estimate_mgt_cost(graph, PDTLConfig(memory_per_proc=1 << 20, block_size=512))
        large_b = estimate_mgt_cost(graph, PDTLConfig(memory_per_proc=1 << 20, block_size=8192))
        assert large_b.io_blocks < small_b.io_blocks

    def test_listing_adds_output_term(self, graph):
        config = PDTLConfig(memory_per_proc=1 << 20)
        count_only = estimate_mgt_cost(graph, config, num_triangles=100_000, count_only=True)
        listing = estimate_mgt_cost(graph, config, num_triangles=100_000, count_only=False)
        assert listing.io_blocks > count_only.io_blocks

    def test_cpu_scales_with_inverse_memory(self, graph):
        small = estimate_mgt_cost(graph, PDTLConfig(memory_per_proc=16 * 1024, block_size=512))
        large = estimate_mgt_cost(graph, PDTLConfig(memory_per_proc=1 << 22))
        assert small.cpu_operations > large.cpu_operations

    def test_empty_graph(self):
        est = estimate_mgt_cost(CSRGraph.empty(5), PDTLConfig())
        assert est.iterations == 0
        assert est.io_blocks == 0.0

    def test_arboricity_bound_matches_property(self, graph):
        from repro.graph.properties import arboricity_upper_bound

        est = estimate_mgt_cost(graph, PDTLConfig())
        assert est.arboricity_bound == arboricity_upper_bound(graph)


class TestPDTLEstimate:
    def test_network_traffic_formula(self, graph):
        config = PDTLConfig(num_nodes=3, procs_per_node=4, count_only=True)
        est = estimate_pdtl_cost(graph, config, num_triangles=1000)
        expected = 3 * (4 + graph.num_undirected_edges)  # + 0 for counting
        assert est.network_traffic_elements == expected

    def test_network_traffic_includes_triangles_when_listing(self, graph):
        config = PDTLConfig(num_nodes=2, procs_per_node=2, count_only=False)
        est = estimate_pdtl_cost(graph, config, num_triangles=1000)
        assert est.network_traffic_elements == 2 * (2 + graph.num_undirected_edges) + 1000

    def test_more_processors_reduce_iterations(self, graph):
        few = estimate_pdtl_cost(graph, PDTLConfig(num_nodes=1, procs_per_node=1, memory_per_proc=32 * 1024))
        many = estimate_pdtl_cost(graph, PDTLConfig(num_nodes=4, procs_per_node=8, memory_per_proc=32 * 1024))
        assert many.iterations_per_processor <= few.iterations_per_processor

    def test_io_has_np_scan_term(self, graph):
        config_small = PDTLConfig(num_nodes=1, procs_per_node=1, memory_per_proc=1 << 22)
        config_large = PDTLConfig(num_nodes=4, procs_per_node=8, memory_per_proc=1 << 22)
        small = estimate_pdtl_cost(graph, config_small)
        large = estimate_pdtl_cost(graph, config_large)
        # with memory large enough for one window, I/O grows with N*P because
        # every processor scans the whole graph at least once
        assert large.io_blocks > small.io_blocks

    def test_total_processors_recorded(self, graph):
        est = estimate_pdtl_cost(graph, PDTLConfig(num_nodes=2, procs_per_node=3))
        assert est.total_processors == 6
        assert est.num_nodes == 2


class TestModelAgainstMeasurement:
    """Coarse validation: measured I/O counters track the model's shape."""

    def test_measured_window_count_matches_model(self, device, graph):
        from repro.core.mgt import mgt_count
        from repro.core.orientation import orient_graph
        from repro.graph.binfmt import write_graph

        gf = write_graph(device, "g", graph)
        oriented = orient_graph(gf).oriented
        config = PDTLConfig(memory_per_proc=16 * 1024, block_size=512)
        measured = mgt_count(oriented, config)
        est = estimate_mgt_cost(oriented, config)
        assert measured.iterations == est.iterations

    def test_measured_io_halves_when_memory_doubles(self, device):
        from repro.core.mgt import mgt_count
        from repro.core.orientation import orient_graph
        from repro.graph.binfmt import write_graph

        graph = CSRGraph.from_edgelist(rmat(9, edge_factor=8, seed=5))
        gf = write_graph(device, "big", graph)
        oriented = orient_graph(gf).oriented
        small_cfg = PDTLConfig(memory_per_proc=32 * 1024, block_size=512)
        large_cfg = PDTLConfig(memory_per_proc=128 * 1024, block_size=512)
        small = mgt_count(oriented, small_cfg)
        large = mgt_count(oriented, large_cfg)
        assert small.io_stats.blocks_read > large.io_stats.blocks_read
        ratio_measured = small.io_stats.blocks_read / large.io_stats.blocks_read
        ratio_model = (
            estimate_mgt_cost(oriented, small_cfg).io_blocks
            / estimate_mgt_cost(oriented, large_cfg).io_blocks
        )
        # shapes agree within a factor of ~2
        assert ratio_measured == pytest.approx(ratio_model, rel=1.0)
