"""Unit tests for the text-report formatting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.report import (
    format_seconds_cell,
    format_table,
    load_imbalance_table,
    paper_vs_measured,
    speedup_table,
)
from repro.cluster.metrics import ClusterMetrics
from repro.externalmem.iostats import IOStats
from repro.utils import format_seconds, parse_duration


class TestSecondsCells:
    def test_paper_style_formatting(self):
        assert format_seconds_cell(164.2) == "2m44.2s"
        assert format_seconds_cell(4644.5) == "1h17m24.5s"
        assert format_seconds_cell(3.6) == "3.6s"

    def test_missing_and_failure_markers(self):
        assert format_seconds_cell(None) == "-"
        assert format_seconds_cell(float("inf")) == "F"

    def test_roundtrip_with_parse_duration(self):
        for value in (0.5, 59.9, 60.0, 3600.0, 4644.5):
            assert parse_duration(format_seconds(value)) == pytest.approx(value, abs=0.05)


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [
            {"Graph": "Twitter", "Time": 12.5},
            {"Graph": "Yahoo", "Time": 300.0},
        ]
        text = format_table(rows, title="Table X")
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "Graph" in lines[1] and "Time" in lines[1]
        assert "Twitter" in lines[3]
        assert "Yahoo" in lines[4]

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.startswith("c")
        assert "b" not in header

    def test_missing_values_render_dash(self):
        text = format_table([{"a": 1, "b": None}])
        assert "-" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456}])
        assert "0.123" in text


class TestSpeedupTable:
    def test_speedups_computed(self):
        baseline = {"Twitter": 100.0}
        measured = {"Twitter": {"2 cores": 50.0, "4 cores": 25.0}}
        text = speedup_table(baseline, measured)
        assert "2.0x" in text
        assert "4.0x" in text

    def test_zero_time_safe(self):
        text = speedup_table({"g": 10.0}, {"g": {"x": 0.0}})
        assert "-" in text


class TestPaperVsMeasured:
    def test_renders_rows(self):
        rows = [
            {"experiment": "Table II / Twitter", "paper": "32.8s", "measured": "0.5s"},
        ]
        text = paper_vs_measured(rows, title="Comparison")
        assert "Table II / Twitter" in text
        assert "paper" in text and "measured" in text


class TestLoadImbalanceTable:
    def _metrics(self) -> ClusterMetrics:
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(
            3.0, 0.0, 0, IOStats(), chunks_completed=4, chunks_stolen=1
        )
        metrics.node(1).add_worker(
            1.0, 0.0, 0, IOStats(), chunks_completed=2, chunks_retried=1
        )
        return metrics

    def test_renders_per_node_and_cluster_rows(self):
        text = load_imbalance_table(self._metrics(), title="Imbalance")
        lines = text.splitlines()
        assert lines[0] == "Imbalance"
        assert "stolen" in lines[1] and "retried" in lines[1]
        assert "cluster" in lines[-1]

    def test_cluster_row_carries_imbalance_ratio(self):
        # worker calc times 3.0 and 1.0 -> max/mean = 1.5
        text = load_imbalance_table(self._metrics())
        assert "imbalance 1.50x" in text
