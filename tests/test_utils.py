"""Unit tests for repro.utils helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    StopwatchRegistry,
    Timer,
    ceil_div,
    chunk_ranges,
    even_splits,
    format_seconds,
    format_size,
    is_power_of_two,
    log2_int,
    parse_duration,
    parse_size,
    prefix_sums,
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("1KB", 1024),
            ("1k", 1024),
            ("2MB", 2 * 1024**2),
            ("1.5GiB", int(1.5 * 1024**3)),
            ("3TB", 3 * 1024**4),
            (4096, 4096),
            (12.7, 12),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "12XB", -1])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_format_roundtrip(self):
        assert format_size(1024) == "1.0KiB"
        assert format_size(500) == "500B"
        assert format_size(3 * 1024**3) == "3.0GiB"


class TestDurations:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("3.6s", 3.6),
            ("2m44.2s", 164.2),
            ("1h17m24.5s", 4644.5),
            ("45m", 2700.0),
            (12.0, 12.0),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            parse_duration("not a duration")

    def test_format(self):
        assert format_seconds(164.2) == "2m44.2s"
        assert format_seconds(4644.5) == "1h17m24.5s"
        assert format_seconds(0.3) == "0.3s"
        assert format_seconds(-5.0).startswith("-")


class TestTimers:
    def test_timer_context(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0.0

    def test_timer_accumulates(self):
        t = Timer()
        t.start()
        t.stop()
        first = t.elapsed
        t.start()
        t.stop()
        assert t.elapsed >= first

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_stopwatch_registry(self):
        reg = StopwatchRegistry()
        with reg.track("io"):
            pass
        reg.add("cpu", 2.0)
        assert reg.get("io") >= 0.0
        assert reg.get("cpu") == 2.0
        assert reg.get("missing") == 0.0
        other = StopwatchRegistry()
        other.add("cpu", 1.0)
        reg.merge(other)
        assert reg.as_dict()["cpu"] == 3.0


class TestChunking:
    def test_chunk_ranges_cover(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_chunk_ranges_more_chunks_than_items(self):
        ranges = chunk_ranges(2, 5)
        assert ranges[0] == (0, 1)
        assert ranges[-1] == (2, 2)
        assert sum(b - a for a, b in ranges) == 2

    def test_chunk_ranges_invalid(self):
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)

    def test_even_splits_balances_weights(self):
        weights = np.array([10, 1, 1, 1, 1, 1, 1, 10], dtype=float)
        ranges = even_splits(weights, 2)
        totals = [weights[a:b].sum() for a, b in ranges]
        assert abs(totals[0] - totals[1]) <= 10

    def test_even_splits_zero_weights_fall_back_to_equal(self):
        ranges = even_splits(np.zeros(9), 3)
        assert [b - a for a, b in ranges] == [3, 3, 3]

    def test_even_splits_empty(self):
        assert even_splits(np.array([]), 3) == [(0, 0)] * 3

    def test_even_splits_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            even_splits(np.array([1.0, -1.0]), 2)

    def test_prefix_sums(self):
        out = prefix_sums([2, 0, 3])
        assert out.tolist() == [0, 2, 2, 5]
        assert prefix_sums([]).tolist() == [0]


class TestIntegerHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_log2_int(self):
        assert log2_int(32) == 5
        with pytest.raises(ValueError):
            log2_int(12)
