"""Unit tests for the analogue dataset registry (Table I stand-ins)."""

from __future__ import annotations

import pytest

from repro.baselines.inmemory import forward_count
from repro.graph.datasets import (
    ANALOGUE_OF,
    DATASETS,
    PAPER_TABLE1,
    dataset_names,
    load_dataset,
)
from repro.graph.properties import graph_stats


class TestRegistry:
    def test_all_expected_datasets_present(self):
        names = dataset_names()
        for expected in ("livejournal", "orkut", "twitter", "yahoo"):
            assert expected in names
        assert any(n.startswith("rmat-") for n in names)

    def test_every_dataset_maps_to_a_paper_row(self):
        for name in dataset_names():
            paper_key = ANALOGUE_OF[name]
            assert paper_key in PAPER_TABLE1

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("no-such-graph")

    def test_specs_have_descriptions(self):
        for spec in DATASETS.values():
            assert spec.description
            assert spec.paper_name


class TestDatasetConstruction:
    @pytest.mark.parametrize("name", ["livejournal", "orkut", "rmat-10"])
    def test_build_produces_valid_graph(self, name):
        g = load_dataset(name, seed=0, scale=0.25)
        g.check_sorted_adjacency()
        g.check_simple()
        assert g.num_vertices > 0
        assert g.num_undirected_edges > 0

    def test_deterministic_given_seed(self):
        a = load_dataset("rmat-10", seed=5)
        b = load_dataset("rmat-10", seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = load_dataset("rmat-10", seed=1)
        b = load_dataset("rmat-10", seed=2)
        assert a != b

    def test_datasets_contain_triangles(self):
        g = load_dataset("rmat-10", seed=0)
        assert forward_count(g) > 0


class TestStructuralAnalogy:
    """The analogues must preserve the *relative* structure of Table I."""

    def test_yahoo_is_sparser_than_twitter(self):
        yahoo = graph_stats(load_dataset("yahoo", seed=0), "yahoo")
        twitter = graph_stats(load_dataset("twitter", seed=0), "twitter")
        assert yahoo.avg_degree < twitter.avg_degree

    def test_yahoo_has_more_vertices_than_twitter(self):
        yahoo = load_dataset("yahoo", seed=0)
        twitter = load_dataset("twitter", seed=0)
        assert yahoo.num_vertices > twitter.num_vertices

    def test_orkut_is_denser_than_livejournal(self):
        orkut = graph_stats(load_dataset("orkut", seed=0), "orkut")
        lj = graph_stats(load_dataset("livejournal", seed=0), "livejournal")
        assert orkut.avg_degree > lj.avg_degree

    def test_rmat_sizes_increase_with_scale(self):
        sizes = [
            load_dataset(name, seed=0).num_undirected_edges
            for name in ("rmat-10", "rmat-11", "rmat-12")
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_hubs_exist_in_skewed_graphs(self):
        for name in ("twitter", "yahoo"):
            g = load_dataset(name, seed=0)
            assert g.max_degree > 10 * g.degrees.mean()
