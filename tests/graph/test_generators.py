"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    planar_grid,
    power_law_degree_graph,
    ring_graph,
    rmat,
    watts_strogatz,
)


def as_csr(edgelist):
    return CSRGraph.from_edgelist(edgelist)


class TestRMAT:
    def test_vertex_count(self):
        el = rmat(6, edge_factor=4, seed=0)
        assert el.num_vertices == 64

    def test_edge_count_close_to_target(self):
        el = rmat(8, edge_factor=8, seed=1)
        target = 8 * 256
        # dedup/self-loop removal loses some edges but not most of them
        assert 0.5 * target < el.num_edges <= target

    def test_deterministic_given_seed(self):
        a = rmat(6, edge_factor=4, seed=42)
        b = rmat(6, edge_factor=4, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = rmat(7, edge_factor=8, seed=1)
        b = rmat(7, edge_factor=8, seed=2)
        assert a != b

    def test_simple_and_canonical(self):
        el = rmat(6, edge_factor=8, seed=3)
        assert not el.has_self_loops()
        assert el.is_sorted()
        assert el == el.deduplicated()

    def test_skewed_degree_distribution(self):
        g = as_csr(rmat(9, edge_factor=8, seed=5))
        degrees = g.degrees
        # scale-free-ish: the max degree should far exceed the average
        assert degrees.max() > 5 * degrees.mean()

    def test_scale_zero(self):
        assert rmat(0, edge_factor=4).num_edges == 0

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(4, a=0.9, b=0.9, c=0.9)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            rmat(-1)


class TestErdosRenyi:
    def test_gnm_exact_edge_count(self):
        el = erdos_renyi(50, m=100, seed=0)
        assert el.num_edges == 100

    def test_gnm_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(4, m=100)

    def test_gnp_zero_probability(self):
        assert erdos_renyi(20, p=0.0).num_edges == 0

    def test_gnp_full_probability(self):
        el = erdos_renyi(10, p=1.0, seed=0)
        assert el.num_edges == 45

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValueError):
            erdos_renyi(10)
        with pytest.raises(ValueError):
            erdos_renyi(10, p=0.5, m=5)

    def test_gnp_simple(self):
        el = erdos_renyi(40, p=0.2, seed=3)
        assert not el.has_self_loops()
        assert el == el.deduplicated()


class TestClassicGraphs:
    def test_complete_graph_edge_count(self):
        assert complete_graph(6).num_edges == 15
        assert complete_graph(2).num_edges == 1
        assert complete_graph(1).num_edges == 0
        assert complete_graph(0).num_edges == 0

    def test_complete_graph_negative_rejected(self):
        with pytest.raises(ValueError):
            complete_graph(-1)

    def test_ring_graph(self):
        assert ring_graph(5).num_edges == 5
        assert ring_graph(2).num_edges == 1
        assert ring_graph(1).num_edges == 0

    def test_ring_is_triangle_free_for_large_n(self):
        from repro.baselines.inmemory import forward_count

        assert forward_count(as_csr(ring_graph(10))) == 0
        assert forward_count(as_csr(ring_graph(3))) == 1

    def test_planar_grid_edge_count(self):
        # rows*(cols-1) horizontal + (rows-1)*cols vertical
        el = planar_grid(3, 4)
        assert el.num_edges == 3 * 3 + 2 * 4

    def test_planar_grid_diagonals_add_triangles(self):
        from repro.baselines.inmemory import forward_count

        plain = forward_count(as_csr(planar_grid(4, 4)))
        with_diag = forward_count(as_csr(planar_grid(4, 4, diagonals=True)))
        assert plain == 0
        assert with_diag == 2 * 3 * 3  # two triangles per cell

    def test_planar_grid_empty(self):
        assert planar_grid(0, 5).num_edges == 0


class TestWattsStrogatz:
    def test_edge_count_without_rewiring(self):
        el = watts_strogatz(30, k=4, p=0.0, seed=0)
        assert el.num_edges == 60

    def test_high_clustering(self):
        from repro.baselines.inmemory import forward_count

        g = as_csr(watts_strogatz(100, k=6, p=0.0, seed=0))
        assert forward_count(g) > 0

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, k=3)

    def test_k_at_least_n_gives_complete(self):
        el = watts_strogatz(5, k=6, p=0.1)
        assert el.num_edges == 10


class TestBarabasiAlbert:
    def test_vertex_count_and_growth(self):
        el = barabasi_albert(100, attach=3, seed=0)
        assert el.num_vertices == 100
        # each new vertex adds `attach` edges (post-core), some dedup possible
        assert el.num_edges >= 3 * 90

    def test_small_n_falls_back_to_complete(self):
        el = barabasi_albert(3, attach=4)
        assert el.num_edges == 3

    def test_invalid_attach(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, attach=0)

    def test_hub_formation(self):
        g = as_csr(barabasi_albert(300, attach=2, seed=1))
        assert g.max_degree > 3 * g.degrees.mean()


class TestPowerLaw:
    def test_vertex_count(self):
        el = power_law_degree_graph(200, seed=0)
        assert el.num_vertices == 200

    def test_extreme_hubs_exist(self):
        g = as_csr(power_law_degree_graph(2000, exponent=2.0, min_degree=2, seed=1))
        assert g.max_degree > 10 * max(g.degrees.mean(), 1)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            power_law_degree_graph(100, exponent=1.0)

    def test_tiny_graph(self):
        assert power_law_degree_graph(1).num_edges == 0

    def test_deterministic(self):
        a = power_law_degree_graph(300, seed=9)
        b = power_law_degree_graph(300, seed=9)
        assert a == b


class TestGeneratorOutputsAreValidCSRInputs:
    @pytest.mark.parametrize(
        "edgelist",
        [
            rmat(6, edge_factor=6, seed=0),
            erdos_renyi(50, p=0.1, seed=0),
            barabasi_albert(60, attach=3, seed=0),
            watts_strogatz(60, k=4, p=0.2, seed=0),
            complete_graph(8),
            planar_grid(5, 5, diagonals=True),
            power_law_degree_graph(80, seed=0),
        ],
        ids=["rmat", "er", "ba", "ws", "complete", "grid", "powerlaw"],
    )
    def test_csr_invariants_hold(self, edgelist):
        g = CSRGraph.from_edgelist(edgelist)
        g.check_sorted_adjacency()
        g.check_simple()
        assert g.is_undirected_consistent()
