"""Unit tests for the on-disk degree/adjacency binary graph format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import open_graph, write_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import complete_graph, rmat
from repro.core.orientation import orient_csr


@pytest.fixture
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=1))


class TestWriteAndOpen:
    def test_roundtrip_metadata(self, device, graph):
        gf = write_graph(device, "g", graph)
        assert gf.num_vertices == graph.num_vertices
        assert gf.num_edges == graph.num_edges
        assert gf.max_degree == graph.max_degree
        assert not gf.directed

    def test_open_reads_same_metadata(self, device, graph):
        write_graph(device, "g", graph)
        gf = open_graph(device, "g")
        assert gf.num_vertices == graph.num_vertices
        assert gf.num_edges == graph.num_edges
        assert gf.max_degree == graph.max_degree

    def test_open_missing_graph(self, device):
        with pytest.raises(GraphFormatError):
            open_graph(device, "nope")

    def test_corrupt_metadata_rejected(self, device, graph):
        write_graph(device, "g", graph)
        meta = device.open("g.meta")
        meta.write_array(np.array([0], dtype=np.int64), offset_items=0)
        with pytest.raises(GraphFormatError):
            open_graph(device, "g")

    def test_directed_flag_roundtrip(self, device, graph):
        oriented = orient_csr(graph)
        gf = write_graph(device, "o", oriented)
        assert gf.directed
        assert open_graph(device, "o").directed

    def test_write_rejects_unsorted_graph(self, device):
        bad = CSRGraph(np.array([0, 2, 2]), np.array([1, 0]))
        with pytest.raises(GraphFormatError):
            write_graph(device, "bad", bad)

    def test_overwrite_existing(self, device, graph):
        write_graph(device, "g", graph)
        small = CSRGraph.from_edgelist(complete_graph(3))
        gf = write_graph(device, "g", small)
        assert gf.num_vertices == 3
        assert open_graph(device, "g").num_vertices == 3


class TestReads:
    def test_read_degrees(self, device, graph):
        gf = write_graph(device, "g", graph)
        np.testing.assert_array_equal(gf.read_degrees(), graph.degrees)

    def test_read_degree_range(self, device, graph):
        gf = write_graph(device, "g", graph)
        np.testing.assert_array_equal(
            gf.read_degree_range(3, 5), graph.degrees[3:8]
        )

    def test_read_degree_range_out_of_bounds(self, device, graph):
        gf = write_graph(device, "g", graph)
        with pytest.raises(GraphFormatError):
            gf.read_degree_range(0, graph.num_vertices + 1)

    def test_read_adjacency_range(self, device, graph):
        gf = write_graph(device, "g", graph)
        np.testing.assert_array_equal(
            gf.read_adjacency_range(0, graph.num_edges), graph.indices
        )

    def test_read_adjacency_range_out_of_bounds(self, device, graph):
        gf = write_graph(device, "g", graph)
        with pytest.raises(GraphFormatError):
            gf.read_adjacency_range(graph.num_edges, 1)

    def test_read_neighbors(self, device, graph):
        gf = write_graph(device, "g", graph)
        offsets = gf.offsets()
        for v in (0, graph.num_vertices // 2, graph.num_vertices - 1):
            np.testing.assert_array_equal(
                gf.read_neighbors(v, offsets), graph.neighbors(v)
            )

    def test_to_csr_roundtrip(self, device, graph):
        gf = write_graph(device, "g", graph)
        assert gf.to_csr() == graph

    def test_iter_adjacency_blocks_cover_graph(self, device, graph):
        gf = write_graph(device, "g", graph)
        seen_degrees = []
        seen_adjacency = []
        for first, degrees, adjacency in gf.iter_adjacency_blocks(7):
            seen_degrees.append(degrees)
            seen_adjacency.append(adjacency)
        np.testing.assert_array_equal(np.concatenate(seen_degrees), graph.degrees)
        np.testing.assert_array_equal(np.concatenate(seen_adjacency), graph.indices)

    def test_size_bytes(self, device, graph):
        gf = write_graph(device, "g", graph)
        expected = 8 * (graph.num_vertices + graph.num_edges)
        assert gf.size_bytes == expected


class TestValidateAndCopy:
    def test_validate_passes_for_written_graph(self, device, graph):
        write_graph(device, "g", graph).validate()

    def test_validate_detects_tampered_degree_file(self, device, graph):
        gf = write_graph(device, "g", graph)
        deg = device.open("g.deg")
        tampered = gf.read_degrees()
        tampered[0] += 1
        deg.write_array(tampered)
        with pytest.raises(GraphFormatError):
            gf.validate()

    def test_copy_to_other_device(self, tmp_path, device, graph):
        gf = write_graph(device, "g", graph)
        other = BlockDevice(tmp_path / "other", block_size=512)
        copy = gf.copy_to(other)
        assert copy.to_csr() == graph
        assert other.exists("g.deg") and other.exists("g.adj")
        # the copy is readable through open_graph on the destination device
        assert open_graph(other, "g").num_edges == graph.num_edges

    def test_copy_charges_io_on_both_devices(self, tmp_path, device, graph):
        gf = write_graph(device, "g", graph)
        other = BlockDevice(tmp_path / "other", block_size=512)
        before_src = device.stats.bytes_read
        before_dst = other.stats.bytes_written
        gf.copy_to(other)
        assert device.stats.bytes_read > before_src
        assert other.stats.bytes_written > before_dst

    def test_delete_removes_files(self, device, graph):
        gf = write_graph(device, "g", graph)
        gf.delete()
        assert not device.exists("g.deg")
        assert not device.exists("g.adj")
        assert not device.exists("g.meta")


class TestEmptyGraph:
    def test_empty_graph_roundtrip(self, device):
        g = CSRGraph.empty(4)
        gf = write_graph(device, "empty", g)
        assert gf.num_edges == 0
        assert gf.to_csr() == g
        gf.validate()

    def test_single_edge_graph(self, device):
        g = CSRGraph.from_edgelist(EdgeList([(0, 1)]))
        gf = write_graph(device, "one", g)
        assert gf.to_csr() == g
