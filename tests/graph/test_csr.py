"""Unit tests for repro.graph.csr.CSRGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import complete_graph, ring_graph


class TestConstruction:
    def test_from_edgelist_undirected(self):
        g = CSRGraph.from_edgelist(EdgeList([(0, 1), (1, 2)]))
        assert g.num_vertices == 3
        assert g.num_edges == 4  # bidirectional storage
        assert g.num_undirected_edges == 2
        assert not g.directed

    def test_from_edgelist_directed(self):
        g = CSRGraph.from_edgelist(EdgeList([(0, 1), (1, 2)]), directed=True)
        assert g.directed
        assert g.num_edges == 2

    def test_from_arrays_roundtrip(self):
        degrees = np.array([2, 1, 1], dtype=np.int64)
        adjacency = np.array([1, 2, 0, 0], dtype=np.int64)
        g = CSRGraph.from_arrays(degrees, adjacency)
        assert g.degree(0) == 2
        assert list(g.neighbors(0)) == [1, 2]

    def test_from_arrays_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_arrays(np.array([2, 1]), np.array([1, 0]))

    def test_empty(self):
        g = CSRGraph.empty(4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_indptr_indices_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 3]), np.array([0, 1]))

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))


class TestAccessors:
    def test_degrees_and_max_degree(self):
        g = CSRGraph.from_edgelist(EdgeList([(0, 1), (0, 2), (0, 3)]))
        assert g.degree(0) == 3
        assert g.max_degree == 3
        assert list(g.degrees) == [3, 1, 1, 1]

    def test_neighbors_sorted(self):
        g = CSRGraph.from_edgelist(EdgeList([(0, 3), (0, 1), (0, 2)]))
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_has_edge(self):
        g = CSRGraph.from_edgelist(EdgeList([(0, 1), (1, 2)]))
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_iter_edges_matches_edge_array(self):
        g = CSRGraph.from_edgelist(complete_graph(4))
        from_iter = list(g.iter_edges())
        from_array = list(map(tuple, g.edge_array().tolist()))
        assert from_iter == from_array
        assert len(from_iter) == 12

    def test_edge_sources_length(self):
        g = CSRGraph.from_edgelist(ring_graph(5))
        assert g.edge_sources().shape[0] == g.num_edges

    def test_memory_bytes_positive(self):
        g = CSRGraph.from_edgelist(complete_graph(5))
        assert g.memory_bytes() >= g.indices.nbytes

    def test_repr_mentions_direction(self):
        g = CSRGraph.from_edgelist(EdgeList([(0, 1)]), directed=True)
        assert "directed" in repr(g)


class TestInvariants:
    def test_check_sorted_adjacency_passes_for_sorted(self):
        g = CSRGraph.from_edgelist(complete_graph(5))
        g.check_sorted_adjacency()  # must not raise

    def test_check_sorted_adjacency_detects_unsorted(self):
        indptr = np.array([0, 2, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)  # [1, 0] unsorted
        g = CSRGraph(indptr, indices)
        with pytest.raises(GraphFormatError):
            g.check_sorted_adjacency()

    def test_check_sorted_allows_decrease_at_list_boundary(self):
        # vertex 0 -> [5], vertex 1 -> [0]: boundary decrease is legal
        indptr = np.array([0, 1, 2, 2, 2, 2, 2], dtype=np.int64)
        indices = np.array([5, 0], dtype=np.int64)
        CSRGraph(indptr, indices).check_sorted_adjacency()

    def test_check_simple_detects_self_loop(self):
        g = CSRGraph(np.array([0, 1]), np.array([0]))
        with pytest.raises(GraphFormatError):
            g.check_simple()

    def test_check_simple_detects_duplicate(self):
        g = CSRGraph(np.array([0, 2, 2]), np.array([1, 1]))
        with pytest.raises(GraphFormatError):
            g.check_simple()

    def test_undirected_consistency(self):
        g = CSRGraph.from_edgelist(EdgeList([(0, 1), (1, 2)]))
        assert g.is_undirected_consistent()
        directed = CSRGraph.from_edgelist(EdgeList([(0, 1)]), directed=True)
        assert not directed.is_undirected_consistent()


class TestConversions:
    def test_to_edgelist_roundtrip(self):
        original = EdgeList([(0, 1), (1, 2), (2, 3)])
        g = CSRGraph.from_edgelist(original)
        back = g.to_edgelist().canonical_undirected()
        assert list(back) == [(0, 1), (1, 2), (2, 3)]

    def test_to_networkx_counts(self):
        import networkx as nx

        g = CSRGraph.from_edgelist(complete_graph(4))
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 6
        assert isinstance(nxg, nx.Graph)

    def test_equality(self):
        a = CSRGraph.from_edgelist(complete_graph(4))
        b = CSRGraph.from_edgelist(complete_graph(4))
        c = CSRGraph.from_edgelist(complete_graph(5))
        assert a == b
        assert a != c
