"""Unit tests for repro.graph.edgelist.EdgeList."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList


class TestConstruction:
    def test_from_pairs(self):
        el = EdgeList([(0, 1), (1, 2)])
        assert el.num_edges == 2
        assert el.num_vertices == 3

    def test_from_numpy_array(self):
        arr = np.array([[0, 3], [2, 1]], dtype=np.int64)
        el = EdgeList(arr)
        assert el.num_edges == 2
        assert el.num_vertices == 4

    def test_empty(self):
        el = EdgeList.empty(7)
        assert el.num_edges == 0
        assert el.num_vertices == 7

    def test_explicit_num_vertices(self):
        el = EdgeList([(0, 1)], num_vertices=10)
        assert el.num_vertices == 10

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeList([(0, 5)], num_vertices=3)

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeList([(0, -1)])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeList(np.zeros((3, 3), dtype=np.int64))

    def test_iteration_yields_python_ints(self):
        el = EdgeList([(0, 1), (2, 3)])
        pairs = list(el)
        assert pairs == [(0, 1), (2, 3)]
        assert all(isinstance(x, int) for pair in pairs for x in pair)

    def test_equality(self):
        a = EdgeList([(0, 1), (1, 2)])
        b = EdgeList([(0, 1), (1, 2)])
        c = EdgeList([(0, 1)])
        assert a == b
        assert a != c


class TestNormalisation:
    def test_without_self_loops(self):
        el = EdgeList([(0, 0), (0, 1), (2, 2)])
        clean = el.without_self_loops()
        assert clean.num_edges == 1
        assert not clean.has_self_loops()

    def test_deduplicated(self):
        el = EdgeList([(0, 1), (0, 1), (1, 2)])
        assert el.deduplicated().num_edges == 2

    def test_symmetrized_adds_reverse_edges(self):
        el = EdgeList([(0, 1), (1, 2)])
        sym = el.symmetrized()
        assert sym.num_edges == 4
        assert sym.is_symmetric()
        assert sym.is_sorted()

    def test_symmetrized_removes_loops_and_duplicates(self):
        el = EdgeList([(0, 1), (1, 0), (0, 0), (0, 1)])
        sym = el.symmetrized()
        assert sym.num_edges == 2
        assert not sym.has_self_loops()

    def test_canonical_undirected(self):
        el = EdgeList([(1, 0), (0, 1), (2, 1), (1, 1)])
        canon = el.canonical_undirected()
        assert list(canon) == [(0, 1), (1, 2)]

    def test_sorted_and_is_sorted(self):
        el = EdgeList([(2, 0), (0, 5), (0, 1)])
        assert not el.is_sorted()
        assert el.sorted().is_sorted()

    def test_is_sorted_with_single_edge(self):
        assert EdgeList([(3, 1)]).is_sorted()

    def test_is_symmetric_false_for_one_way_edge(self):
        assert not EdgeList([(0, 1)]).is_symmetric()

    def test_empty_operations(self):
        el = EdgeList.empty(4)
        assert el.symmetrized().num_edges == 0
        assert el.canonical_undirected().num_edges == 0
        assert el.is_sorted()
        assert el.is_symmetric()


class TestTransformations:
    def test_relabeled_preserves_edge_count(self):
        el = EdgeList([(0, 1), (1, 2), (2, 3)])
        perm = [3, 2, 1, 0]
        out = el.relabeled(perm)
        assert out.num_edges == el.num_edges
        # undirected view is preserved: {0,1},{1,2},{2,3} map to {3,2},{2,1},{1,0}
        assert sorted(map(tuple, out.canonical_undirected().edges.tolist())) == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_relabeled_rejects_non_bijection(self):
        el = EdgeList([(0, 1)], num_vertices=3)
        with pytest.raises(GraphFormatError):
            el.relabeled([0, 0, 1])

    def test_relabeled_rejects_wrong_length(self):
        el = EdgeList([(0, 1)], num_vertices=3)
        with pytest.raises(GraphFormatError):
            el.relabeled([0, 1])

    def test_shuffled_is_permutation_of_rows(self):
        el = EdgeList([(0, 1), (1, 2), (2, 3), (3, 4)])
        shuffled = el.shuffled(seed=5)
        assert sorted(map(tuple, shuffled.edges.tolist())) == sorted(
            map(tuple, el.edges.tolist())
        )

    def test_subsampled_fraction_bounds(self):
        el = EdgeList([(0, 1), (1, 2), (2, 3)])
        assert el.subsampled(0.0).num_edges == 0
        assert el.subsampled(1.0).num_edges == 3
        with pytest.raises(ValueError):
            el.subsampled(1.5)

    def test_copy_is_independent(self):
        el = EdgeList([(0, 1)])
        cp = el.copy()
        cp.edges[0, 0] = 5
        assert el.edges[0, 0] == 0
