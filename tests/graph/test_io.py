"""Unit tests for text/binary edge-list interchange I/O."""

from __future__ import annotations

import pytest

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList
from repro.graph.generators import rmat
from repro.graph.io import (
    read_edgelist_binary,
    read_edgelist_text,
    write_edgelist_binary,
    write_edgelist_text,
)


class TestTextRoundTrip:
    def test_roundtrip_with_header(self, tmp_path):
        el = EdgeList([(0, 1), (2, 3)], num_vertices=10)
        path = write_edgelist_text(el, tmp_path / "g.txt")
        back = read_edgelist_text(path)
        assert back == el
        assert back.num_vertices == 10  # preserved via the header

    def test_roundtrip_without_header(self, tmp_path):
        el = EdgeList([(0, 1), (2, 3)])
        path = write_edgelist_text(el, tmp_path / "g.txt", header=False)
        back = read_edgelist_text(path)
        assert list(back) == list(el)
        assert back.num_vertices == 4  # inferred

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        el = read_edgelist_text(path)
        assert list(el) == [(0, 1), (1, 2)]

    def test_explicit_num_vertices_argument(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert read_edgelist_text(path, num_vertices=9).num_vertices == 9

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edgelist_text(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edgelist_text(path)

    def test_tab_and_space_separated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n2   3\n")
        assert list(read_edgelist_text(path)) == [(0, 1), (2, 3)]


class TestBinaryRoundTrip:
    def test_roundtrip(self, tmp_path):
        el = rmat(6, edge_factor=4, seed=0)
        path = write_edgelist_binary(el, tmp_path / "g.bin")
        back = read_edgelist_binary(path)
        assert back == el

    def test_empty_edgelist(self, tmp_path):
        el = EdgeList.empty(5)
        path = write_edgelist_binary(el, tmp_path / "empty.bin")
        back = read_edgelist_binary(path)
        assert back.num_edges == 0
        assert back.num_vertices == 5

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.bin"
        path.write_bytes(b"\x00" * 8)
        with pytest.raises(GraphFormatError):
            read_edgelist_binary(path)

    def test_inconsistent_length_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.bin"
        # header claims 3 edges but provides 1
        data = np.array([4, 3, 0, 1], dtype=np.int64)
        path.write_bytes(data.tobytes())
        with pytest.raises(GraphFormatError):
            read_edgelist_binary(path)
