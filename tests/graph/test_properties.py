"""Unit tests for graph statistics and the Theorem III.4 bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.inmemory import forward_count, per_vertex_triangle_counts
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, planar_grid, rmat, watts_strogatz
from repro.graph.properties import (
    arboricity_upper_bound,
    clustering_coefficient,
    degree_histogram,
    graph_stats,
    min_degree_edge_sum,
    transitivity,
    triangle_count_upper_bound,
)


class TestGraphStats:
    def test_complete_graph_stats(self):
        g = CSRGraph.from_edgelist(complete_graph(6))
        stats = graph_stats(g, "K6", num_triangles=20)
        assert stats.num_vertices == 6
        assert stats.num_edges == 15
        assert stats.num_triangles == 20
        assert stats.avg_degree == pytest.approx(5.0)
        assert stats.degree_std == pytest.approx(0.0)
        assert stats.max_degree == 5

    def test_stats_row_keys_match_table1(self):
        g = CSRGraph.from_edgelist(complete_graph(4))
        row = graph_stats(g, "K4").as_row()
        assert set(row.keys()) == {
            "Graph",
            "Nodes",
            "Edges",
            "Triangles",
            "Size",
            "AvDeg",
            "STD",
            "MaxDeg",
        }

    def test_rejects_directed_graph(self):
        from repro.core.orientation import orient_csr

        g = orient_csr(CSRGraph.from_edgelist(complete_graph(4)))
        with pytest.raises(ValueError):
            graph_stats(g)

    def test_size_bytes_matches_binary_format(self):
        g = CSRGraph.from_edgelist(complete_graph(5))
        stats = graph_stats(g, "K5")
        assert stats.size_bytes == g.indptr.nbytes + g.indices.nbytes


class TestArboricityBounds:
    def test_sqrt_bound(self):
        g = CSRGraph.from_edgelist(complete_graph(10))
        assert arboricity_upper_bound(g) == math.ceil(math.sqrt(45))

    def test_empty_graph(self):
        assert arboricity_upper_bound(CSRGraph.empty(5)) == 0

    def test_min_degree_sum_complete_graph(self):
        # K_n: every edge has min degree n-1, so sum = (n-1) * n(n-1)/2
        g = CSRGraph.from_edgelist(complete_graph(6))
        assert min_degree_edge_sum(g) == 5 * 15

    @pytest.mark.parametrize(
        "graph",
        [
            CSRGraph.from_edgelist(complete_graph(8)),
            CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=0)),
            CSRGraph.from_edgelist(watts_strogatz(80, k=6, p=0.1, seed=0)),
            CSRGraph.from_edgelist(planar_grid(6, 6, diagonals=True)),
        ],
        ids=["complete", "rmat", "ws", "grid"],
    )
    def test_triangle_bound_holds(self, graph):
        # T <= (1/3) sum min(d(u), d(v))   (paper, after Theorem III.4)
        triangles = forward_count(graph)
        assert triangles <= triangle_count_upper_bound(graph) + 1e-9

    def test_planar_grid_has_low_bound_relative_to_complete(self):
        grid = CSRGraph.from_edgelist(planar_grid(10, 10, diagonals=True))
        complete = CSRGraph.from_edgelist(complete_graph(18))
        # similar edge counts, but the planar graph's min-degree sum per edge
        # is far smaller (constant arboricity vs Θ(n))
        grid_ratio = min_degree_edge_sum(grid) / grid.num_undirected_edges
        complete_ratio = min_degree_edge_sum(complete) / complete.num_undirected_edges
        assert grid_ratio < complete_ratio / 2


class TestDegreeHistogram:
    def test_complete_graph(self):
        g = CSRGraph.from_edgelist(complete_graph(5))
        hist = degree_histogram(g)
        assert hist[4] == 5
        assert hist[:4].sum() == 0

    def test_empty_graph(self):
        assert degree_histogram(CSRGraph.empty(0)).tolist() == [0]

    def test_total_matches_vertex_count(self):
        g = CSRGraph.from_edgelist(rmat(6, edge_factor=4, seed=2))
        assert degree_histogram(g).sum() == g.num_vertices


class TestClusteringAndTransitivity:
    def test_complete_graph_coefficients_are_one(self):
        g = CSRGraph.from_edgelist(complete_graph(6))
        tri = per_vertex_triangle_counts(g)
        coeff = clustering_coefficient(g, tri)
        np.testing.assert_allclose(coeff, np.ones(6))

    def test_triangle_free_graph_coefficients_are_zero(self):
        from repro.graph.generators import ring_graph

        g = CSRGraph.from_edgelist(ring_graph(8))
        coeff = clustering_coefficient(g, np.zeros(8))
        np.testing.assert_allclose(coeff, np.zeros(8))

    def test_low_degree_vertices_are_zero(self):
        from repro.graph.edgelist import EdgeList

        g = CSRGraph.from_edgelist(EdgeList([(0, 1)]))
        coeff = clustering_coefficient(g, np.zeros(2))
        assert coeff.tolist() == [0.0, 0.0]

    def test_wrong_length_rejected(self):
        g = CSRGraph.from_edgelist(complete_graph(4))
        with pytest.raises(ValueError):
            clustering_coefficient(g, np.zeros(3))

    def test_transitivity_complete_graph(self):
        g = CSRGraph.from_edgelist(complete_graph(5))
        assert transitivity(g, forward_count(g)) == pytest.approx(1.0)

    def test_transitivity_matches_networkx(self):
        import networkx as nx

        g = CSRGraph.from_edgelist(watts_strogatz(60, k=6, p=0.2, seed=4))
        nxg = g.to_networkx()
        expected = nx.transitivity(nxg)
        assert transitivity(g, forward_count(g)) == pytest.approx(expected, rel=1e-9)

    def test_transitivity_empty(self):
        assert transitivity(CSRGraph.empty(3), 0) == 0.0
