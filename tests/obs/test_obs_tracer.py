"""Unit tests for the hierarchical span tracer and its null path."""

from __future__ import annotations

import pickle

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    as_tracer,
)
from repro.obs.tracer import _NULL_SPAN


class FakeClock:
    """Deterministic monotonically increasing clock."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_span_records_event_on_end(self):
        tracer = Tracer(track="t", clock=FakeClock())
        span = tracer.span("phase_a", cat="phase", foo=1)
        assert tracer.events == ()
        span.end()
        (event,) = tracer.events
        assert event.name == "phase_a"
        assert event.cat == "phase"
        assert event.track == "t"
        assert event.depth == 0
        assert event.args_dict == {"foo": 1}
        assert event.duration > 0

    def test_nested_spans_track_depth(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        inner.end()
        outer.end()
        events = tracer.events
        assert [e.name for e in events] == ["outer", "inner"]
        assert [e.depth for e in events] == [0, 1]

    def test_events_sorted_by_entry_order_not_exit_order(self):
        # outer exits last but entered first: seq order is enter order
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        first = tracer.span("first")
        first.end()
        second = tracer.span("second")
        second.end()
        outer.end()
        assert [e.name for e in tracer.events] == ["outer", "first", "second"]
        assert [e.seq for e in tracer.events] == [0, 1, 2]

    def test_context_manager_and_annotate(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", items=3) as span:
            span.annotate(done=True)
        (event,) = tracer.events
        assert event.args_dict == {"done": True, "items": 3}

    def test_end_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("once")
        span.end()
        span.end()
        span.annotate(ignored=True)
        assert len(tracer.events) == 1
        assert tracer.events[0].args_dict == {}

    def test_end_kwargs_merge_into_args(self):
        tracer = Tracer(clock=FakeClock())
        tracer.span("scan", start=0).end(pairs=17)
        (event,) = tracer.events
        assert event.args_dict == {"pairs": 17, "start": 0}

    def test_instant_marker(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("tick", cat="mark", n=1)
        (event,) = tracer.events
        assert event.duration == 0.0
        assert event.cat == "mark"

    def test_events_pickle_roundtrip(self):
        tracer = Tracer(track="chunk3", clock=FakeClock())
        tracer.span("chunk", chunk=3).end(triangles=9)
        restored = pickle.loads(pickle.dumps(tracer.events))
        assert restored == tracer.events

    def test_retrack(self):
        event = SpanEvent(
            seq=0, name="n", cat="c", start=0.0, duration=1.0, depth=0,
            track="a", args=(("k", 1),),
        )
        moved = event.retrack("b")
        assert moved.track == "b"
        assert moved.args == event.args
        assert event.track == "a"


class TestNullTracer:
    def test_singleton_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.events == ()

    def test_span_returns_shared_null_span(self):
        a = NULL_TRACER.span("anything", cat="phase", big="payload")
        b = NULL_TRACER.span("other")
        assert a is b is _NULL_SPAN

    def test_null_span_noops(self):
        with NULL_TRACER.span("x") as span:
            assert span.annotate(k=1) is span
        span.end(extra=2)
        NULL_TRACER.instant("nothing")
        assert NULL_TRACER.events == ()

    def test_as_tracer_dispatch(self):
        assert as_tracer(False) is NULL_TRACER
        live = as_tracer(True, track="chunk0")
        assert isinstance(live, Tracer)
        assert live.track == "chunk0"
        assert live.enabled is True
