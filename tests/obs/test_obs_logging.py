"""Unit tests for enable_logging / PDTL_LOG_LEVEL and the fallback prose."""

from __future__ import annotations

import io
import logging
import warnings

import pytest

from repro.obs.logconfig import (
    PDTL_LOG_ENV,
    enable_logging,
    fallback_message,
    get_logger,
    logging_enabled,
    warn_fallback,
)


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    """Remove the package handler installed by a test, restore the level."""
    root = logging.getLogger("repro")
    saved_handlers = list(root.handlers)
    saved_level = root.level
    yield
    root.handlers[:] = saved_handlers
    root.setLevel(saved_level)


class TestGetLogger:
    def test_prefixes_package_namespace(self):
        assert get_logger("core.pdtl").name == "repro.core.pdtl"
        assert get_logger("repro.core.shm").name == "repro.core.shm"
        assert get_logger().name == "repro"


class TestEnableLogging:
    def test_installs_single_handler_idempotently(self):
        stream = io.StringIO()
        root = enable_logging("DEBUG", stream=stream)
        first = [h for h in root.handlers]
        enable_logging("INFO", stream=stream)
        assert root.handlers == first
        assert root.level == logging.INFO
        assert logging_enabled()

    def test_level_from_environment(self, monkeypatch):
        monkeypatch.setenv(PDTL_LOG_ENV, "warning")
        root = enable_logging(stream=io.StringIO())
        assert root.level == logging.WARNING

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            enable_logging("chatty", stream=io.StringIO())

    def test_module_loggers_inherit(self):
        stream = io.StringIO()
        enable_logging("INFO", stream=stream, fmt="%(name)s %(message)s")
        get_logger("externalmem.blockio").info("read-ahead window loaded")
        assert "repro.externalmem.blockio read-ahead window loaded" \
            in stream.getvalue()


class TestFallbackProse:
    def test_shared_template(self):
        message = fallback_message(
            "shm=True", "no /dev/shm mount", "on-disk window reads"
        )
        assert message == (
            "shm=True requested but no /dev/shm mount; "
            "falling back to on-disk window reads"
        )

    def test_warn_fallback_always_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            message = warn_fallback("featureX", "reasons", "the slow path")
        assert len(caught) == 1
        assert caught[0].category is RuntimeWarning
        assert str(caught[0].message) == message

    def test_warn_fallback_logs_only_when_enabled(self):
        stream = io.StringIO()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            warn_fallback("featureY", "why", "numpy")
            assert stream.getvalue() == ""
            enable_logging("INFO", stream=stream, fmt="%(message)s")
            warn_fallback("featureY", "why", "numpy")
        assert "featureY requested but why; falling back to numpy" \
            in stream.getvalue()
