"""Unit tests for RunTelemetry and the Chrome trace-event exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import ChunkSpan, RunTelemetry, WorkerTrack
from repro.obs.tracer import SpanEvent


def _event(seq, name, track, cat="phase", start=0.0, duration=1.0, **args):
    return SpanEvent(
        seq=seq, name=name, cat=cat, start=start, duration=duration,
        depth=0, track=track, args=tuple(sorted(args.items())),
    )


@pytest.fixture
def telemetry() -> RunTelemetry:
    t = RunTelemetry(
        backend="processes", scheduling="dynamic", num_workers=4,
        procs_per_node=2,
    )
    t.events = [
        _event(0, "stage_input", "master", start=10.0, duration=0.5),
        _event(1, "triangle_scan", "master", start=10.5, duration=2.0),
        _event(0, "chunk", "chunk1", cat="chunk", start=11.0, duration=0.7),
        _event(0, "chunk", "chunk0", cat="chunk", start=10.6, duration=0.9),
        _event(1, "window", "chunk0", cat="kernel", start=10.7, duration=0.4),
    ]
    t.counters = {"worker.blockio.fd_cache.hits": 6,
                  "worker.blockio.fd_cache.misses": 2}
    t.chunk_owners = {0: 0, 1: 3}
    t.phase_seconds = {"orientation": 1.5, "triangle_scan": 3.0}
    t.worker_tracks = [
        WorkerTrack(worker=0, node=0, proc=0,
                    spans=[ChunkSpan(0, start=0.0, duration=2.0, edges=10,
                                     triangles=4)]),
        WorkerTrack(worker=3, node=1, proc=1,
                    spans=[ChunkSpan(1, start=0.0, duration=1.0, edges=5,
                                     triangles=1)]),
    ]
    return t


class TestDerivedViews:
    def test_counters_with_rates(self, telemetry):
        merged = telemetry.counters_with_rates()
        assert merged["worker.blockio.fd_cache.hit_rate"] == 0.75
        assert list(merged) == sorted(merged)

    def test_event_order_master_then_chunks_by_index(self, telemetry):
        order = telemetry.event_order()
        assert order == [
            ("master", "phase", "stage_input"),
            ("master", "phase", "triangle_scan"),
            ("chunk0", "chunk", "chunk"),
            ("chunk0", "kernel", "window"),
            ("chunk1", "chunk", "chunk"),
        ]

    def test_summary_rows_rollup(self, telemetry):
        rows = {row["category"]: row for row in telemetry.summary_rows()}
        assert rows["phase"]["spans"] == 2
        assert rows["phase"]["wall_seconds"] == pytest.approx(2.5)
        assert rows["chunk"]["spans"] == 2
        assert rows["kernel"]["spans"] == 1

    def test_record_span_appends(self, telemetry):
        before = len(telemetry.events)
        event = telemetry.record_span(
            "truss", 1.0, 0.25, cat="analytics", track="analytics", max_k=5
        )
        assert len(telemetry.events) == before + 1
        assert event.seq == before
        assert event.args_dict == {"max_k": 5}


class TestWorkerTrack:
    def test_busy_and_finish(self):
        track = WorkerTrack(worker=0, node=0, proc=0, spans=[
            ChunkSpan(0, start=0.0, duration=2.0),
            ChunkSpan(1, start=2.0, duration=1.5),
        ])
        assert track.busy_seconds == pytest.approx(3.5)
        assert track.finish_time == pytest.approx(3.5)
        assert WorkerTrack(worker=1, node=0, proc=1).finish_time == 0.0


class TestChromeTrace:
    def test_wall_variant_structure(self, telemetry):
        trace = telemetry.chrome_trace("wall")
        payload = json.loads(json.dumps(trace))  # must be JSON-serializable
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["variant"] == "wall"
        duration_events = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(duration_events) == len(telemetry.events)
        # rebased: earliest event starts at ts=0
        assert min(e["ts"] for e in duration_events) == 0.0
        # chunk spans are homed onto their owning worker's (pid, tid)
        chunk1 = next(e for e in duration_events
                      if e["args"].get("chunk") is None and e["pid"] == 1)
        assert chunk1["tid"] == 2  # worker 3 = node 1, proc 1 -> tid 2
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        thread_labels = {e["args"]["name"] for e in meta
                         if e["name"] == "thread_name"}
        assert "worker 0 (n0p0)" in thread_labels
        assert "worker 3 (n1p1)" in thread_labels

    def test_modelled_variant_lays_out_phases_then_chunks(self, telemetry):
        events = telemetry.chrome_trace("modelled")["traceEvents"]
        duration_events = [e for e in events if e["ph"] == "X"]
        phases = [e for e in duration_events if e["cat"] == "phase"]
        chunks = [e for e in duration_events if e["cat"] == "chunk"]
        assert [p["name"] for p in phases] == ["orientation", "triangle_scan"]
        # phases are laid end-to-end; chunks start after the phase prefix
        assert phases[1]["ts"] == pytest.approx(phases[0]["dur"])
        scan_base = sum(p["dur"] for p in phases)
        assert all(c["ts"] >= scan_base for c in chunks)
        assert {c["args"]["chunk"] for c in chunks} == {0, 1}

    def test_unknown_variant_raises(self, telemetry):
        with pytest.raises(ValueError, match="unknown trace variant"):
            telemetry.chrome_trace("nope")

    def test_write_chrome_trace(self, telemetry, tmp_path):
        path = telemetry.write_chrome_trace(tmp_path / "sub" / "trace.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload

    def test_empty_wall_trace(self):
        empty = RunTelemetry(backend="serial", scheduling="static",
                             num_workers=1, procs_per_node=1)
        assert empty.chrome_trace("wall")["traceEvents"] == []
