"""Unit tests for the metrics registry and the snapshot/delta helpers."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_delta,
    derive_rates,
    snapshot_process_counters,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        other = Counter("hits", value=5)
        c.merge(other)
        assert c.value == 10
        assert c.as_items() == [("hits", 10)]

    def test_gauge_merge_takes_max(self):
        g = Gauge("depth")
        g.set(3)
        other = Gauge("depth", value=7)
        g.merge(other)
        assert g.value == 7

    def test_histogram(self):
        h = Histogram("queue")
        for value in (2, 5, 1):
            h.observe(value)
        assert h.count == 3
        assert h.total == 8
        assert h.min == 1 and h.max == 5
        assert h.mean == pytest.approx(8 / 3)
        items = dict(h.as_items())
        assert items["queue.count"] == 3
        assert items["queue.min"] == 1
        assert items["queue.max"] == 5

    def test_histogram_merge_with_empty(self):
        h = Histogram("q")
        empty = Histogram("q")
        h.observe(4)
        h.merge(empty)
        assert (h.count, h.min, h.max) == (1, 4, 4)
        empty.merge(h)
        assert (empty.count, empty.min, empty.max) == (1, 4, 4)


class TestRegistry:
    def test_get_or_create_and_kind_clash(self):
        reg = MetricsRegistry()
        reg.inc("a.hits", 2)
        reg.set_gauge("depth", 9)
        reg.observe("lat", 0.5)
        assert reg.counter("a.hits").value == 2
        with pytest.raises(TypeError):
            reg.gauge("a.hits")
        assert len(reg) == 3
        assert "depth" in reg

    def test_add_counts_with_prefix(self):
        reg = MetricsRegistry()
        reg.add_counts({"fd_cache.hits": 3, "fd_cache.misses": 1}, prefix="worker.")
        assert reg.as_dict() == {
            "worker.fd_cache.hits": 3,
            "worker.fd_cache.misses": 1,
        }

    def test_add_iostats_skips_block_size(self):
        class FakeStats:
            def as_dict(self):
                return {"block_size": 512, "bytes_read": 1024, "read_calls": 2}

        reg = MetricsRegistry()
        reg.add_iostats("io.setup", FakeStats())
        assert reg.as_dict() == {
            "io.setup.bytes_read": 1024,
            "io.setup.read_calls": 2,
        }

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        b.set_gauge("g", 5)
        b.observe("h", 1.0)
        a.merge(b)
        flat = a.as_dict()
        assert flat["n"] == 3
        assert flat["g"] == 5
        assert flat["h.count"] == 1

    def test_as_dict_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.as_dict()) == ["a", "z"]


class TestDerivedRates:
    def test_hit_rate_pairs(self):
        rates = derive_rates(
            {"c.hits": 3, "c.misses": 1, "lonely.hits": 2, "zero.hits": 0,
             "zero.misses": 0}
        )
        assert rates == {"c.hit_rate": 0.75}

    def test_counter_delta_drops_zero_diffs(self):
        before = {"a": 1, "b": 2}
        after = {"a": 1, "b": 5, "c": 7}
        assert counter_delta(after, before) == {"b": 3, "c": 7}


class TestProcessSnapshots:
    def test_snapshot_keys_and_delta_attribution(self):
        from repro.core import kernel_backend

        before = snapshot_process_counters()
        assert "shm.attach_cache.hits" in before
        assert "shm.attach_cache.misses" in before
        with kernel_backend.use("numpy"):
            kernel_backend.fused("mgt_block_scan")
        after = snapshot_process_counters()
        delta = counter_delta(after, before)
        assert delta.get("kernel.dispatch.mgt_block_scan.numpy") == 1
