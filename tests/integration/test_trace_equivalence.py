"""Tracing sits strictly outside the accounting layer.

``PDTLConfig(trace=True)`` may only *observe*: every modelled quantity,
count, IOStats field and support array must be bit-identical with tracing
on or off, on every execution backend, with the compiled kernel tier on or
off, and under failure/straggler/jitter injection.  On top of that the
merged event stream itself must be deterministic -- the ``(track, cat,
name)`` order is a pure function of the run shape, not of host timing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import kernel_backend
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner
from repro.core.shm import shm_available
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat

BACKENDS = (
    ("serial", "serial", False),
    ("threads", "threads", False),
    ("processes", "processes", False),
    ("processes+shm", "processes", True),
)

_SHM_OK, _SHM_REASON = shm_available()
_COMPILED_OK, _COMPILED_TIER = kernel_backend.compiled_available()

#: the modelled/accounted PDTLResult fields that must not move under tracing
ACCOUNTED_FIELDS = (
    "triangles",
    "calc_seconds",
    "total_io_seconds",
    "total_cpu_seconds",
    "modelled_setup_seconds",
    "network_bytes",
    "network_messages",
)


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=17))


def _backends():
    for label, backend, shm in BACKENDS:
        if shm and not _SHM_OK:
            continue  # pragma: no cover - shm-capable hosts run all four
        yield label, backend, shm


def _config(shm: bool, trace: bool, **overrides) -> PDTLConfig:
    defaults = dict(
        num_nodes=2,
        procs_per_node=2,
        memory_per_proc=4096,
        block_size=512,
        modelled_cpu=True,
        scheduling="dynamic",
        shm=shm,
        trace=trace,
    )
    defaults.update(overrides)
    return PDTLConfig(**defaults)


def _run(graph, backend, shm, trace, sink_kind="count", **overrides):
    config = _config(shm, trace, **overrides)
    return PDTLRunner(config, backend=backend).run(graph, sink_kind=sink_kind)


def _assert_accounting_identical(traced, untraced, label):
    for name in ACCOUNTED_FIELDS:
        assert getattr(traced, name) == getattr(untraced, name), (label, name)
    for ours, theirs in zip(traced.workers, untraced.workers):
        assert (
            ours.result.io_stats.as_dict() == theirs.result.io_stats.as_dict()
        ), label


class TestTraceOffZeroFootprint:
    def test_untraced_result_has_no_telemetry(self, graph):
        for label, backend, shm in _backends():
            result = _run(graph, backend, shm, trace=False)
            assert result.telemetry is None, label

    def test_trace_defaults_off(self, graph):
        config = PDTLConfig(
            num_nodes=1, procs_per_node=1, memory_per_proc=4096, block_size=512
        )
        assert config.trace is False
        result = PDTLRunner(config, backend="serial").run(graph)
        assert result.telemetry is None

    def test_untraced_runs_bit_identical_to_each_other(self, graph):
        """Tracing infrastructure being *present* must not perturb an
        untraced run: two untraced runs agree bit for bit."""
        first = _run(graph, "serial", False, trace=False)
        second = _run(graph, "serial", False, trace=False)
        _assert_accounting_identical(first, second, "serial repeat")


class TestTracedBitIdentity:
    @pytest.mark.parametrize("scheduling", ("static", "dynamic"))
    def test_accounting_identical_per_backend(self, graph, scheduling):
        for label, backend, shm in _backends():
            untraced = _run(graph, backend, shm, False, scheduling=scheduling)
            traced = _run(graph, backend, shm, True, scheduling=scheduling)
            _assert_accounting_identical(traced, untraced, label)
            assert traced.telemetry is not None, label

    def test_edge_supports_identical_under_injection(self, graph):
        injection = dict(
            failure_spec={0: 1, 2: 0},
            straggler_spec={1: 4.0},
            host_jitter_seconds=0.005,
        )
        for label, backend, shm in _backends():
            untraced = _run(
                graph, backend, shm, False, sink_kind="edge-support", **injection
            )
            traced = _run(
                graph, backend, shm, True, sink_kind="edge-support", **injection
            )
            _assert_accounting_identical(traced, untraced, label)
            assert traced.metrics.total_chunks_retried >= 1, label
            np.testing.assert_array_equal(
                traced.edge_supports, untraced.edge_supports, err_msg=label
            )

    @pytest.mark.skipif(
        not _COMPILED_OK, reason=f"no compiled backend: {_COMPILED_TIER}"
    )
    def test_accounting_identical_with_compiled_tier(self, graph):
        for label, backend, shm in _backends():
            with kernel_backend.use(_COMPILED_TIER):
                untraced = _run(
                    graph, backend, shm, False, kernel_backend=_COMPILED_TIER
                )
                traced = _run(
                    graph, backend, shm, True, kernel_backend=_COMPILED_TIER
                )
            _assert_accounting_identical(traced, untraced, label)
            dispatch = [
                key for key in traced.telemetry.counters
                if ".kernel.dispatch." in key
            ]
            # the shm path scans zero-copy windows with plain vectorised
            # numpy, so only the streaming backends dispatch fused kernels
            if not shm:
                assert dispatch, label


class TestDeterministicEventMerge:
    def test_event_order_stable_across_runs(self, graph):
        first = _run(graph, "processes", False, True)
        second = _run(graph, "processes", False, True)
        assert first.telemetry.event_order() == second.telemetry.event_order()

    def test_event_order_identical_across_backends(self, graph):
        orders = {
            label: _run(graph, backend, shm, True).telemetry.event_order()
            for label, backend, shm in _backends()
        }
        reference = orders["serial"]
        for label, order in orders.items():
            assert order == reference, label

    def test_event_order_stable_under_injection(self, graph):
        """Failure/straggler/jitter injection changes host timing, never the
        merged event order: re-executed chunks replace the dead worker's
        attempt deterministically."""
        injection = dict(
            failure_spec={0: 1, 2: 0},
            straggler_spec={1: 4.0},
            host_jitter_seconds=0.005,
        )
        reference = None
        for label, backend, shm in _backends():
            order = _run(
                graph, backend, shm, True, **injection
            ).telemetry.event_order()
            if reference is None:
                reference = order
            assert order == reference, label
        # jitter injection adds one host-cat span per chunk, visible in the
        # trace but invisible to the accounting
        assert ("chunk0", "host", "jitter") in reference

    def test_master_phases_lead_every_merge(self, graph):
        order = _run(graph, "threads", False, True).telemetry.event_order()
        phases = [name for track, cat, name in order if track == "master"]
        assert phases[: len(phases)] == [
            "stage_input", "orient", "plan", "replicate", "triangle_scan",
            "aggregate",
        ]
        assert order[: len(phases)] == [
            ("master", "phase", name) for name in phases
        ]


class TestTraceArtifacts:
    def test_chrome_trace_valid_on_every_backend(self, graph, tmp_path):
        for label, backend, shm in _backends():
            telemetry = _run(graph, backend, shm, True).telemetry
            for variant in ("wall", "modelled"):
                path = telemetry.write_chrome_trace(
                    tmp_path / f"{label.replace('+', '_')}-{variant}.json",
                    variant=variant,
                )
                payload = json.loads(path.read_text())
                events = payload["traceEvents"]
                assert events, (label, variant)
                assert all(
                    {"name", "ph", "pid", "tid"} <= set(e) for e in events
                ), (label, variant)
                thread_names = [
                    e for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"
                ]
                assert any(
                    e["args"]["name"].startswith("worker")
                    for e in thread_names
                ), (label, variant)

    def test_counters_and_rates_sane(self, graph):
        telemetry = _run(graph, "processes", False, True).telemetry
        counters = telemetry.counters
        assert counters["scheduler.chunks"] >= 1
        assert counters["scheduler.max_queue_depth"] >= 1
        assert any(key.startswith("io.phase.") for key in counters)
        merged = telemetry.counters_with_rates()
        for key, value in merged.items():
            if key.endswith(".hit_rate"):
                assert 0.0 <= value <= 1.0, key

    def test_worker_tracks_cover_all_chunks(self, graph):
        telemetry = _run(graph, "serial", False, True).telemetry
        placed = sorted(
            span.index for track in telemetry.worker_tracks
            for span in track.spans
        )
        chunk_tracks = sorted(
            {
                int(e.track[len("chunk"):])
                for e in telemetry.events
                if e.track.startswith("chunk")
            }
        )
        assert placed == chunk_tracks
