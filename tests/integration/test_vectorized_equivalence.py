"""Golden equivalence of every vectorised hot path against its serial reference.

The vectorisation PR rewrote the baselines' per-vertex loops, the extsort
merge and the MGT scan path; these tests pin each rewritten path against
(a) the frozen golden triangle counts and (b) the retained pre-refactor
implementations (:mod:`repro.baselines.reference_impl`, the ``heapq``
merge), so a silent count divergence in any vectorised kernel fails
loudly.  The CI perf-smoke job runs this module alongside the perf
microbenchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_golden_counts import GOLDEN

from repro.baselines.cttp import run_cttp
from repro.baselines.inmemory import forward_count, forward_list, per_vertex_triangle_counts
from repro.baselines.opt import run_opt
from repro.baselines.patric import run_patric
from repro.baselines.powergraph import run_powergraph
from repro.baselines.reference_impl import forward_count_scalar
from repro.core.config import PDTLConfig
from repro.core.mgt import mgt_count
from repro.core.orientation import orient_csr, orient_graph
from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import external_sort_edges, read_edge_file, write_edge_file
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph


@pytest.fixture(params=sorted(GOLDEN))
def golden_case(request):
    name = request.param
    thunk, count = GOLDEN[name]
    return name, CSRGraph.from_edgelist(thunk()), count


class TestVectorizedBaselinesMatchGolden:
    def test_forward_count(self, golden_case):
        name, graph, count = golden_case
        assert forward_count(graph) == count, name

    def test_forward_count_matches_scalar_reference(self, golden_case):
        name, graph, count = golden_case
        assert forward_count(graph) == forward_count_scalar(graph), name

    def test_forward_list_size(self, golden_case):
        name, graph, count = golden_case
        assert len(forward_list(graph)) == count, name

    def test_per_vertex_counts_sum(self, golden_case):
        name, graph, count = golden_case
        # every triangle contributes to exactly three vertices
        assert int(per_vertex_triangle_counts(graph).sum()) == 3 * count, name

    def test_opt(self, golden_case):
        name, graph, count = golden_case
        assert run_opt(graph, num_threads=2).triangles == count, name

    def test_patric(self, golden_case):
        name, graph, count = golden_case
        result = run_patric(graph, num_processors=3, memory_per_processor="64MB")
        assert result.triangles == count, name

    def test_cttp(self, golden_case):
        name, graph, count = golden_case
        assert run_cttp(graph, num_reducers=3).triangles == count, name

    def test_powergraph(self, golden_case):
        name, graph, count = golden_case
        result = run_powergraph(graph, num_machines=3, memory_per_machine="64MB")
        assert result.triangles == count, name


class TestMGTReadaheadEquivalence:
    """The read-ahead buffer must change neither counts nor any I/O counter."""

    def test_counts_and_iostats_identical(self, golden_case, tmp_path):
        name, graph, count = golden_case
        outcomes = {}
        for readahead in (0, 1 << 16):
            root = tmp_path / f"disk_ra{readahead}"
            device = BlockDevice(root, block_size=512)
            oriented = orient_graph(write_graph(device, "g", graph)).oriented
            config = PDTLConfig(
                memory_per_proc=4096, block_size=512, readahead_bytes=readahead
            )
            result = mgt_count(oriented, config)
            outcomes[readahead] = (
                result.triangles,
                result.io_stats.as_dict(),
                device.stats.as_dict(),
            )
        base, buffered = outcomes[0], outcomes[1 << 16]
        assert base[0] == count == buffered[0], name
        assert base[1] == buffered[1], name  # worker's own analytic counters
        assert base[2] == buffered[2], name  # shared device counters


class TestExtsortMergeEquivalence:
    """The vectorised merge must be indistinguishable from the heap merge."""

    @pytest.mark.parametrize("memory_bytes", (2048, 16 * 1024))
    def test_output_and_iostats_identical(self, tmp_path, memory_bytes):
        rng = np.random.default_rng(42)
        edges = rng.integers(0, 3000, size=(20000, 2), dtype=np.int64)
        outcomes = {}
        for impl in ("heapq", "vectorized"):
            device = BlockDevice(tmp_path / f"disk_{impl}_{memory_bytes}", block_size=512)
            write_edge_file(device, "in.bin", edges)
            device.stats.reset()
            result = external_sort_edges(
                device, "in.bin", "out.bin", memory_bytes=memory_bytes, merge_impl=impl
            )
            outcomes[impl] = (
                read_edge_file(device, "out.bin"),
                device.stats.as_dict(),
                result.num_runs,
                result.merge_passes,
                result.fan_in,
            )
        heap, vec = outcomes["heapq"], outcomes["vectorized"]
        np.testing.assert_array_equal(heap[0], vec[0])
        assert heap[1] == vec[1]
        assert heap[2:] == vec[2:]

    def test_vectorized_output_is_lexsorted_permutation(self, tmp_path):
        rng = np.random.default_rng(7)
        edges = rng.integers(0, 500, size=(5000, 2), dtype=np.int64)
        device = BlockDevice(tmp_path / "disk", block_size=512)
        write_edge_file(device, "in.bin", edges)
        external_sort_edges(device, "in.bin", "out.bin", memory_bytes=4096)
        expected = edges[np.lexsort((edges[:, 1], edges[:, 0]))]
        np.testing.assert_array_equal(read_edge_file(device, "out.bin"), expected)


def test_baselines_agree_with_each_other():
    """Cross-check the five vectorised baselines on one non-golden graph."""
    from repro.graph.generators import rmat

    graph = CSRGraph.from_edgelist(rmat(8, edge_factor=6, seed=13))
    expected = forward_count_scalar(graph)
    assert forward_count(graph) == expected
    assert run_opt(graph).triangles == expected
    assert run_patric(graph, num_processors=2).triangles == expected
    assert run_cttp(graph).triangles == expected
    assert run_powergraph(graph, num_machines=2).triangles == expected
