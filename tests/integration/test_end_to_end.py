"""End-to-end integration tests across the whole stack.

These tests exercise realistic pipelines a downstream user would run:
text edge list on disk → binary format → PDTL over a multi-node simulated
cluster → application-level metrics (clustering coefficients), checking
every stage against independent references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PDTLConfig, PDTLRunner, count_triangles
from repro.baselines.inmemory import forward_count
from repro.baselines.mgt_single import run_single_core_mgt
from repro.baselines.opt import run_opt
from repro.baselines.powergraph import run_powergraph
from repro.core.orientation import orient_graph
from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import external_sort_edges, write_edge_file
from repro.graph.binfmt import open_graph, write_graph
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat, watts_strogatz
from repro.graph.io import read_edgelist_text, write_edgelist_text
from repro.graph.properties import clustering_coefficient, transitivity


class TestTextToPDTLPipeline:
    def test_full_pipeline_from_text_file(self, tmp_path):
        # 1. a user has a SNAP-style text edge list
        edgelist = rmat(7, edge_factor=8, seed=30)
        text_path = write_edgelist_text(edgelist, tmp_path / "graph.txt")

        # 2. ingest + normalise + store in the binary processing format
        loaded = read_edgelist_text(text_path)
        graph = CSRGraph.from_edgelist(loaded)
        device = BlockDevice(tmp_path / "disk", block_size=1024)
        gf = write_graph(device, "ingested", graph)
        gf.validate()

        # 3. reopen from disk (fresh metadata read) and run PDTL distributed
        reopened = open_graph(device, "ingested")
        config = PDTLConfig(num_nodes=2, procs_per_node=2, memory_per_proc="1MB")
        result = PDTLRunner(config).run(reopened)

        assert result.triangles == forward_count(graph)

    def test_unsorted_edge_file_can_be_external_sorted_then_counted(self, tmp_path):
        device = BlockDevice(tmp_path / "disk", block_size=512)
        edgelist = rmat(6, edge_factor=8, seed=31).symmetrized()
        shuffled = edgelist.shuffled(seed=1)
        write_edge_file(device, "raw_edges.bin", shuffled.edges)

        # Theorem IV.2's preprocessing path: external sort before orientation
        external_sort_edges(device, "raw_edges.bin", "sorted_edges.bin", memory_bytes=4096)
        from repro.externalmem.extsort import read_edge_file
        from repro.graph.edgelist import EdgeList

        sorted_edges = EdgeList(read_edge_file(device, "sorted_edges.bin"),
                                edgelist.num_vertices)
        assert sorted_edges.is_sorted()
        graph = CSRGraph.from_edgelist(sorted_edges, symmetrize=False)
        gf = write_graph(device, "sorted_graph", graph)
        oriented = orient_graph(gf).oriented
        from repro.core.mgt import mgt_count

        assert mgt_count(oriented).triangles == forward_count(graph)


class TestDatasetsThroughTheStack:
    @pytest.mark.parametrize("name", ["rmat-10", "livejournal"])
    def test_dataset_counts_consistent_across_systems(self, name):
        graph = load_dataset(name, seed=1, scale=0.25)
        expected = forward_count(graph)
        assert count_triangles(graph, procs_per_node=2).triangles == expected
        assert run_single_core_mgt(graph).triangles == expected
        assert run_powergraph(graph, num_machines=2).triangles == expected

    def test_distributed_run_on_dataset(self):
        graph = load_dataset("rmat-10", seed=2)
        config = PDTLConfig(num_nodes=4, procs_per_node=2, memory_per_proc="512KB")
        result = PDTLRunner(config, backend="threads").run(graph)
        assert result.triangles == forward_count(graph)
        assert len(result.workers) == 8


class TestApplicationLevelMetrics:
    def test_clustering_coefficients_from_pdtl(self):
        import networkx as nx

        graph = CSRGraph.from_edgelist(watts_strogatz(120, k=6, p=0.1, seed=3))
        result = PDTLRunner(PDTLConfig(procs_per_node=2)).run(graph, sink_kind="per-vertex")
        coeffs = clustering_coefficient(graph, result.per_vertex_counts)
        expected = nx.clustering(graph.to_networkx())
        for v in range(graph.num_vertices):
            assert coeffs[v] == pytest.approx(expected[v], abs=1e-9)

    def test_transitivity_from_pdtl(self):
        import networkx as nx

        graph = CSRGraph.from_edgelist(rmat(7, edge_factor=6, seed=4))
        result = count_triangles(graph)
        assert transitivity(graph, result.triangles) == pytest.approx(
            nx.transitivity(graph.to_networkx()), rel=1e-9
        )


class TestCrossSystemShape:
    """Coarse qualitative checks of the paper's headline comparison claims."""

    def test_pdtl_memory_stays_small_while_powergraph_grows(self):
        graph = load_dataset("rmat-11", seed=5)
        pdtl = PDTLRunner(PDTLConfig(memory_per_proc="1MB", procs_per_node=2)).run(graph)
        pg = run_powergraph(graph, num_machines=2, memory_per_machine="512MB")
        pdtl_peak = max(w.result.peak_memory_bytes for w in pdtl.workers)
        assert pg.peak_memory_bytes > 2 * pdtl_peak

    def test_powergraph_fails_where_pdtl_succeeds(self):
        graph = load_dataset("rmat-11", seed=6)
        budget = 256 * 1024  # per machine / per processor
        pg = run_powergraph(graph, num_machines=2, memory_per_machine=budget)
        pdtl = PDTLRunner(
            PDTLConfig(num_nodes=2, procs_per_node=1, memory_per_proc=budget)
        ).run(graph)
        assert pg.oom
        assert pdtl.triangles == forward_count(graph)

    def test_opt_setup_rewrites_more_data_than_pdtl_orientation(self):
        graph = load_dataset("rmat-10", seed=7)
        opt = run_opt(graph)
        pdtl = PDTLRunner(PDTLConfig(procs_per_node=2)).run(graph)
        # PDTL's preprocessing writes only the oriented graph (|E| + |V| words);
        # OPT's database re-encodes the bidirectional graph plus an index and
        # a vertex map, so its on-disk footprint is strictly larger.
        oriented_bytes = 8 * (graph.num_vertices + graph.num_undirected_edges)
        assert opt.database_bytes > oriented_bytes
        assert pdtl.triangles == opt.triangles
