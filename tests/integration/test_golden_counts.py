"""Golden-count regression fixtures.

Seeded generator graphs with their exact triangle counts *hardcoded*:
unlike the reference-based tests (which would silently follow a buggy
reference), these pin the answers, so any refactor that changes a count --
in the in-memory baseline, single-core MGT, or either PDTL scheduling mode
-- fails loudly.  ``complete_graph(12)`` has C(12,3) = 220 triangles and a
star has none, so two of the five fixtures are also analytically checkable
by hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inmemory import forward_count
from repro.core.config import PDTLConfig
from repro.core.mgt import mgt_count
from repro.core.orientation import orient_graph
from repro.core.pdtl import PDTLRunner
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    power_law_degree_graph,
    relabel_by_degree,
)


def _star(n: int) -> EdgeList:
    edges = np.array([(0, i) for i in range(1, n)], dtype=np.int64)
    return EdgeList(edges, n)


#: name -> (generator thunk, exact triangle count).  The counts were computed
#: once with the in-memory reference and are now frozen; regenerate only if a
#: generator's sampling intentionally changes.
GOLDEN = {
    "power_law": (
        lambda: power_law_degree_graph(
            500, exponent=2.2, min_degree=2, max_degree=60, seed=11
        ),
        239,
    ),
    "power_law_hubs_first": (
        lambda: relabel_by_degree(
            power_law_degree_graph(500, exponent=2.2, min_degree=2, max_degree=60, seed=11)
        ),
        239,  # relabelling must never change the count
    ),
    "erdos_renyi": (lambda: erdos_renyi(200, p=0.05, seed=7), 155),
    "complete_k12": (lambda: complete_graph(12), 220),  # C(12, 3)
    "star_40": (lambda: _star(40), 0),  # stars are triangle-free
}


@pytest.fixture(params=sorted(GOLDEN))
def golden_case(request) -> tuple[str, CSRGraph, int]:
    name = request.param
    thunk, count = GOLDEN[name]
    return name, CSRGraph.from_edgelist(thunk()), count


def test_in_memory_baseline_matches_golden(golden_case):
    name, graph, count = golden_case
    assert forward_count(graph) == count, name


def test_single_core_mgt_matches_golden(golden_case, tmp_path):
    name, graph, count = golden_case
    device = BlockDevice(tmp_path / "disk", block_size=512)
    oriented = orient_graph(write_graph(device, "g", graph)).oriented
    config = PDTLConfig(memory_per_proc=4096, block_size=512)
    assert mgt_count(oriented, config).triangles == count, name


@pytest.mark.parametrize("scheduling", ("static", "dynamic"))
def test_pdtl_matches_golden(golden_case, scheduling):
    name, graph, count = golden_case
    config = PDTLConfig(
        num_nodes=2,
        procs_per_node=2,
        memory_per_proc=16384,
        block_size=512,
        scheduling=scheduling,
    )
    result = PDTLRunner(config).run(graph)
    assert result.triangles == count, name
