"""Backend-equivalence matrix for the parallel preprocessing pipeline.

The parallel preprocessing of this PR -- orientation chunks fanned over
the persistent process pool against the published input graph, external-
sort run formation fanned the same way -- must be *bit-identical* to the
serial path in every observable the simulation produces:

* the oriented graph's on-disk bytes (degree, adjacency and meta files);
* the external sort's output file and its intermediate run files;
* the master device's IOStats (block counts, sequential/random split,
  call counts, bytes);
* the modelled setup seconds of a full PDTL run,

and this must hold on every execution backend (serial / threads /
processes / processes+shm), including under failure, straggler and
host-jitter injection.  These tests assert all of it -- nothing here is
assumed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cost_model import estimate_setup_cost
from repro.baselines.inmemory import forward_count
from repro.core.config import PDTLConfig
from repro.core.orientation import orient_graph
from repro.core.pdtl import PDTLRunner
from repro.core.shm import publish_input_graph, shm_available
from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import (
    external_sort_edges,
    read_edge_file,
    write_edge_file,
)
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_degree_graph, rmat

pytestmark = pytest.mark.skipif(
    not shm_available()[0],
    reason=f"POSIX shared memory unavailable: {shm_available()[1]}",
)

BACKENDS = ("serial", "threads", "processes")


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=3))


@pytest.fixture(scope="module")
def skewed_graph() -> CSRGraph:
    return CSRGraph.from_edgelist(
        power_law_degree_graph(800, exponent=2.2, min_degree=2, max_degree=60, seed=5)
    )


def _file_bytes(device: BlockDevice, name: str) -> bytes:
    path = device.path(name)
    return path.read_bytes() if path.exists() else b""


class TestOrientationBitIdentity:
    """Oriented file bytes + accounting across every orientation executor.

    Each path runs on its own *fresh* device (zero counters), exactly like
    the fresh cluster a real run builds -- that makes the whole IOStats
    dict, device seconds included, comparable bit for bit.
    """

    def _orient_on_fresh_device(
        self, tmp_path, graph, label, num_workers, parallel=True, pooled=False
    ):
        device = BlockDevice(tmp_path / f"disk_{label}", block_size=512)
        gf = write_graph(device, "g", graph)
        staged = device.stats.snapshot()
        if pooled:
            publication = publish_input_graph(gf)
            try:
                result = orient_graph(
                    gf,
                    num_workers=num_workers,
                    executor="processes",
                    shared=publication.descriptor,
                    output_name="oriented",
                )
            finally:
                publication.unlink()
        else:
            result = orient_graph(
                gf,
                num_workers=num_workers,
                parallel=parallel,
                output_name="oriented",
            )
        return device, result, staged, device.stats.snapshot()

    def test_oriented_bytes_identical(self, tmp_path, graph):
        reference_device, *_ = self._orient_on_fresh_device(
            tmp_path, graph, "ref", num_workers=1, parallel=False
        )
        reference = {
            suffix: _file_bytes(reference_device, f"oriented{suffix}")
            for suffix in (".deg", ".adj", ".meta")
        }
        assert reference[".adj"], "reference orientation produced no adjacency"
        variants = {
            "threads": dict(num_workers=4, parallel=True),
            "processes": dict(num_workers=4, pooled=True),
        }
        for label, kwargs in variants.items():
            device, *_ = self._orient_on_fresh_device(tmp_path, graph, label, **kwargs)
            for suffix in (".deg", ".adj", ".meta"):
                assert (
                    _file_bytes(device, f"oriented{suffix}") == reference[suffix]
                ), (label, suffix)

    def test_accounting_bit_identical_across_executors(self, tmp_path, graph):
        """With an identical work decomposition (4 chunks), the sequential,
        threaded and pooled executors charge bit-identical accounting --
        whole IOStats dict, modelled device seconds included."""
        runs = {
            "sequential": self._orient_on_fresh_device(
                tmp_path, graph, "acc_seq", num_workers=4, parallel=False
            ),
            "threads": self._orient_on_fresh_device(
                tmp_path, graph, "acc_thr", num_workers=4, parallel=True
            ),
            "processes": self._orient_on_fresh_device(
                tmp_path, graph, "acc_pool", num_workers=4, pooled=True
            ),
        }
        _, ref_result, ref_staged, ref_total = runs["sequential"]
        for label, (_, result, staged, total) in runs.items():
            assert staged.as_dict() == ref_staged.as_dict(), label
            assert total.as_dict() == ref_total.as_dict(), label
            assert result.modelled_io_seconds == ref_result.modelled_io_seconds, label
            np.testing.assert_array_equal(result.out_degrees, ref_result.out_degrees)
            np.testing.assert_array_equal(result.in_degrees, ref_result.in_degrees)

    def test_serial_reference_reads_same_bytes(self, tmp_path, graph):
        """The single-window serial reference moves the same bytes; only the
        read-call count differs (1 window vs 4)."""
        _, _, staged_1, total_1 = self._orient_on_fresh_device(
            tmp_path, graph, "one", num_workers=1, parallel=False
        )
        _, _, staged_4, total_4 = self._orient_on_fresh_device(
            tmp_path, graph, "four", num_workers=4, pooled=True
        )
        one = total_1.delta(staged_1)
        four = total_4.delta(staged_4)
        assert one.bytes_read == four.bytes_read
        assert one.bytes_written == four.bytes_written
        assert one.blocks_written == four.blocks_written
        assert one.read_calls < four.read_calls


class TestExtsortFormationBitIdentity:
    """Run files, output file and accounting: serial vs pool formation."""

    @pytest.fixture(scope="class")
    def edges(self) -> np.ndarray:
        rng = np.random.default_rng(11)
        return rng.integers(0, 900, size=(30000, 2)).astype(np.int64)

    def _sort(self, tmp_path, edges, formation, merge_impl="vectorized"):
        device = BlockDevice(tmp_path / f"disk_{formation}_{merge_impl}", block_size=512)
        write_edge_file(device, "in.bin", edges)
        baseline = device.stats.snapshot()
        result = external_sort_edges(
            device,
            "in.bin",
            "out.bin",
            memory_bytes=32 * 1024,
            formation=formation,
            merge_impl=merge_impl,
        )
        return device, result, device.stats.delta(baseline)

    def test_output_and_stats_identical(self, tmp_path, edges):
        dev_s, res_s, stats_s = self._sort(tmp_path, edges, "serial")
        dev_p, res_p, stats_p = self._sort(tmp_path, edges, "parallel")
        assert res_s.num_runs == res_p.num_runs > 1
        assert res_s.merge_passes == res_p.merge_passes
        assert (res_s.formation_impl, res_p.formation_impl) == ("serial", "parallel")
        assert _file_bytes(dev_s, "out.bin") == _file_bytes(dev_p, "out.bin")
        assert stats_s.as_dict() == stats_p.as_dict()

    def test_worker_runs_byte_identical_to_serial_runs(self, tmp_path, edges):
        """Every intermediate run file the pool workers write matches the
        serial pass's run for the same window, byte for byte."""
        from repro.externalmem.extsort import form_runs_parallel

        dev_s = BlockDevice(tmp_path / "runs_serial", block_size=512)
        dev_p = BlockDevice(tmp_path / "runs_parallel", block_size=512)
        for dev in (dev_s, dev_p):
            write_edge_file(dev, "in.bin", edges)
        memory_edges = (32 * 1024) // 16
        # serial windows via the reference lexsort
        serial_runs = []
        offset = 0
        while offset < edges.shape[0]:
            count = min(memory_edges, edges.shape[0] - offset)
            window = edges[offset : offset + count]
            order = np.lexsort((window[:, 1], window[:, 0]))
            serial_runs.append(window[order])
            offset += count
        run_names, max_src, max_dst, min_value = form_runs_parallel(
            dev_p, "in.bin", edges.shape[0], memory_edges, "_extsort"
        )
        assert len(run_names) == len(serial_runs)
        assert max_src == int(edges[:, 0].max())
        assert max_dst == int(edges[:, 1].max())
        assert min_value == min(int(edges.min()), 0)
        for name, expected in zip(run_names, serial_runs):
            np.testing.assert_array_equal(read_edge_file(dev_p, name), expected)

    def test_merge_impls_agree_on_worker_runs(self, tmp_path, edges):
        dev_v, _, stats_v = self._sort(tmp_path, edges, "parallel", "vectorized")
        dev_h, _, stats_h = self._sort(tmp_path, edges, "parallel", "heapq")
        assert _file_bytes(dev_v, "out.bin") == _file_bytes(dev_h, "out.bin")
        assert stats_v.as_dict() == stats_h.as_dict()


class TestRunMatrixEquivalence:
    """Full PDTL runs: serial vs parallel preprocessing on every backend."""

    def _config(self, **overrides) -> PDTLConfig:
        base = dict(
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc=8192,
            block_size=512,
            modelled_cpu=True,
        )
        base.update(overrides)
        return PDTLConfig(**base)

    def _assert_equivalent(self, reference, result, label):
        assert result.triangles == reference.triangles, label
        assert result.calc_seconds == reference.calc_seconds, label
        assert result.total_io_seconds == reference.total_io_seconds, label
        assert result.total_cpu_seconds == reference.total_cpu_seconds, label
        assert result.modelled_setup_seconds == reference.modelled_setup_seconds, label
        assert (
            result.metrics.setup_io_stats.as_dict()
            == reference.metrics.setup_io_stats.as_dict()
        ), label

    def test_backend_matrix(self, graph):
        expected = forward_count(graph)
        reference = PDTLRunner(self._config(), backend="serial").run(graph)
        assert reference.triangles == expected
        assert not reference.preprocess_parallel
        assert reference.modelled_setup_seconds > 0.0
        for backend in BACKENDS:
            for shm in (False, True):
                result = PDTLRunner(
                    self._config(parallel_preprocess=True, shm=shm), backend=backend
                ).run(graph)
                label = f"{backend}/shm={shm}"
                assert result.preprocess_parallel, label
                assert result.shm_used == shm, label
                self._assert_equivalent(reference, result, label)

    def test_under_failure_straggler_and_jitter(self, skewed_graph):
        expected = forward_count(skewed_graph)
        injections = dict(
            scheduling="dynamic",
            failure_spec={0: 1, 2: 0},
            straggler_spec={1: 10.0},
            host_jitter_seconds=0.002,
        )
        reference = PDTLRunner(self._config(**injections), backend="serial").run(
            skewed_graph
        )
        assert reference.triangles == expected
        assert reference.metrics.total_chunks_retried >= 1
        for backend in BACKENDS:
            result = PDTLRunner(
                self._config(parallel_preprocess=True, shm=True, **injections),
                backend=backend,
            ).run(skewed_graph)
            assert result.preprocess_parallel, backend
            self._assert_equivalent(reference, result, backend)

    def test_respects_disabled_parallel_orientation_chunking(self, graph):
        """With parallel_orientation=False the chunk decomposition is one
        window everywhere, so parallel_preprocess keeps the exact same
        accounting (read_calls included) as the serial reference -- and the
        shm-unavailable fallback of the same config is equivalent too."""
        reference = PDTLRunner(
            self._config(parallel_orientation=False), backend="serial"
        ).run(graph)
        pooled = PDTLRunner(
            self._config(parallel_orientation=False, parallel_preprocess=True),
            backend="serial",
        ).run(graph)
        assert pooled.preprocess_parallel
        self._assert_equivalent(reference, pooled, "parallel_orientation=False")

    def test_setup_stats_within_scan_envelope(self, graph):
        config = self._config(parallel_preprocess=True)
        result = PDTLRunner(config, backend="serial").run(graph)
        estimate = estimate_setup_cost(graph, config)
        measured = result.metrics.setup_io_stats.total_blocks
        assert estimate.total_blocks > 0
        # the envelope ignores meta files and block-boundary rounding; the
        # measured counters must sit within a small constant of it
        assert 0.5 * estimate.total_blocks <= measured <= 2.0 * estimate.total_blocks

    def test_edge_support_sink_unaffected(self, skewed_graph):
        """The derived-analytics input (edge supports) is preprocessing-
        independent too."""
        config = self._config(count_only=False, sink="edge-support")
        reference = PDTLRunner(config, backend="serial").run(skewed_graph)
        result = PDTLRunner(
            self._config(
                count_only=False, sink="edge-support", parallel_preprocess=True
            ),
            backend="processes",
        ).run(skewed_graph)
        np.testing.assert_array_equal(result.edge_supports, reference.edge_supports)
        np.testing.assert_array_equal(result.oriented_edges, reference.oriented_edges)
