"""Unit tests for per-node and cluster metrics."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import ClusterMetrics, NodeMetrics
from repro.externalmem.iostats import IOStats


def make_io(blocks: int = 1) -> IOStats:
    stats = IOStats()
    stats.record_read(blocks, blocks * 512, True)
    return stats


class TestNodeMetrics:
    def test_add_worker_accumulates(self):
        node = NodeMetrics(node_index=0)
        node.add_worker(cpu_seconds=1.0, io_seconds=0.5, triangles=10, io_stats=make_io())
        node.add_worker(cpu_seconds=2.0, io_seconds=0.25, triangles=5, io_stats=make_io())
        assert node.cpu_seconds == pytest.approx(3.0)
        assert node.io_seconds == pytest.approx(0.75)
        assert node.triangles == 15
        assert node.workers == 2
        assert node.io_stats.blocks_read == 2

    def test_calc_seconds_is_max_worker_time(self):
        node = NodeMetrics(node_index=0)
        node.add_worker(1.0, 0.5, 0, make_io())   # 1.5
        node.add_worker(0.2, 0.1, 0, make_io())   # 0.3
        assert node.calc_seconds == pytest.approx(1.5)

    def test_total_seconds_includes_copy(self):
        node = NodeMetrics(node_index=1, copy_seconds=2.0)
        node.add_worker(1.0, 0.0, 0, make_io())
        assert node.total_seconds() == pytest.approx(3.0)

    def test_as_dict_keys(self):
        d = NodeMetrics(node_index=2).as_dict()
        assert d["node"] == 2
        assert "cpu_seconds" in d and "copy_seconds" in d


class TestClusterMetrics:
    def test_node_creates_on_demand(self):
        metrics = ClusterMetrics()
        metrics.node(2).copy_seconds = 1.0
        assert len(metrics.nodes) == 3
        assert metrics.nodes[2].copy_seconds == 1.0

    def test_totals(self):
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(1.0, 0.5, 10, make_io())
        metrics.node(1).add_worker(2.0, 1.5, 20, make_io())
        assert metrics.total_cpu_seconds == pytest.approx(3.0)
        assert metrics.total_io_seconds == pytest.approx(2.0)
        assert metrics.total_triangles == 30

    def test_calc_seconds_is_struggler_node(self):
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(1.0, 0.0, 0, make_io())
        metrics.node(1).add_worker(4.0, 0.0, 0, make_io())
        assert metrics.calc_seconds == pytest.approx(4.0)

    def test_average_copy_excludes_master(self):
        metrics = ClusterMetrics()
        metrics.node(0).copy_seconds = 100.0  # master (should be excluded)
        metrics.node(1).copy_seconds = 2.0
        metrics.node(2).copy_seconds = 4.0
        assert metrics.average_copy_seconds() == pytest.approx(3.0)

    def test_average_copy_single_node(self):
        metrics = ClusterMetrics()
        metrics.node(0).copy_seconds = 5.0
        assert metrics.average_copy_seconds() == pytest.approx(5.0)

    def test_imbalance_ratio(self):
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(1.0, 0.0, 0, make_io())
        metrics.node(1).add_worker(1.3, 0.0, 0, make_io())
        assert metrics.imbalance_ratio() == pytest.approx(1.3)

    def test_imbalance_ratio_empty(self):
        assert ClusterMetrics().imbalance_ratio() == 1.0

    def test_as_rows(self):
        metrics = ClusterMetrics()
        metrics.node(0)
        metrics.node(1)
        rows = metrics.as_rows()
        assert len(rows) == 2
        assert rows[1]["node"] == 1


class TestChunkAccounting:
    def test_chunk_counters_accumulate(self):
        node = NodeMetrics(node_index=0)
        node.add_worker(1.0, 0.0, 0, make_io(), chunks_completed=3, chunks_stolen=1)
        node.add_worker(1.0, 0.0, 0, make_io(), chunks_completed=2, chunks_retried=1)
        assert node.chunks_completed == 5
        assert node.chunks_stolen == 1
        assert node.chunks_retried == 1
        assert node.as_dict()["chunks_completed"] == 5

    def test_static_defaults_count_one_unit_per_worker(self):
        node = NodeMetrics(node_index=0)
        node.add_worker(1.0, 0.0, 0, make_io())
        assert node.chunks_completed == 1
        assert node.chunks_stolen == 0

    def test_cluster_chunk_totals(self):
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(1.0, 0.0, 0, make_io(), chunks_completed=4)
        metrics.node(1).add_worker(
            1.0, 0.0, 0, make_io(), chunks_completed=2, chunks_stolen=2, chunks_retried=1
        )
        assert metrics.total_chunks_completed == 6
        assert metrics.total_chunks_stolen == 2
        assert metrics.total_chunks_retried == 1

    def test_worker_imbalance_is_max_over_mean(self):
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(3.0, 0.0, 0, make_io())
        metrics.node(0).add_worker(1.0, 0.0, 0, make_io())
        metrics.node(1).add_worker(2.0, 0.0, 0, make_io())
        # workers: 3.0, 1.0, 2.0 -> max 3.0 / mean 2.0
        assert metrics.worker_imbalance() == pytest.approx(1.5)

    def test_worker_imbalance_degenerate_cases(self):
        assert ClusterMetrics().worker_imbalance() == 1.0
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(0.0, 0.0, 0, make_io())
        assert metrics.worker_imbalance() == 1.0

    def test_failed_workers_excluded_from_imbalance_sample(self):
        metrics = ClusterMetrics()
        metrics.node(0).add_worker(2.0, 0.0, 0, make_io())
        metrics.node(0).add_worker(2.0, 0.0, 0, make_io())
        # a killed worker's near-zero time must not deflate the mean
        metrics.node(1).add_worker(0.0, 0.0, 0, make_io(), failed=True)
        assert metrics.worker_imbalance() == pytest.approx(1.0)
        # but an idle-yet-alive worker is genuine imbalance
        metrics.node(1).add_worker(0.0, 0.0, 0, make_io())
        assert metrics.worker_imbalance() == pytest.approx(1.5)
