"""Cross-backend equivalence: serial / threads / processes must agree exactly.

The execution backend is a host concern -- the simulated cluster's modelled
quantities must not depend on it.  With ``modelled_cpu=True`` every per-chunk
cost is a pure function of the input, and chunk→worker assignment is the
deterministic pull-protocol replay, so *every* modelled number (not just the
triangle count) must be bit-identical across backends, for both scheduling
modes and all three sink kinds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inmemory import forward_count, forward_list
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat

BACKENDS = ("serial", "threads", "processes")


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=17))


@pytest.fixture(scope="module")
def expected(graph) -> int:
    return forward_count(graph)


def _config(scheduling: str, **overrides) -> PDTLConfig:
    return PDTLConfig(
        num_nodes=2,
        procs_per_node=2,
        memory_per_proc=4096,
        block_size=512,
        modelled_cpu=True,
        scheduling=scheduling,
        **overrides,
    )


@pytest.mark.parametrize("scheduling", ("static", "dynamic"))
class TestCountsAndModelledTimes:
    def test_counts_identical_across_backends(self, graph, expected, scheduling):
        for backend in BACKENDS:
            result = PDTLRunner(_config(scheduling), backend=backend).run(graph)
            assert result.triangles == expected, backend

    def test_modelled_times_identical_across_backends(self, graph, scheduling):
        results = [
            PDTLRunner(_config(scheduling), backend=backend).run(graph)
            for backend in BACKENDS
        ]
        reference = results[0]
        for result in results[1:]:
            # bit-identical, not approximately equal: the modelled numbers
            # are pure functions of the input under modelled_cpu
            assert result.calc_seconds == reference.calc_seconds
            assert result.total_io_seconds == reference.total_io_seconds
            assert result.total_cpu_seconds == reference.total_cpu_seconds
            per_worker = [
                (w.node_index, w.proc_index, w.calc_seconds) for w in result.workers
            ]
            reference_workers = [
                (w.node_index, w.proc_index, w.calc_seconds)
                for w in reference.workers
            ]
            assert per_worker == reference_workers

    def test_network_traffic_identical_across_backends(self, graph, scheduling):
        results = [
            PDTLRunner(_config(scheduling), backend=backend).run(graph)
            for backend in BACKENDS
        ]
        assert len({r.network_bytes for r in results}) == 1
        assert len({r.network_messages for r in results}) == 1


@pytest.mark.parametrize("scheduling", ("static", "dynamic"))
class TestSinkKindsAcrossBackends:
    def test_listing_identical_across_backends(self, graph, scheduling):
        reference_sets = forward_list(graph)
        lists = []
        for backend in BACKENDS:
            config = _config(scheduling, count_only=False)
            result = PDTLRunner(config, backend=backend).run(graph, sink_kind="list")
            assert {t.as_vertex_set() for t in result.triangle_list} == reference_sets
            lists.append([tuple(t) for t in result.triangle_list])
        # deterministic merge by chunk index: identical *order*, not just set
        assert lists[0] == lists[1] == lists[2]

    def test_per_vertex_identical_across_backends(self, graph, scheduling):
        arrays = [
            PDTLRunner(_config(scheduling), backend=backend)
            .run(graph, sink_kind="per-vertex")
            .per_vertex_counts
            for backend in BACKENDS
        ]
        np.testing.assert_array_equal(arrays[0], arrays[1])
        np.testing.assert_array_equal(arrays[0], arrays[2])
        assert int(arrays[0].sum()) == 3 * forward_count(graph)

    def test_count_sink_matches_other_sinks(self, graph, expected, scheduling):
        for backend in BACKENDS:
            result = PDTLRunner(_config(scheduling), backend=backend).run(
                graph, sink_kind="count"
            )
            assert result.triangles == expected


class TestDynamicMatchesStatic:
    def test_dynamic_equals_static_per_backend(self, graph, expected):
        for backend in BACKENDS:
            static = PDTLRunner(_config("static"), backend=backend).run(graph)
            dynamic = PDTLRunner(_config("dynamic"), backend=backend).run(graph)
            assert static.triangles == dynamic.triangles == expected

    def test_failure_injection_preserves_counts_on_all_backends(
        self, graph, expected
    ):
        config = _config("dynamic", failure_spec={0: 1, 2: 0})
        for backend in BACKENDS:
            result = PDTLRunner(config, backend=backend).run(graph)
            assert result.triangles == expected
            assert result.metrics.total_chunks_retried >= 1
