"""Cross-backend equivalence: serial / threads / processes / processes+shm.

The execution backend is a host concern -- the simulated cluster's modelled
quantities must not depend on it.  With ``modelled_cpu=True`` every per-chunk
cost is a pure function of the input, and chunk→worker assignment is the
deterministic pull-protocol replay, so *every* modelled number (not just the
triangle count) must be bit-identical across backends, for both scheduling
modes and all three sink kinds.  The shared-memory variant adds a fourth
backend: the same persistent process pool, but with memory windows sliced
zero-copy from published segments instead of re-read from disk -- it too
must be bit-identical, because the zero-copy layer sits strictly below the
accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inmemory import forward_count, forward_list
from repro.core import kernel_backend
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner
from repro.core.shm import shm_available
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat

#: (label, executor backend, shm) -- the four host execution strategies
BACKENDS = (
    ("serial", "serial", False),
    ("threads", "threads", False),
    ("processes", "processes", False),
    ("processes+shm", "processes", True),
)

_SHM_OK, _SHM_REASON = shm_available()
_COMPILED_OK, _COMPILED_TIER = kernel_backend.compiled_available()


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=17))


@pytest.fixture(scope="module")
def expected(graph) -> int:
    return forward_count(graph)


def _config(scheduling: str, shm: bool, **overrides) -> PDTLConfig:
    return PDTLConfig(
        num_nodes=2,
        procs_per_node=2,
        memory_per_proc=4096,
        block_size=512,
        modelled_cpu=True,
        scheduling=scheduling,
        shm=shm,
        **overrides,
    )


def _backends():
    for label, backend, shm in BACKENDS:
        if shm and not _SHM_OK:
            continue  # pragma: no cover - shm-capable hosts run all four
        yield label, backend, shm


def _run(graph, scheduling, backend, shm, sink_kind="count", **overrides):
    config = _config(scheduling, shm, **overrides)
    result = PDTLRunner(config, backend=backend).run(graph, sink_kind=sink_kind)
    assert result.shm_used == shm
    return result


@pytest.mark.parametrize("scheduling", ("static", "dynamic"))
class TestCountsAndModelledTimes:
    def test_counts_identical_across_backends(self, graph, expected, scheduling):
        for label, backend, shm in _backends():
            result = _run(graph, scheduling, backend, shm)
            assert result.triangles == expected, label

    def test_modelled_times_identical_across_backends(self, graph, scheduling):
        results = {
            label: _run(graph, scheduling, backend, shm)
            for label, backend, shm in _backends()
        }
        reference = results["serial"]
        for label, result in results.items():
            # bit-identical, not approximately equal: the modelled numbers
            # are pure functions of the input under modelled_cpu
            assert result.calc_seconds == reference.calc_seconds, label
            assert result.total_io_seconds == reference.total_io_seconds, label
            assert result.total_cpu_seconds == reference.total_cpu_seconds, label
            per_worker = [
                (w.node_index, w.proc_index, w.calc_seconds) for w in result.workers
            ]
            reference_workers = [
                (w.node_index, w.proc_index, w.calc_seconds)
                for w in reference.workers
            ]
            assert per_worker == reference_workers, label

    def test_io_stats_identical_across_backends(self, graph, scheduling):
        results = {
            label: _run(graph, scheduling, backend, shm)
            for label, backend, shm in _backends()
        }
        reference = results["serial"]
        for label, result in results.items():
            for ours, theirs in zip(result.workers, reference.workers):
                assert (
                    ours.result.io_stats.as_dict() == theirs.result.io_stats.as_dict()
                ), label

    def test_network_traffic_identical_across_backends(self, graph, scheduling):
        results = [
            _run(graph, scheduling, backend, shm)
            for _, backend, shm in _backends()
        ]
        assert len({r.network_bytes for r in results}) == 1
        assert len({r.network_messages for r in results}) == 1


@pytest.mark.parametrize("scheduling", ("static", "dynamic"))
class TestSinkKindsAcrossBackends:
    def test_listing_identical_across_backends(self, graph, scheduling):
        reference_sets = forward_list(graph)
        lists = []
        for label, backend, shm in _backends():
            result = _run(
                graph, scheduling, backend, shm, sink_kind="list", count_only=False
            )
            assert {t.as_vertex_set() for t in result.triangle_list} == reference_sets
            lists.append([tuple(t) for t in result.triangle_list])
        # deterministic merge by chunk index: identical *order*, not just set
        assert all(entry == lists[0] for entry in lists[1:])

    def test_per_vertex_identical_across_backends(self, graph, scheduling):
        arrays = [
            _run(graph, scheduling, backend, shm, sink_kind="per-vertex")
            .per_vertex_counts
            for _, backend, shm in _backends()
        ]
        for array in arrays[1:]:
            np.testing.assert_array_equal(arrays[0], array)
        assert int(arrays[0].sum()) == 3 * forward_count(graph)

    def test_count_sink_matches_other_sinks(self, graph, expected, scheduling):
        for label, backend, shm in _backends():
            result = _run(graph, scheduling, backend, shm, sink_kind="count")
            assert result.triangles == expected, label

    def test_edge_supports_identical_across_backends(self, graph, expected, scheduling):
        """Per-edge triangle supports are merged by chunk index from exact
        integer partials, so every backend must report the same array bit
        for bit -- the contract the k-truss analytics build on."""
        arrays = []
        for label, backend, shm in _backends():
            result = _run(graph, scheduling, backend, shm, sink_kind="edge-support")
            assert int(result.edge_supports.sum()) == 3 * expected, label
            assert result.oriented_edges.shape == (
                result.edge_supports.shape[0],
                2,
            ), label
            arrays.append(result.edge_supports)
        for array in arrays[1:]:
            np.testing.assert_array_equal(arrays[0], array)


class TestDynamicMatchesStatic:
    def test_dynamic_equals_static_per_backend(self, graph, expected):
        for label, backend, shm in _backends():
            static = _run(graph, "static", backend, shm)
            dynamic = _run(graph, "dynamic", backend, shm)
            assert static.triangles == dynamic.triangles == expected, label

    def test_failure_injection_preserves_counts_on_all_backends(
        self, graph, expected
    ):
        for label, backend, shm in _backends():
            result = _run(
                graph, "dynamic", backend, shm, failure_spec={0: 1, 2: 0}
            )
            assert result.triangles == expected, label
            assert result.metrics.total_chunks_retried >= 1, label

    def test_host_jitter_leaves_results_bit_identical(self, graph):
        """Host-side straggler injection is wall-clock only: the chunk-seeded
        delays must not move a single modelled number on any backend."""
        reference = _run(graph, "dynamic", "serial", False)
        for label, backend, shm in _backends():
            jittered = _run(
                graph, "dynamic", backend, shm, host_jitter_seconds=0.01
            )
            assert jittered.triangles == reference.triangles, label
            assert jittered.calc_seconds == reference.calc_seconds, label
            assert jittered.total_io_seconds == reference.total_io_seconds, label

    def test_edge_supports_survive_failure_and_straggler_injection(
        self, graph, expected
    ):
        """Killed workers' chunks are re-executed and modelled stragglers
        re-balance the replay -- neither may change a single support."""
        reference = _run(graph, "dynamic", "serial", False, sink_kind="edge-support")
        for label, backend, shm in _backends():
            injected = _run(
                graph,
                "dynamic",
                backend,
                shm,
                sink_kind="edge-support",
                failure_spec={0: 1, 2: 0},
                straggler_spec={1: 4.0},
                host_jitter_seconds=0.005,
            )
            assert injected.triangles == expected, label
            assert injected.metrics.total_chunks_retried >= 1, label
            np.testing.assert_array_equal(
                injected.edge_supports, reference.edge_supports, err_msg=label
            )


@pytest.mark.skipif(not _COMPILED_OK, reason=f"no compiled backend: {_COMPILED_TIER}")
class TestCompiledTierEquivalence:
    """The compiled kernel tier is a host concern strictly below the
    accounting layer: with it on or off, every modelled quantity, count,
    listing order and support array must be bit-identical -- on all four
    execution backends, with and without failure/straggler/jitter
    injection.  The tier is applied on both sides of the seam: the master
    via ``kernel_backend.use`` and the workers via the pickled config's
    ``kernel_backend`` knob."""

    def _run_tier(self, graph, tier, backend, shm, scheduling="dynamic", **kwargs):
        with kernel_backend.use(tier):
            return _run(graph, scheduling, backend, shm, kernel_backend=tier, **kwargs)

    @pytest.mark.parametrize("scheduling", ("static", "dynamic"))
    def test_counts_and_modelled_times_identical(self, graph, expected, scheduling):
        for label, backend, shm in _backends():
            plain = self._run_tier(graph, "numpy", backend, shm, scheduling)
            compiled = self._run_tier(graph, _COMPILED_TIER, backend, shm, scheduling)
            assert compiled.triangles == plain.triangles == expected, label
            assert compiled.calc_seconds == plain.calc_seconds, label
            assert compiled.total_io_seconds == plain.total_io_seconds, label
            assert compiled.total_cpu_seconds == plain.total_cpu_seconds, label
            for ours, theirs in zip(compiled.workers, plain.workers):
                assert (
                    ours.result.io_stats.as_dict() == theirs.result.io_stats.as_dict()
                ), label

    def test_listing_order_identical(self, graph):
        for label, backend, shm in _backends():
            plain = self._run_tier(
                graph, "numpy", backend, shm, sink_kind="list", count_only=False
            )
            compiled = self._run_tier(
                graph,
                _COMPILED_TIER,
                backend,
                shm,
                sink_kind="list",
                count_only=False,
            )
            assert [tuple(t) for t in compiled.triangle_list] == [
                tuple(t) for t in plain.triangle_list
            ], label

    def test_edge_supports_identical_under_injection(self, graph, expected):
        injection = dict(
            failure_spec={0: 1, 2: 0},
            straggler_spec={1: 4.0},
            host_jitter_seconds=0.005,
        )
        for label, backend, shm in _backends():
            plain = self._run_tier(
                graph, "numpy", backend, shm, sink_kind="edge-support", **injection
            )
            compiled = self._run_tier(
                graph,
                _COMPILED_TIER,
                backend,
                shm,
                sink_kind="edge-support",
                **injection,
            )
            assert compiled.triangles == plain.triangles == expected, label
            assert compiled.metrics.total_chunks_retried >= 1, label
            np.testing.assert_array_equal(
                compiled.edge_supports, plain.edge_supports, err_msg=label
            )
            assert compiled.calc_seconds == plain.calc_seconds, label

    def test_per_vertex_counts_identical(self, graph, expected):
        for label, backend, shm in _backends():
            plain = self._run_tier(graph, "numpy", backend, shm, sink_kind="per-vertex")
            compiled = self._run_tier(
                graph, _COMPILED_TIER, backend, shm, sink_kind="per-vertex"
            )
            np.testing.assert_array_equal(
                compiled.per_vertex_counts, plain.per_vertex_counts, err_msg=label
            )
            assert int(compiled.per_vertex_counts.sum()) == 3 * expected, label


class TestMmapReadsEquivalence:
    """``mmap_reads`` is a host-side read strategy strictly below the
    accounting layer: every modelled quantity must be bit-identical with
    the flag on or off, on every backend."""

    def test_mmap_on_off_bit_identical(self, graph, expected):
        reference = _run(graph, "dynamic", "serial", False, sink_kind="edge-support")
        for label, backend, shm in _backends():
            mapped = _run(
                graph,
                "dynamic",
                backend,
                shm,
                sink_kind="edge-support",
                mmap_reads=True,
            )
            assert mapped.triangles == expected, label
            assert mapped.calc_seconds == reference.calc_seconds, label
            assert mapped.total_io_seconds == reference.total_io_seconds, label
            np.testing.assert_array_equal(
                mapped.edge_supports, reference.edge_supports, err_msg=label
            )
            for ours, theirs in zip(mapped.workers, reference.workers):
                assert (
                    ours.result.io_stats.as_dict() == theirs.result.io_stats.as_dict()
                ), label
