"""Unit tests for the per-core job execution backends."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.cluster.executor import (
    ExecutionBackend,
    process_pool,
    run_jobs,
    run_task_queue,
    shutdown_process_pool,
)


def _square(x):
    return x * x


class TestSerialBackend:
    def test_results_in_order(self):
        jobs = [lambda i=i: i * 10 for i in range(5)]
        assert run_jobs(jobs, backend="serial") == [0, 10, 20, 30, 40]

    def test_empty_jobs(self):
        assert run_jobs([], backend="serial") == []

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            run_jobs([boom], backend="serial")


class TestThreadBackend:
    def test_results_in_submission_order_despite_timing(self):
        def job(i, delay):
            def run():
                time.sleep(delay)
                return i

            return run

        jobs = [job(0, 0.05), job(1, 0.0), job(2, 0.02)]
        assert run_jobs(jobs, backend="threads") == [0, 1, 2]

    def test_actually_concurrent(self):
        barrier = threading.Barrier(3, timeout=5)

        def job():
            barrier.wait()  # deadlocks unless all three run concurrently
            return threading.get_ident()

        results = run_jobs([job, job, job], backend="threads", max_workers=3)
        assert len(results) == 3

    def test_single_job_runs_inline(self):
        assert run_jobs([lambda: 7], backend="threads") == [7]

    def test_exceptions_propagate(self):
        def boom():
            raise ValueError("bad")

        with pytest.raises(ValueError):
            run_jobs([boom, lambda: 1], backend="threads")


class TestBackendSelection:
    def test_enum_and_string_equivalent(self):
        jobs = [lambda: 1, lambda: 2]
        assert run_jobs(jobs, backend=ExecutionBackend.SERIAL) == run_jobs(
            jobs, backend="serial"
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([lambda: 1], backend="quantum")

    def test_max_workers_respected(self):
        active = []
        lock = threading.Lock()
        peak = [0]

        def job():
            with lock:
                active.append(1)
                peak[0] = max(peak[0], len(active))
            time.sleep(0.01)
            with lock:
                active.pop()
            return True

        run_jobs([job] * 6, backend="threads", max_workers=2)
        assert peak[0] <= 2


class TestDefaultWorkerCap:
    """Regression: ``max_workers or len(jobs)`` used to spawn one OS thread
    (or process) per job, even for hundreds of jobs; the default crew is now
    capped at the host's CPU count."""

    def _measure_peak(self, num_jobs: int) -> int:
        active = []
        lock = threading.Lock()
        peak = [0]

        def job():
            with lock:
                active.append(1)
                peak[0] = max(peak[0], len(active))
            time.sleep(0.005)
            with lock:
                active.pop()
            return True

        run_jobs([job] * num_jobs, backend="threads")
        return peak[0]

    def test_default_thread_crew_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert self._measure_peak(40) <= 2

    def test_cap_survives_unknown_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert self._measure_peak(10) <= 1

    def test_explicit_max_workers_still_wins(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        barrier = threading.Barrier(3, timeout=5)

        def job():
            barrier.wait()
            return True

        # three concurrent workers despite the 1-CPU host: explicit cap rules
        assert run_jobs([job] * 3, backend="threads", max_workers=3) == [True] * 3


class TestRunTaskQueue:
    def test_results_in_task_order(self):
        tasks = list(range(8))
        assert run_task_queue(tasks, lambda x: x * x, backend="serial") == [
            x * x for x in tasks
        ]

    def test_threads_pull_until_drained(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        tasks = list(range(50))
        results = run_task_queue(tasks, lambda x: x + 1, backend="threads")
        assert results == [x + 1 for x in tasks]

    def test_straggler_does_not_block_other_workers(self):
        order = []
        lock = threading.Lock()

        def work(task):
            if task == 0:
                time.sleep(0.1)  # straggling task
            with lock:
                order.append(task)
            return task

        results = run_task_queue(
            [0, 1, 2, 3, 4], work, backend="threads", max_workers=2
        )
        assert results == [0, 1, 2, 3, 4]
        # everything else finished while the straggler slept
        assert order[-1] == 0

    def test_processes_backend_requires_picklable_and_works(self):
        results = run_task_queue([1, 2, 3], _double, backend="processes", max_workers=2)
        assert results == [2, 4, 6]

    def test_exceptions_propagate(self):
        def boom(task):
            if task == 2:
                raise RuntimeError("task 2 failed")
            return task

        with pytest.raises(RuntimeError):
            run_task_queue([0, 1, 2, 3], boom, backend="threads", max_workers=2)

    def test_empty_tasks(self):
        assert run_task_queue([], lambda x: x, backend="threads") == []


def _double(x):
    return 2 * x


def _worker_pid(_task):
    return os.getpid()


def _kill_worker(task):
    if task == "die":
        os._exit(13)  # simulate a hard worker crash (not an exception)
    return task


class TestPersistentProcessPool:
    """The processes backend reuses one pool across calls (and scheduler
    rounds) instead of constructing/tearing down an executor per call."""

    def test_pool_object_is_reused_across_calls(self):
        shutdown_process_pool()
        first = process_pool(1)
        second = process_pool(1)
        assert first is second
        assert run_task_queue([1, 2], _double, backend="processes") == [2, 4]
        assert process_pool(1) is first

    def test_worker_processes_survive_between_runs(self):
        shutdown_process_pool()
        pids_a = set(run_task_queue([0, 1, 2], _worker_pid, backend="processes"))
        pids_b = set(run_task_queue([0, 1, 2], _worker_pid, backend="processes"))
        assert pids_a == pids_b  # same workers, not respawned ones
        assert os.getpid() not in pids_a

    def test_pool_grows_but_never_shrinks(self):
        shutdown_process_pool()
        small = process_pool(1)
        grown = process_pool(2)
        assert grown is not small
        assert process_pool(1) is grown  # a smaller request keeps the big pool

    def test_run_jobs_uses_the_shared_pool(self):
        shutdown_process_pool()
        results = run_jobs(
            [_make_const(3), _make_const(4)], backend="processes", max_workers=2
        )
        assert results == [3, 4]

    def test_shutdown_is_idempotent_and_recreates_lazily(self):
        shutdown_process_pool()
        shutdown_process_pool()
        assert run_task_queue([5], _double, backend="processes") == [10]
        shutdown_process_pool()

    def test_broken_pool_is_discarded_and_rebuilt(self):
        shutdown_process_pool()
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            run_task_queue(["ok", "die"], _kill_worker, backend="processes")
        # the next call transparently builds a fresh pool
        assert run_task_queue([1, 2, 3], _double, backend="processes") == [2, 4, 6]

    def test_exceptions_propagate_without_breaking_the_pool(self):
        shutdown_process_pool()
        with pytest.raises(ValueError, match="bad task"):
            run_task_queue([0, 1], _raise_on_one, backend="processes")
        assert run_task_queue([7], _double, backend="processes") == [14]

    def test_growth_does_not_break_a_concurrent_run(self):
        """Regression: replacing the pool with a larger one must not shut
        the old executor down under a thread still submitting to it."""
        shutdown_process_pool()
        outcome: dict[str, object] = {}

        def long_run():
            try:
                outcome["a"] = run_task_queue(
                    [0.03] * 6, _sleep_return, backend="processes", max_workers=1
                )
            except BaseException as exc:  # noqa: BLE001 - asserted below
                outcome["error"] = exc

        thread = threading.Thread(target=long_run)
        thread.start()
        time.sleep(0.05)  # let the long run occupy the 1-worker pool
        outcome["b"] = run_task_queue(
            [1, 2], _double, backend="processes", max_workers=2
        )  # grows (replaces) the shared pool mid-flight
        thread.join()
        assert "error" not in outcome, outcome.get("error")
        assert outcome["a"] == [0.03] * 6
        assert outcome["b"] == [2, 4]


def _make_const(value):
    from functools import partial

    return partial(_identity, value)


def _identity(value):
    return value


def _raise_on_one(task):
    if task == 1:
        raise ValueError("bad task")
    return task


def _sleep_return(delay):
    time.sleep(delay)
    return delay
