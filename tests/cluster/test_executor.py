"""Unit tests for the per-core job execution backends."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.cluster.executor import ExecutionBackend, run_jobs


def _square(x):
    return x * x


class TestSerialBackend:
    def test_results_in_order(self):
        jobs = [lambda i=i: i * 10 for i in range(5)]
        assert run_jobs(jobs, backend="serial") == [0, 10, 20, 30, 40]

    def test_empty_jobs(self):
        assert run_jobs([], backend="serial") == []

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            run_jobs([boom], backend="serial")


class TestThreadBackend:
    def test_results_in_submission_order_despite_timing(self):
        def job(i, delay):
            def run():
                time.sleep(delay)
                return i

            return run

        jobs = [job(0, 0.05), job(1, 0.0), job(2, 0.02)]
        assert run_jobs(jobs, backend="threads") == [0, 1, 2]

    def test_actually_concurrent(self):
        barrier = threading.Barrier(3, timeout=5)

        def job():
            barrier.wait()  # deadlocks unless all three run concurrently
            return threading.get_ident()

        results = run_jobs([job, job, job], backend="threads")
        assert len(results) == 3

    def test_single_job_runs_inline(self):
        assert run_jobs([lambda: 7], backend="threads") == [7]

    def test_exceptions_propagate(self):
        def boom():
            raise ValueError("bad")

        with pytest.raises(ValueError):
            run_jobs([boom, lambda: 1], backend="threads")


class TestBackendSelection:
    def test_enum_and_string_equivalent(self):
        jobs = [lambda: 1, lambda: 2]
        assert run_jobs(jobs, backend=ExecutionBackend.SERIAL) == run_jobs(
            jobs, backend="serial"
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([lambda: 1], backend="quantum")

    def test_max_workers_respected(self):
        active = []
        lock = threading.Lock()
        peak = [0]

        def job():
            with lock:
                active.append(1)
                peak[0] = max(peak[0], len(active))
            time.sleep(0.01)
            with lock:
                active.pop()
            return True

        run_jobs([job] * 6, backend="threads", max_workers=2)
        assert peak[0] <= 2
