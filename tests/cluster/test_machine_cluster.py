"""Unit tests for simulated machines and the cluster container."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.core.config import PDTLConfig
from repro.errors import ConfigurationError
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


class TestMachine:
    def test_defaults_and_total_memory(self, tmp_path):
        m = Machine(index=1, num_cores=4, memory_per_core="1MB", storage_root=tmp_path)
        assert m.total_memory == 4 * 1024 * 1024
        assert not m.is_master
        assert m.device.root.exists()

    def test_master_flag(self, tmp_path):
        assert Machine(0, 1, 1024, storage_root=tmp_path).is_master

    def test_invalid_cores(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Machine(0, 0, 1024, storage_root=tmp_path)

    def test_invalid_memory(self, tmp_path):
        with pytest.raises((ConfigurationError, ValueError)):
            Machine(0, 1, 0, storage_root=tmp_path)

    def test_tempdir_cleanup(self):
        m = Machine(index=0, num_cores=1, memory_per_core=1024)
        root = m.device.root
        assert root.exists()
        m.cleanup()
        assert not root.exists()

    def test_describe(self, tmp_path):
        text = Machine(2, 8, "512KB", storage_root=tmp_path).describe()
        assert "index=2" in text and "cores=8" in text


class TestClusterConstruction:
    def test_from_config(self, tmp_path):
        config = PDTLConfig(num_nodes=3, procs_per_node=2, memory_per_proc="1MB")
        cluster = Cluster.from_config(config, storage_root=tmp_path)
        assert cluster.num_nodes == 3
        assert cluster.total_cores == 6
        assert cluster.total_memory == 6 * 1024 * 1024
        assert cluster.master.index == 0

    def test_machine_accessor_bounds(self, tmp_path):
        cluster = Cluster.from_config(PDTLConfig(num_nodes=2), storage_root=tmp_path)
        assert cluster.machine(1).index == 1
        with pytest.raises(ConfigurationError):
            cluster.machine(5)

    def test_requires_machines(self):
        with pytest.raises(ConfigurationError):
            Cluster(machines=[], network=Network(num_nodes=1))

    def test_network_size_mismatch_rejected(self, tmp_path):
        machines = [Machine(0, 1, 1024, storage_root=tmp_path)]
        with pytest.raises(ConfigurationError):
            Cluster(machines=machines, network=Network(num_nodes=2))

    def test_machine_index_mismatch_rejected(self, tmp_path):
        machines = [Machine(1, 1, 1024, storage_root=tmp_path)]
        with pytest.raises(ConfigurationError):
            Cluster(machines=machines, network=Network(num_nodes=1))

    def test_bandwidth_override(self, tmp_path):
        cluster = Cluster.from_config(
            PDTLConfig(num_nodes=2),
            storage_root=tmp_path,
            bandwidth_bytes_per_s=123.0,
        )
        assert cluster.network.link(0, 1).bandwidth_bytes_per_s == 123.0

    def test_context_manager_cleans_up(self):
        with Cluster.from_config(PDTLConfig(num_nodes=2)) as cluster:
            roots = [m.device.root for m in cluster.machines]
            assert all(r.exists() for r in roots)
        assert not any(r.exists() for r in roots)


class TestReplication:
    @pytest.fixture
    def cluster_and_graph(self, tmp_path):
        config = PDTLConfig(num_nodes=3, procs_per_node=2, memory_per_proc="1MB")
        cluster = Cluster.from_config(config, storage_root=tmp_path)
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=0))
        gf = write_graph(cluster.master.device, "g", graph)
        return cluster, graph, gf

    def test_replicate_copies_to_all_nodes(self, cluster_and_graph):
        cluster, graph, gf = cluster_and_graph
        copies = cluster.replicate_graph(gf)
        assert set(copies) == {0, 1, 2}
        for node, local in copies.items():
            assert local.to_csr() == graph
            assert local.device is cluster.machine(node).device

    def test_replicate_charges_copy_time_and_bytes(self, cluster_and_graph):
        cluster, graph, gf = cluster_and_graph
        cluster.replicate_graph(gf)
        assert cluster.metrics.node(0).copy_seconds == 0.0
        for node in (1, 2):
            assert cluster.metrics.node(node).copy_seconds > 0.0
            assert cluster.metrics.node(node).bytes_received >= gf.size_bytes
        assert cluster.network.bytes_by_label("graph-copy") >= 2 * gf.size_bytes

    def test_replicate_requires_graph_on_master(self, cluster_and_graph, tmp_path):
        cluster, graph, _ = cluster_and_graph
        foreign = write_graph(cluster.machine(1).device, "foreign", graph)
        with pytest.raises(ConfigurationError):
            cluster.replicate_graph(foreign)

    def test_configuration_and_result_messages(self, cluster_and_graph):
        cluster, _, _ = cluster_and_graph
        cluster.send_configuration(1)
        cluster.send_result(1, 8)
        assert cluster.network.bytes_by_label("configuration") > 0
        assert cluster.network.bytes_by_label("result") == 8
        assert cluster.metrics.node(0).bytes_received == 8
