"""Unit tests for the simulated network."""

from __future__ import annotations

import pytest

from repro.cluster.network import Network, NetworkLink
from repro.errors import NetworkError


class TestNetworkLink:
    def test_transfer_time_scales_with_size(self):
        link = NetworkLink(0, 1, bandwidth_bytes_per_s=1e6, latency_s=0.0)
        assert link.transfer_time(2_000_000) == pytest.approx(2.0)

    def test_latency_added(self):
        link = NetworkLink(0, 1, bandwidth_bytes_per_s=1e9, latency_s=0.5)
        assert link.transfer_time(0) == pytest.approx(0.5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkLink(0, 1).transfer_time(-1)

    def test_zero_bandwidth_is_free(self):
        link = NetworkLink(0, 1, bandwidth_bytes_per_s=0.0, latency_s=0.0)
        assert link.transfer_time(1 << 30) == 0.0


class TestNetwork:
    def test_full_mesh_created(self):
        net = Network(num_nodes=3)
        assert len(net.links) == 6
        assert net.link(0, 2).src == 0

    def test_single_node_network(self):
        net = Network(num_nodes=1)
        assert net.links == {}

    def test_invalid_size(self):
        with pytest.raises(NetworkError):
            Network(num_nodes=0)

    def test_self_link_rejected(self):
        with pytest.raises(NetworkError):
            Network(num_nodes=2).link(1, 1)

    def test_unknown_node_rejected(self):
        net = Network(num_nodes=2)
        with pytest.raises(NetworkError):
            net.transfer(0, 5, 100)

    def test_transfer_records_and_times(self):
        net = Network(num_nodes=2)
        net.set_link(0, 1, bandwidth_bytes_per_s=1e6, latency_s=0.0)
        seconds = net.transfer(0, 1, 500_000, label="graph-copy")
        assert seconds == pytest.approx(0.5)
        assert net.total_bytes == 500_000
        assert net.total_messages == 1
        assert net.bytes_by_label("graph-copy") == 500_000

    def test_self_transfer_is_free_and_not_counted(self):
        net = Network(num_nodes=2)
        assert net.transfer(0, 0, 1000) == 0.0
        assert net.total_bytes == 0
        assert net.total_messages == 0

    def test_per_node_accounting(self):
        net = Network(num_nodes=3)
        net.transfer(0, 1, 100)
        net.transfer(0, 2, 200)
        net.transfer(1, 0, 50)
        assert net.bytes_sent_by(0) == 300
        assert net.bytes_received_by(1) == 100
        assert net.bytes_received_by(0) == 50

    def test_set_link_overrides(self):
        net = Network(num_nodes=2)
        net.set_link(0, 1, bandwidth_bytes_per_s=1.0, latency_s=0.0)
        assert net.transfer(0, 1, 10) == pytest.approx(10.0)

    def test_reset_clears_transfers(self):
        net = Network(num_nodes=2)
        net.transfer(0, 1, 10)
        net.reset()
        assert net.total_bytes == 0
