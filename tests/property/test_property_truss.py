"""Property tests: vectorised k-truss vs the scalar reference.

Trussness is a pure function of the graph (the k-truss is the *maximal*
subgraph with the support property, so the peel order cannot matter);
the batched vectorised peeler must therefore agree **exactly** with the
deliberately naive scalar reference on every graph -- Erdős–Rényi,
power-law, and the structured generators alike -- and the k-truss
subgraphs themselves must satisfy the defining support invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.truss import (
    canonical_edges,
    truss_decomposition,
    trussness_reference,
    undirected_edge_supports,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    planar_grid,
    power_law_degree_graph,
    ring_graph,
    watts_strogatz,
)


class TestMatchesScalarReference:
    @pytest.mark.parametrize("seed", range(10))
    def test_erdos_renyi(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 90))
        p = float(rng.uniform(0.05, 0.35))
        graph = CSRGraph.from_edgelist(erdos_renyi(n, p, seed=seed))
        np.testing.assert_array_equal(
            truss_decomposition(graph).trussness, trussness_reference(graph)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_power_law(self, seed):
        graph = CSRGraph.from_edgelist(
            power_law_degree_graph(
                250, exponent=2.2, min_degree=2, max_degree=40, seed=seed
            )
        )
        np.testing.assert_array_equal(
            truss_decomposition(graph).trussness, trussness_reference(graph)
        )

    @pytest.mark.parametrize(
        "edges",
        [
            complete_graph(6),
            ring_graph(9),
            planar_grid(4, 5, diagonals=True),
            watts_strogatz(30, 4, 0.2, seed=1),
        ],
        ids=["complete", "ring", "grid", "watts_strogatz"],
    )
    def test_structured_generators(self, edges):
        graph = CSRGraph.from_edgelist(edges)
        np.testing.assert_array_equal(
            truss_decomposition(graph).trussness, trussness_reference(graph)
        )


class TestTrussInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_truss_subgraph_satisfies_support_property(self, seed):
        """Every edge of the k-truss has >= k-2 triangles within the k-truss."""
        graph = CSRGraph.from_edgelist(erdos_renyi(60, 0.2, seed=seed))
        result = truss_decomposition(graph)
        for k in range(2, result.max_k + 1):
            sub = result.truss_subgraph(k)
            if sub.num_undirected_edges == 0:
                continue
            internal = undirected_edge_supports(sub)
            assert int(internal.min()) >= k - 2, k

    @pytest.mark.parametrize("seed", range(5))
    def test_trussness_is_maximal(self, seed):
        """An edge peeled at k is NOT in any (k+1)-truss: the subgraph of
        edges with trussness >= k+1 plus that edge would violate support --
        checked via the reference agreeing, plus trussness bounds."""
        graph = CSRGraph.from_edgelist(erdos_renyi(50, 0.25, seed=100 + seed))
        result = truss_decomposition(graph)
        # trussness is bounded by support + 2 and is >= 2 everywhere
        assert np.all(result.trussness >= 2)
        assert np.all(result.trussness <= result.support + 2)

    def test_supports_match_pdtl_edge_supports(self):
        """The standalone support kernel equals the PDTL edge-support run."""
        from repro import edge_supports as run_edge_supports

        graph = CSRGraph.from_edgelist(erdos_renyi(80, 0.15, seed=7))
        result = run_edge_supports(graph)
        oriented = result.oriented_edges
        low = np.minimum(oriented[:, 0], oriented[:, 1])
        high = np.maximum(oriented[:, 0], oriented[:, 1])
        order = np.argsort(low * np.int64(graph.num_vertices) + high)
        edges = np.stack([low[order], high[order]], axis=1)
        np.testing.assert_array_equal(edges, canonical_edges(graph))
        np.testing.assert_array_equal(
            result.edge_supports[order], undirected_edge_supports(graph, edges)
        )
