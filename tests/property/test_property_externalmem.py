"""Property-based tests for the external-memory substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import external_sort_edges, read_edge_file, write_edge_file
from repro.externalmem.iostats import scan_io_cost, sort_io_cost
from repro.externalmem.memory import MemoryBudget
from repro.errors import OutOfMemoryError

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 200)), min_size=0, max_size=400
    ),
    memory=st.sampled_from([256, 1024, 4096, 1 << 16]),
)
@settings(**SETTINGS)
def test_external_sort_produces_sorted_permutation(tmp_path_factory, edges, memory):
    device = BlockDevice(tmp_path_factory.mktemp("extsort"), block_size=256)
    arr = np.array(edges, dtype=np.int64).reshape(-1, 2)
    write_edge_file(device, "in.bin", arr)
    external_sort_edges(device, "in.bin", "out.bin", memory_bytes=memory)
    out = read_edge_file(device, "out.bin")
    expected = arr[np.lexsort((arr[:, 1], arr[:, 0]))] if arr.size else arr
    np.testing.assert_array_equal(out, expected)


@given(
    num_elements=st.integers(min_value=0, max_value=10**7),
    block=st.integers(min_value=1, max_value=10**5),
)
@settings(max_examples=60, deadline=None)
def test_scan_cost_is_tight_ceiling(num_elements, block):
    cost = scan_io_cost(num_elements, block)
    assert cost * block >= num_elements
    assert (cost - 1) * block < num_elements or cost == 0


@given(
    num_elements=st.integers(min_value=1, max_value=10**7),
    memory=st.integers(min_value=2, max_value=10**6),
    block=st.integers(min_value=1, max_value=10**4),
)
@settings(max_examples=60, deadline=None)
def test_sort_cost_at_least_scan_cost(num_elements, memory, block):
    assert sort_io_cost(num_elements, memory, block) >= scan_io_cost(num_elements, block)


@given(
    allocations=st.lists(
        st.tuples(st.text(alphabet="abcdef", min_size=1, max_size=3), st.integers(0, 500)),
        min_size=0,
        max_size=20,
    ),
    capacity=st.integers(min_value=1, max_value=2000),
)
@settings(max_examples=60, deadline=None)
def test_memory_budget_never_exceeds_capacity(allocations, capacity):
    budget = MemoryBudget(capacity)
    for name, size in allocations:
        try:
            budget.allocate(name, size)
        except OutOfMemoryError:
            pass
        assert budget.used <= budget.capacity
        assert budget.peak_usage <= budget.capacity


@given(
    data=st.lists(st.integers(-(2**40), 2**40), min_size=0, max_size=300),
    chunk=st.integers(min_value=1, max_value=64),
)
@settings(**SETTINGS)
def test_blockfile_roundtrip_and_chunked_read(tmp_path_factory, data, chunk):
    device = BlockDevice(tmp_path_factory.mktemp("blockio"), block_size=128)
    f = device.open("data.bin")
    arr = np.array(data, dtype=np.int64)
    f.append_array(arr)
    np.testing.assert_array_equal(f.read_array(0, arr.shape[0]), arr)
    chunks = list(f.iter_chunks(chunk))
    joined = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(joined, arr)


@given(
    reads=st.lists(
        st.tuples(st.integers(0, 900), st.integers(1, 100)), min_size=1, max_size=30
    )
)
@settings(**SETTINGS)
def test_block_accounting_bounds(tmp_path_factory, reads):
    """Blocks read are always enough to cover the bytes read, and never more
    than bytes/block + 1 extra block per call."""
    device = BlockDevice(tmp_path_factory.mktemp("acct"), block_size=64)
    f = device.open("data.bin")
    f.append_array(np.arange(1000, dtype=np.int64))
    device.stats.reset()
    total_bytes = 0
    for offset, count in reads:
        f.read_array(offset, count)
        total_bytes += count * 8
    stats = device.stats
    assert stats.bytes_read == total_bytes
    assert stats.blocks_read * 64 >= total_bytes
    assert stats.blocks_read <= total_bytes // 64 + 2 * len(reads)
    assert stats.sequential_reads + stats.random_reads == stats.blocks_read
