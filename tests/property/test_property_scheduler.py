"""Property-style sweeps for the dynamic chunk scheduler.

Two invariants, probed over randomised inputs:

* **coverage** -- chunking any ``(num_edges, chunk_edges)`` pair tiles
  ``[0, num_edges)`` exactly once, and any schedule (random costs, random
  stragglers, random failures) completes every chunk exactly once;
* **exactness** -- a dynamic PDTL run under random steal orders and
  injected worker failures reports the same triangle count as single-core
  MGT over the same oriented file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PDTLConfig
from repro.core.mgt import mgt_count
from repro.core.orientation import orient_graph
from repro.core.pdtl import PDTLRunner
from repro.core.scheduler import (
    DynamicScheduler,
    chunks_cover_exactly,
    make_chunks,
)
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


def random_small_graph(seed: int, max_vertices: int = 40, edge_prob: float = 0.2) -> CSRGraph:
    """Deterministic small random graph (mirrors the fixture in tests/conftest.py)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, max_vertices))
    iu, iv = np.triu_indices(n, k=1)
    keep = rng.random(iu.shape[0]) < edge_prob
    edges = np.stack([iu[keep], iv[keep]], axis=1)
    return CSRGraph.from_edgelist(EdgeList(edges, n))


class TestChunkCoverage:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_sizes_cover_exactly_once(self, seed):
        rng = np.random.default_rng(seed)
        num_edges = int(rng.integers(0, 10_000))
        chunk_edges = int(rng.integers(1, 1_500))
        chunks = make_chunks(num_edges, chunk_edges)
        assert chunks_cover_exactly(chunks, num_edges)
        # no overlap and no gap, stated directly as well
        positions_covered = sum(c.num_edges for c in chunks)
        assert positions_covered == num_edges
        for first, second in zip(chunks, chunks[1:]):
            assert first.stop == second.start

    @pytest.mark.parametrize("seed", range(25))
    def test_random_schedules_complete_every_chunk_once(self, seed):
        rng = np.random.default_rng(100 + seed)
        num_chunks = int(rng.integers(1, 60))
        num_workers = int(rng.integers(1, 9))
        chunks = make_chunks(num_chunks, 1)
        costs = rng.random(num_chunks).tolist()
        # random stragglers, and random failures on a strict subset of workers
        stragglers = {
            int(w): float(f)
            for w, f in zip(
                rng.choice(num_workers, size=num_workers // 2, replace=False),
                1.0 + 4.0 * rng.random(num_workers // 2),
            )
        }
        doomed = rng.choice(
            num_workers, size=int(rng.integers(0, num_workers)), replace=False
        )
        failures = {int(w): int(rng.integers(0, 4)) for w in doomed}
        schedule = DynamicScheduler(
            chunks,
            num_workers=num_workers,
            failure_after=failures,
            straggler_factors=stragglers,
        ).schedule(costs)
        completed = sorted(i for a in schedule.assignments for i in a)
        assert completed == list(range(num_chunks))
        # a retried chunk still appears exactly once, on a surviving worker
        for worker in schedule.failed_workers:
            for index in schedule.retried[worker]:
                raise AssertionError(f"dead worker {worker} retried chunk {index}")


class TestDynamicCountExactness:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs_match_single_core_mgt(self, seed, tmp_path):
        graph = random_small_graph(seed, max_vertices=60, edge_prob=0.25)
        device = BlockDevice(tmp_path / "disk", block_size=512)
        oriented = orient_graph(write_graph(device, "g", graph)).oriented

        config = PDTLConfig(memory_per_proc=2048, block_size=512)
        expected = mgt_count(oriented, config).triangles

        rng = np.random.default_rng(1000 + seed)
        num_workers = int(rng.integers(2, 7))
        doomed = rng.choice(
            num_workers, size=int(rng.integers(0, num_workers)), replace=False
        )
        failures = {int(w): int(rng.integers(0, 3)) for w in doomed}
        run_config = PDTLConfig(
            num_nodes=1,
            procs_per_node=num_workers,
            memory_per_proc=2048,
            block_size=512,
            scheduling="dynamic",
            failure_spec=failures,
        )
        result = PDTLRunner(run_config).run(graph)
        assert result.triangles == expected
        if failures:
            assert len([w for w in result.workers if w.failed]) <= len(failures)

    @pytest.mark.parametrize("seed", range(6))
    def test_per_vertex_counts_survive_failures(self, seed, tmp_path):
        from repro.baselines.inmemory import per_vertex_triangle_counts

        graph = random_small_graph(200 + seed, max_vertices=50, edge_prob=0.3)
        config = PDTLConfig(
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc=2048,
            block_size=512,
            scheduling="dynamic",
            failure_spec={1: 1},
        )
        result = PDTLRunner(config).run(graph, sink_kind="per-vertex")
        np.testing.assert_array_equal(
            result.per_vertex_counts, per_vertex_triangle_counts(graph)
        )
