"""Property-based tests for edge-range splitting."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.load_balance import (
    balanced_split,
    naive_split,
    ranges_cover_exactly,
)
from repro.utils import chunk_ranges, even_splits


@given(
    num_edges=st.integers(min_value=0, max_value=5000),
    nodes=st.integers(min_value=1, max_value=5),
    procs=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_naive_split_partitions_edge_positions(num_edges, nodes, procs):
    ranges = naive_split(num_edges, nodes, procs)
    assert len(ranges) == nodes * procs
    assert ranges_cover_exactly(ranges, num_edges)
    sizes = [r.num_edges for r in ranges]
    assert max(sizes) - min(sizes) <= 1
    # every (node, proc) pair appears exactly once
    assert len({(r.node_index, r.proc_index) for r in ranges}) == nodes * procs


@given(
    out_degrees=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200),
    in_degree_scale=st.integers(min_value=0, max_value=50),
    nodes=st.integers(min_value=1, max_value=4),
    procs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_balanced_split_partitions_edge_positions(
    out_degrees, in_degree_scale, nodes, procs, seed
):
    out_degrees = np.array(out_degrees, dtype=np.int64)
    rng = np.random.default_rng(seed)
    in_degrees = rng.integers(0, in_degree_scale + 1, size=out_degrees.shape[0])
    ranges = balanced_split(out_degrees, in_degrees, nodes, procs)
    assert len(ranges) == nodes * procs
    assert ranges_cover_exactly(ranges, int(out_degrees.sum()))


@given(
    total=st.integers(min_value=0, max_value=10_000),
    chunks=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=80, deadline=None)
def test_chunk_ranges_cover_and_balance(total, chunks):
    ranges = chunk_ranges(total, chunks)
    assert len(ranges) == chunks
    assert ranges[0][0] == 0
    assert ranges[-1][1] == total
    sizes = [b - a for a, b in ranges]
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
    for (a1, b1), (a2, b2) in zip(ranges[:-1], ranges[1:]):
        assert b1 == a2


@given(
    weights=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=300),
    parts=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=80, deadline=None)
def test_even_splits_cover_contiguously(weights, parts):
    ranges = even_splits(np.array(weights), parts)
    assert len(ranges) == parts
    assert ranges[0][0] == 0
    assert ranges[-1][1] == len(weights)
    for (a1, b1), (a2, b2) in zip(ranges[:-1], ranges[1:]):
        assert b1 == a2
        assert a1 <= b1
