"""Property-based tests: triangle-counting invariants on arbitrary graphs.

These are the headline correctness properties of the reproduction:

* PDTL (the full pipeline) always agrees with the in-memory reference and
  with networkx, on arbitrary random graphs and arbitrary configurations;
* triangle counts are invariant under vertex relabelling;
* the arboricity-based upper bound of Theorem III.4 always holds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import PDTLConfig, PDTLRunner
from repro.baselines.inmemory import forward_count, node_iterator_count
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.properties import triangle_count_upper_bound

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_vertices: int = 28, max_extra_edges: int = 120):
    """A random simple undirected graph as a CSRGraph."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    max_possible = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(max_extra_edges, max_possible)))
    if m == 0:
        return CSRGraph.empty(n)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    chosen = rng.choice(iu.shape[0], size=min(m, iu.shape[0]), replace=False)
    edges = np.stack([iu[chosen], iv[chosen]], axis=1)
    return CSRGraph.from_edgelist(EdgeList(edges, n))


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_forward_equals_node_iterator(graph):
    assert forward_count(graph) == node_iterator_count(graph)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_pdtl_matches_reference(graph):
    result = PDTLRunner(PDTLConfig()).run(graph)
    assert result.triangles == forward_count(graph)


@given(
    graph=random_graphs(max_vertices=22, max_extra_edges=80),
    nodes=st.integers(min_value=1, max_value=3),
    procs=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_pdtl_configuration_independence(graph, nodes, procs):
    """The count must not depend on the cluster shape."""
    config = PDTLConfig(num_nodes=nodes, procs_per_node=procs, memory_per_proc="256KB")
    assert PDTLRunner(config).run(graph).triangles == forward_count(graph)


@given(graph=random_graphs(), seed=st.integers(min_value=0, max_value=1000))
@settings(**SETTINGS)
def test_count_invariant_under_relabelling(graph, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_vertices)
    relabelled = CSRGraph.from_edgelist(graph.to_edgelist().relabeled(perm))
    assert forward_count(relabelled) == forward_count(graph)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_arboricity_bound_always_holds(graph):
    assert forward_count(graph) <= triangle_count_upper_bound(graph) + 1e-9


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_listing_is_consistent_with_count(graph):
    config = PDTLConfig(count_only=False)
    result = PDTLRunner(config).run(graph, sink_kind="list")
    assert len(result.triangle_list) == result.triangles
    vertex_sets = {t.as_vertex_set() for t in result.triangle_list}
    assert len(vertex_sets) == result.triangles  # no duplicates
    for tri in vertex_sets:
        vertices = sorted(tri)
        assert len(vertices) == 3
        for i in range(3):
            for j in range(i + 1, 3):
                assert graph.has_edge(vertices[i], vertices[j])


@given(graph=random_graphs(max_vertices=20, max_extra_edges=60))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_per_vertex_counts_sum_to_three_t(graph):
    result = PDTLRunner(PDTLConfig()).run(graph, sink_kind="per-vertex")
    assert int(result.per_vertex_counts.sum()) == 3 * result.triangles
