"""Property tests: every compiled kernel against its numpy twin.

Each available compiled registry is driven through the adversarial input
families the extsort fallback work (PR 5) established as the danger zone:
empty arrays, single elements, duplicate-heavy values and negative ids --
plus random graphs for the structural kernels.  Three registries can be
under test:

* ``python`` -- the numba kernel *bodies* run as plain Python
  (:func:`repro.core.kernels_compiled.build_python_registry`); always
  available, so the numba logic is exercised even where numba is not
  installed;
* ``cffi`` -- the C implementations, where a compiler is present;
* ``numba`` -- the JIT-compiled registry, where numba is installed (the
  CI ``compiled`` leg).

The fused entry points (``mgt_block_scan``, ``edge_support_accumulate``,
``truss_peel_level``, ``triangle_edge_ids``, ``incidence_csr``) have no
single numpy twin -- they replace multi-pass
caller chains -- so they are checked against in-test references built from
the numpy primitives, and end-to-end by installing the registry and
comparing whole decompositions.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analytics.truss import truss_decomposition
from repro.core import kernels, kernels_compiled
from repro.core.orientation import orient_csr
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _available_registries() -> list[tuple[str, dict]]:
    registries = [("python", kernels_compiled.build_python_registry())]
    try:
        from repro.core import kernels_cffi

        registries.append(("cffi", kernels_cffi.build_registry()))
    except Exception:  # noqa: BLE001 - no C toolchain: cffi leg skipped
        pass
    if kernels_compiled.NUMBA_AVAILABLE:
        registries.append(("numba", kernels_compiled.build_registry()))
    return registries


REGISTRIES = _available_registries()
REGISTRY_PARAMS = pytest.mark.parametrize(
    "registry", [r for _, r in REGISTRIES], ids=[name for name, _ in REGISTRIES]
)


@contextmanager
def installed(registry: dict):
    """Install a registry as the active tier, bypassing backend probing."""
    saved_impls = dict(kernels._ACTIVE_IMPLS)
    saved_ready = kernels._BACKEND_READY
    kernels._ACTIVE_IMPLS.clear()
    kernels._ACTIVE_IMPLS.update(registry)
    kernels._BACKEND_READY = True
    try:
        yield
    finally:
        kernels._ACTIVE_IMPLS.clear()
        kernels._ACTIVE_IMPLS.update(saved_impls)
        kernels._BACKEND_READY = saved_ready


# -- input families ---------------------------------------------------------

#: wide domain with negatives (id arithmetic), or a tiny domain so that
#: duplicates dominate -- both sides of the adversarial family
_values = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.integers(min_value=-3, max_value=3),
)


def _sorted_arrays(max_size: int = 60):
    return st.lists(_values, min_size=0, max_size=max_size).map(
        lambda xs: np.sort(np.asarray(xs, dtype=np.int64))
    )


def _plain_arrays(max_size: int = 60):
    return st.lists(_values, min_size=0, max_size=max_size).map(
        lambda xs: np.asarray(xs, dtype=np.int64)
    )


@st.composite
def random_graphs(draw, max_vertices: int = 24, max_edges: int = 90):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    max_possible = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(max_edges, max_possible)))
    if m == 0:
        return CSRGraph.empty(n)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    chosen = rng.choice(iu.shape[0], size=min(m, iu.shape[0]), replace=False)
    edges = np.stack([iu[chosen], iv[chosen]], axis=1)
    return CSRGraph.from_edgelist(EdgeList(edges, n))


# -- primitives vs their numpy twins ----------------------------------------


@REGISTRY_PARAMS
@given(haystack=_sorted_arrays(), queries=_plain_arrays())
@settings(**SETTINGS)
def test_sorted_membership_matches_numpy(registry, haystack, queries):
    want = kernels.NUMPY_IMPLS["sorted_membership"](haystack, queries)
    got = registry["sorted_membership"](haystack, queries)
    np.testing.assert_array_equal(got, want)


@REGISTRY_PARAMS
@given(a=_sorted_arrays(), b=_sorted_arrays())
@settings(**SETTINGS)
def test_merge_positions_matches_numpy(registry, a, b):
    want_a, want_b = kernels.NUMPY_IMPLS["merge_positions"](a, b)
    got_a, got_b = registry["merge_positions"](a, b)
    np.testing.assert_array_equal(got_a, want_a)
    np.testing.assert_array_equal(got_b, want_b)
    # and the positions actually describe a stable merge
    merged = np.empty(a.shape[0] + b.shape[0], dtype=np.int64)
    merged[np.asarray(got_a, dtype=np.int64)] = a
    merged[np.asarray(got_b, dtype=np.int64)] = b
    np.testing.assert_array_equal(merged, np.sort(np.concatenate((a, b))))


@REGISTRY_PARAMS
@given(a=_sorted_arrays(), b=_sorted_arrays())
@settings(**SETTINGS)
def test_intersect_sorted_matches_numpy(registry, a, b):
    want = kernels.NUMPY_IMPLS["intersect_sorted"](a, b)
    got = registry["intersect_sorted"](a, b)
    np.testing.assert_array_equal(got, want)


@REGISTRY_PARAMS
@given(graph=random_graphs(), data=st.data())
@settings(**SETTINGS)
def test_triangle_range_matches_numpy(registry, graph, data):
    oriented = orient_csr(graph)
    n = oriented.num_vertices
    lo = data.draw(st.integers(min_value=0, max_value=n))
    hi = data.draw(st.integers(min_value=lo, max_value=n))
    want = kernels.NUMPY_IMPLS["triangle_range"](
        oriented.indptr, oriented.indices, lo, hi, True
    )
    got = registry["triangle_range"](oriented.indptr, oriented.indices, lo, hi, True)
    for w, g in zip(want, got):
        np.testing.assert_array_equal(np.asarray(g), np.asarray(w))
    want_count, want_ops = kernels.NUMPY_IMPLS["triangle_range"](
        oriented.indptr, oriented.indices, lo, hi, False
    )
    got_count, got_ops = registry["triangle_range"](
        oriented.indptr, oriented.indices, lo, hi, False
    )
    assert (got_count, got_ops) == (want_count, want_ops)


@REGISTRY_PARAMS
@given(graph=random_graphs())
@settings(**SETTINGS)
def test_count_cone_range_matches_numpy(registry, graph):
    oriented = orient_csr(graph)
    n = oriented.num_vertices
    want = kernels.NUMPY_IMPLS["count_cone_range"](
        oriented.indptr, oriented.indices, 0, n, kernels.DEFAULT_BATCH_ENTRIES
    )
    got = registry["count_cone_range"](oriented.indptr, oriented.indices, 0, n)
    assert got == want


@REGISTRY_PARAMS
@given(graph=random_graphs(), data=st.data())
@settings(**SETTINGS)
def test_edge_intersections_matches_numpy(registry, graph, data):
    n = graph.num_vertices
    ne = data.draw(st.integers(min_value=0, max_value=12))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    us = rng.integers(0, n, size=ne, dtype=np.int64)
    vs = rng.integers(0, n, size=ne, dtype=np.int64)
    want = kernels.NUMPY_IMPLS["edge_intersections"](
        graph.indptr, graph.indices, us, vs, None, True
    )
    got = registry["edge_intersections"](graph.indptr, graph.indices, us, vs, True)
    np.testing.assert_array_equal(np.asarray(got), np.asarray(want))
    assert registry["edge_intersections"](
        graph.indptr, graph.indices, us, vs, False
    ) == int(np.sum(want))


@REGISTRY_PARAMS
@given(graph=random_graphs(), data=st.data())
@settings(**SETTINGS)
def test_edge_common_neighbors_matches_numpy(registry, graph, data):
    """The delta path's triangle enumerator: identical (owner, w) streams."""
    if "edge_common_neighbors" not in registry:
        pytest.skip("registry has no edge_common_neighbors (numpy fallback)")
    n = graph.num_vertices
    ne = data.draw(st.integers(min_value=0, max_value=12))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    us = rng.integers(0, n, size=ne, dtype=np.int64)
    vs = rng.integers(0, n, size=ne, dtype=np.int64)
    want_owners, want_ws = kernels.NUMPY_IMPLS["edge_common_neighbors"](
        graph.indptr, graph.indices, us, vs
    )
    got_owners, got_ws = registry["edge_common_neighbors"](
        graph.indptr, graph.indices, us, vs
    )
    np.testing.assert_array_equal(got_owners, want_owners)
    np.testing.assert_array_equal(got_ws, want_ws)


# -- fused kernels vs in-test references ------------------------------------


def _mgt_block_scan_reference(
    block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees
):
    """The 3-pass chain of ``MGTWorker._process_block``, one entry at a time."""
    pairs = 0
    total = 0
    cones, vs_out, ws_out = [], [], []
    for bu in range(block_offsets.shape[0] - 1):
        nu = block_adj[block_offsets[bu] : block_offsets[bu + 1]]
        for v in nu:
            if v < vlow or v > vhigh:
                continue
            d = int(win_degrees[v - vlow])
            if d <= 0:
                continue
            pairs += 1
            total += d
            ev = edg[win_offsets[v - vlow] : win_offsets[v - vlow] + d]
            for w in ev[np.isin(ev, nu)]:
                cones.append(bu)
                vs_out.append(int(v))
                ws_out.append(int(w))
    return pairs, total, cones, vs_out, ws_out


@REGISTRY_PARAMS
@given(graph=random_graphs(), data=st.data())
@settings(**SETTINGS)
def test_mgt_block_scan_matches_reference(registry, graph, data):
    oriented = orient_csr(graph)
    n = oriented.num_vertices
    blo = data.draw(st.integers(min_value=0, max_value=n))
    bhi = data.draw(st.integers(min_value=blo, max_value=n))
    vlow = data.draw(st.integers(min_value=0, max_value=n - 1))
    vhigh = data.draw(st.integers(min_value=vlow, max_value=n - 1))
    indptr, indices = oriented.indptr, oriented.indices
    block_adj = indices[indptr[blo] : indptr[bhi]].copy()
    block_offsets = (indptr[blo : bhi + 1] - indptr[blo]).astype(np.int64)
    edg = indices[indptr[vlow] : indptr[vhigh + 1]].copy()
    win_offsets = (indptr[vlow : vhigh + 1] - indptr[vlow]).astype(np.int64)
    win_degrees = np.diff(indptr[vlow : vhigh + 2]).astype(np.int64)

    pairs, total, cones, vs_ref, ws_ref = _mgt_block_scan_reference(
        block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees
    )
    got = registry["mgt_block_scan"](
        block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees, True
    )
    assert (got[0], got[1], got[2]) == (pairs, total, len(cones))
    np.testing.assert_array_equal(np.asarray(got[3]), np.asarray(cones, dtype=np.int64))
    np.testing.assert_array_equal(np.asarray(got[4]), np.asarray(vs_ref, dtype=np.int64))
    np.testing.assert_array_equal(np.asarray(got[5]), np.asarray(ws_ref, dtype=np.int64))

    counted = registry["mgt_block_scan"](
        block_adj, block_offsets, edg, vlow, vhigh, win_offsets, win_degrees, False
    )
    assert (counted[0], counted[1], counted[2]) == (pairs, total, len(cones))


@REGISTRY_PARAMS
@given(graph=random_graphs())
@settings(**SETTINGS)
def test_edge_support_accumulate_matches_scatter(registry, graph):
    oriented = orient_csr(graph)
    n = oriented.num_vertices
    edge_keys = kernels.csr_packed_keys(oriented.indptr, oriented.indices)
    cones, vs, ws, _ = kernels.NUMPY_IMPLS["triangle_range"](
        oriented.indptr, oriented.indices, 0, n, True
    )
    want = np.zeros(edge_keys.shape[0], dtype=np.int64)
    sources = np.concatenate((cones, cones, vs))
    destinations = np.concatenate((vs, ws, ws))
    positions = np.searchsorted(
        edge_keys, kernels.packed_keys(sources, destinations, n)
    )
    np.add.at(want, positions, 1)

    got = np.zeros(edge_keys.shape[0], dtype=np.int64)
    assert registry["edge_support_accumulate"](edge_keys, cones, vs, ws, n, got)
    np.testing.assert_array_equal(got, want)


@REGISTRY_PARAMS
@given(graph=random_graphs())
@settings(**SETTINGS)
def test_edge_support_accumulate_rolls_back_on_bad_pair(registry, graph):
    oriented = orient_csr(graph)
    n = oriented.num_vertices + 2  # room for a vertex pair that is no edge
    edge_keys = kernels.csr_packed_keys(oriented.indptr, oriented.indices)
    cones, vs, ws, _ = kernels.NUMPY_IMPLS["triangle_range"](
        oriented.indptr, oriented.indices, 0, oriented.num_vertices, True
    )
    # append one triple whose (u, w) pair cannot be an oriented edge
    bad_u = np.concatenate((cones, np.array([n - 2], dtype=np.int64)))
    bad_v = np.concatenate((vs, np.array([n - 2], dtype=np.int64)))
    bad_w = np.concatenate((ws, np.array([n - 1], dtype=np.int64)))
    support = np.zeros(edge_keys.shape[0], dtype=np.int64)
    ok = registry["edge_support_accumulate"](edge_keys, bad_u, bad_v, bad_w, n, support)
    assert not ok
    # every partial increment was rolled back
    np.testing.assert_array_equal(support, np.zeros_like(support))


@REGISTRY_PARAMS
@given(graph=random_graphs())
@settings(**SETTINGS)
def test_triangle_edge_ids_matches_searchsorted(registry, graph):
    from repro.analytics.truss import canonical_edges

    oriented = orient_csr(graph)
    n = graph.num_vertices
    edges = canonical_edges(graph)
    keys = kernels.packed_keys(edges[:, 0], edges[:, 1], n)
    cones, vs, ws, _ = kernels.NUMPY_IMPLS["triangle_range"](
        oriented.indptr, oriented.indices, 0, n, True
    )
    want = np.empty((cones.shape[0], 3), dtype=np.int64)
    for slot, (a, b) in enumerate(((cones, vs), (cones, ws), (vs, ws))):
        queries = kernels.packed_keys(np.minimum(a, b), np.maximum(a, b), n)
        want[:, slot] = np.searchsorted(keys, queries)

    row_start = np.searchsorted(keys, np.arange(n + 1, dtype=np.int64) * n)
    got = registry["triangle_edge_ids"](
        oriented.indptr, oriented.indices, keys, row_start, n, 0, n
    )
    np.testing.assert_array_equal(np.asarray(got), want)


@REGISTRY_PARAMS
@given(graph=random_graphs())
@settings(**SETTINGS)
def test_incidence_csr_matches_stable_argsort(registry, graph):
    from repro.analytics.truss import canonical_edges, _triangle_edge_ids

    n = graph.num_vertices
    edges = canonical_edges(graph)
    keys = kernels.packed_keys(edges[:, 0], edges[:, 1], n)
    m = edges.shape[0]
    with installed({}):
        flat = _triangle_edge_ids(graph, keys).reshape(-1)

    order = np.argsort(flat, kind="stable")
    want_tri = order // 3
    want_ptr = np.zeros(m + 1, dtype=np.int64)
    if m:
        np.cumsum(np.bincount(flat, minlength=m), out=want_ptr[1:])

    got_ptr, got_tri = registry["incidence_csr"](flat, m)
    np.testing.assert_array_equal(np.asarray(got_ptr), want_ptr)
    np.testing.assert_array_equal(np.asarray(got_tri), want_tri)


@REGISTRY_PARAMS
@given(graph=random_graphs())
@settings(**SETTINGS)
def test_truss_decomposition_identical_under_registry(registry, graph):
    with installed({}):
        want = truss_decomposition(graph)
    with installed(registry):
        got = truss_decomposition(graph)
    np.testing.assert_array_equal(got.trussness, want.trussness)
    np.testing.assert_array_equal(got.support, want.support)
    assert got.rounds == want.rounds
    assert got.max_k == want.max_k
