"""Property test: external sort ≡ ``np.lexsort`` across caps, fan-ins and impls."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import (
    external_sort_edges,
    read_edge_file,
    write_edge_file,
)

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@given(
    seed=st.integers(0, 1 << 16),
    num_edges=st.integers(0, 600),
    num_vertices=st.integers(1, 300),
    memory=st.sampled_from([256, 1024, 4096, 1 << 16]),
    fan_in=st.sampled_from([None, 2, 3, 16, 64]),
    merge_impl=st.sampled_from(["vectorized", "heapq"]),
)
@settings(**SETTINGS)
def test_external_sort_matches_lexsort(
    tmp_path_factory, seed, num_edges, num_vertices, memory, fan_in, merge_impl
):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, num_vertices, size=(num_edges, 2), dtype=np.int64)
    device = BlockDevice(tmp_path_factory.mktemp("extsort_prop"), block_size=256)
    write_edge_file(device, "in.bin", edges)
    result = external_sort_edges(
        device,
        "in.bin",
        "out.bin",
        memory_bytes=memory,
        fan_in=fan_in,
        merge_impl=merge_impl,
    )
    out = read_edge_file(device, "out.bin")
    expected = (
        edges[np.lexsort((edges[:, 1], edges[:, 0]))]
        if edges.size
        else edges
    )
    np.testing.assert_array_equal(out, expected)
    assert result.num_edges == num_edges
    if fan_in is not None:
        assert result.fan_in == fan_in


@given(
    seed=st.integers(0, 1 << 16),
    memory=st.sampled_from([512, 2048, 1 << 14]),
    fan_in=st.sampled_from([None, 2, 5]),
)
@settings(**SETTINGS)
def test_merge_impls_produce_identical_files(tmp_path_factory, seed, memory, fan_in):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, 200, size=(rng.integers(0, 800), 2)).astype(np.int64)
    outputs = []
    for impl in ("vectorized", "heapq"):
        device = BlockDevice(tmp_path_factory.mktemp(f"extsort_{impl}"), block_size=256)
        write_edge_file(device, "in.bin", edges)
        external_sort_edges(
            device, "in.bin", "out.bin", memory_bytes=memory, fan_in=fan_in,
            merge_impl=impl,
        )
        outputs.append(read_edge_file(device, "out.bin"))
    np.testing.assert_array_equal(outputs[0], outputs[1])
