"""Property-based tests for the degree-based order and orientation.

Besides the long-standing ``orient_csr`` invariants, this module drives
the *parallel* orientation path -- the chunked shared-memory scan of
:func:`repro.core.orientation.orient_chunk_shared` -- over randomized
graph families (Erdős–Rényi, power-law, stars, paths, duplicate-heavy
edge lists) and asserts its output exactly equals the vectorised
in-memory reference, with every :func:`degree_order_keys` invariant
holding on the result.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import kernels
from repro.core.orientation import (
    OrientChunkTask,
    degree_order_keys,
    orient_chunk_shared,
    orient_csr,
    orient_graph,
    precedes,
)
from repro.core.shm import detach_view, publish_input_graph, shm_available
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import power_law_degree_graph
from repro.utils import chunk_ranges

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PARALLEL_SETTINGS = dict(SETTINGS, max_examples=25)

_SHM_OK, _SHM_REASON = shm_available()
needs_shm = pytest.mark.skipif(
    not _SHM_OK, reason=f"POSIX shared memory unavailable: {_SHM_REASON}"
)


@st.composite
def random_graphs(draw, max_vertices: int = 30):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    max_possible = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(100, max_possible)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    if m == 0:
        return CSRGraph.empty(n)
    rng = np.random.default_rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    chosen = rng.choice(iu.shape[0], size=min(m, iu.shape[0]), replace=False)
    return CSRGraph.from_edgelist(EdgeList(np.stack([iu[chosen], iv[chosen]], axis=1), n))


@st.composite
def family_graphs(draw):
    """Randomized graphs across the structural families the parallel
    orientation must handle: ER, power-law hubs, stars (one giant degree),
    paths (all degrees tied) and duplicate-heavy raw edge lists."""
    kind = draw(st.sampled_from(["er", "power_law", "star", "path", "duplicates"]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=2, max_value=40))
    rng = np.random.default_rng(seed)
    if kind == "er":
        iu, iv = np.triu_indices(n, k=1)
        keep = rng.random(iu.shape[0]) < 0.2
        edges = np.stack([iu[keep], iv[keep]], axis=1)
        return CSRGraph.from_edgelist(EdgeList(edges, n))
    if kind == "power_law":
        exponent = draw(st.floats(min_value=1.8, max_value=3.0))
        return CSRGraph.from_edgelist(
            power_law_degree_graph(
                max(n, 10), exponent=exponent, min_degree=1, seed=seed
            )
        )
    if kind == "star":
        return CSRGraph.from_edgelist(
            EdgeList(np.array([[0, i] for i in range(1, n)], dtype=np.int64), n)
        )
    if kind == "path":
        return CSRGraph.from_edgelist(
            EdgeList(np.array([[i, i + 1] for i in range(n - 1)], dtype=np.int64), n)
        )
    # duplicate-heavy: rows drawn with replacement, both directions mixed in;
    # the simple bidirectional closure must still orient exactly
    m = draw(st.integers(min_value=1, max_value=120))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    edges = np.stack([src, dst], axis=1)
    edges = np.concatenate([edges, edges[rng.random(m) < 0.5][:, ::-1], edges[:3]])
    return CSRGraph.from_edgelist(EdgeList(edges.astype(np.int64), n))


def parallel_orientation_via_shared_chunks(
    graph: CSRGraph, num_chunks: int
) -> tuple[CSRGraph, np.ndarray]:
    """Run the shared-memory orientation path chunk by chunk, in process.

    Publishes the input graph exactly like the PDTL master does, executes
    one :class:`OrientChunkTask` per vertex chunk through the same code the
    pool workers run, and assembles the oriented CSR from the per-chunk
    outputs.  Returns ``(oriented CSR, out-degree array)``.
    """
    with tempfile.TemporaryDirectory(prefix="pdtl_prop_orient_") as root:
        device = BlockDevice(Path(root) / "disk", block_size=512)
        gf = write_graph(device, "g", graph)
        publication = publish_input_graph(gf)
        try:
            ranges = chunk_ranges(gf.num_vertices, num_chunks)
            results = [
                orient_chunk_shared(
                    OrientChunkTask(descriptor=publication.descriptor, lo=lo, hi=hi)
                )
                for lo, hi in ranges
            ]
        finally:
            publication.unlink()  # also drops this process's cached attachment
    out_degrees = np.concatenate([r[0] for r in results])
    adjacency = np.concatenate([r[1] for r in results])
    return CSRGraph.from_arrays(out_degrees, adjacency, directed=True), out_degrees


@given(degrees=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
@settings(**SETTINGS)
def test_degree_order_is_strict_total_order(degrees):
    degrees = np.array(degrees, dtype=np.int64)
    n = degrees.shape[0]
    keys = degree_order_keys(degrees)
    # antisymmetry + totality: exactly one of u≺v, v≺u for u != v
    for u in range(n):
        for v in range(n):
            if u == v:
                assert not precedes(u, v, degrees)
            else:
                assert precedes(u, v, degrees) != precedes(v, u, degrees)
                assert (keys[u] < keys[v]) == precedes(u, v, degrees)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_orientation_keeps_each_edge_once(graph):
    oriented = orient_csr(graph)
    assert oriented.num_edges == graph.num_undirected_edges
    undirected = {frozenset(e) for e in graph.iter_edges()}
    oriented_edges = list(oriented.iter_edges())
    assert {frozenset(e) for e in oriented_edges} == undirected
    # no edge stored in both directions
    as_tuples = set(oriented_edges)
    assert all((v, u) not in as_tuples for u, v in as_tuples)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_orientation_respects_degree_order(graph):
    oriented = orient_csr(graph)
    degrees = graph.degrees
    for u, v in oriented.iter_edges():
        assert precedes(u, v, degrees)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_orientation_is_acyclic(graph):
    """≺ is a strict total order, so the orientation can have no directed cycle."""
    oriented = orient_csr(graph)
    keys = degree_order_keys(graph.degrees)
    # topological consistency: every edge strictly increases the key
    for u, v in oriented.iter_edges():
        assert keys[u] < keys[v]


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_out_plus_in_degrees_equal_undirected_degrees(graph):
    oriented = orient_csr(graph)
    out_deg = oriented.degrees
    in_deg = np.zeros(graph.num_vertices, dtype=np.int64)
    if oriented.num_edges:
        np.add.at(in_deg, oriented.indices, 1)
    np.testing.assert_array_equal(out_deg + in_deg, graph.degrees)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_oriented_adjacency_stays_sorted_and_simple(graph):
    oriented = orient_csr(graph)
    oriented.check_sorted_adjacency()
    oriented.check_simple()


# ---------------------------------------------------------------------------
# the parallel (shared-memory, chunked) orientation path
# ---------------------------------------------------------------------------


@needs_shm
@given(graph=family_graphs(), num_chunks=st.integers(min_value=1, max_value=6))
@settings(**PARALLEL_SETTINGS)
def test_parallel_orientation_equals_orient_csr(graph, num_chunks):
    """The chunked shared-memory scan is exactly the in-memory reference,
    for any chunking, on every graph family."""
    expected = orient_csr(graph)
    oriented, out_degrees = parallel_orientation_via_shared_chunks(graph, num_chunks)
    np.testing.assert_array_equal(oriented.indptr, expected.indptr)
    np.testing.assert_array_equal(oriented.indices, expected.indices)
    np.testing.assert_array_equal(out_degrees, expected.degrees)


@needs_shm
@given(graph=family_graphs())
@settings(**PARALLEL_SETTINGS)
def test_parallel_orientation_respects_degree_order(graph):
    """Every oriented edge the parallel path emits satisfies ``u ≺ v``."""
    oriented, _ = parallel_orientation_via_shared_chunks(graph, num_chunks=3)
    degrees = graph.degrees
    keys = degree_order_keys(degrees)
    sources = oriented.edge_sources()
    assert bool(np.all(keys[sources] < keys[oriented.indices]))
    for u, v in oriented.iter_edges():
        assert precedes(u, v, degrees)


@needs_shm
@given(graph=family_graphs())
@settings(**PARALLEL_SETTINGS)
def test_parallel_orientation_packed_keys_globally_sorted(graph):
    """The packed (source, destination) keys of the parallel output are
    strictly increasing -- the sortedness invariant every downstream MGT
    scan and shared-memory publication relies on."""
    oriented, _ = parallel_orientation_via_shared_chunks(graph, num_chunks=4)
    packed = kernels.csr_packed_keys(oriented.indptr, oriented.indices)
    if packed.shape[0] > 1:
        assert bool(np.all(np.diff(packed) > 0))


@given(graph=family_graphs())
@settings(**PARALLEL_SETTINGS)
def test_degree_order_keys_invariants_on_families(graph):
    """``degree_order_keys`` is a strict total order consistent with
    ``precedes`` on every family's degree sequence."""
    degrees = graph.degrees
    keys = degree_order_keys(degrees)
    assert len(set(keys.tolist())) == keys.shape[0]  # strict: no ties
    n = degrees.shape[0]
    rng = np.random.default_rng(int(degrees.sum()) + n)
    for _ in range(min(64, n * n)):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v:
            assert not precedes(u, v, degrees)
        else:
            assert (keys[u] < keys[v]) == precedes(u, v, degrees)


@needs_shm
@pytest.mark.parametrize("family", ["er", "power_law", "star", "path", "duplicates"])
def test_pool_executor_end_to_end(family, tmp_path):
    """One real process-pool orientation per family: orient_graph with
    executor='processes' equals the reference, byte for byte."""
    rng = np.random.default_rng(99)
    n = 60
    if family == "er":
        iu, iv = np.triu_indices(n, k=1)
        keep = rng.random(iu.shape[0]) < 0.15
        graph = CSRGraph.from_edgelist(
            EdgeList(np.stack([iu[keep], iv[keep]], axis=1), n)
        )
    elif family == "power_law":
        graph = CSRGraph.from_edgelist(
            power_law_degree_graph(n, exponent=2.1, min_degree=1, seed=4)
        )
    elif family == "star":
        graph = CSRGraph.from_edgelist(
            EdgeList(np.array([[0, i] for i in range(1, n)], dtype=np.int64), n)
        )
    elif family == "path":
        graph = CSRGraph.from_edgelist(
            EdgeList(np.array([[i, i + 1] for i in range(n - 1)], dtype=np.int64), n)
        )
    else:
        src = rng.integers(0, n, size=200)
        dst = rng.integers(0, n, size=200)
        edges = np.stack([src, dst], axis=1)
        graph = CSRGraph.from_edgelist(
            EdgeList(np.concatenate([edges, edges[:50]]).astype(np.int64), n)
        )
    device = BlockDevice(tmp_path / "disk", block_size=512)
    gf = write_graph(device, "g", graph)
    expected = orient_csr(graph)
    publication = publish_input_graph(gf)
    try:
        result = orient_graph(
            gf, num_workers=3, executor="processes", shared=publication.descriptor
        )
    finally:
        publication.unlink()
    assert result.executor == "processes"
    assert result.oriented.to_csr() == expected
