"""Property-based tests for the degree-based order and orientation."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.orientation import degree_order_keys, orient_csr, precedes
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_vertices: int = 30):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    max_possible = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(100, max_possible)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    if m == 0:
        return CSRGraph.empty(n)
    rng = np.random.default_rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    chosen = rng.choice(iu.shape[0], size=min(m, iu.shape[0]), replace=False)
    return CSRGraph.from_edgelist(EdgeList(np.stack([iu[chosen], iv[chosen]], axis=1), n))


@given(degrees=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
@settings(**SETTINGS)
def test_degree_order_is_strict_total_order(degrees):
    degrees = np.array(degrees, dtype=np.int64)
    n = degrees.shape[0]
    keys = degree_order_keys(degrees)
    # antisymmetry + totality: exactly one of u≺v, v≺u for u != v
    for u in range(n):
        for v in range(n):
            if u == v:
                assert not precedes(u, v, degrees)
            else:
                assert precedes(u, v, degrees) != precedes(v, u, degrees)
                assert (keys[u] < keys[v]) == precedes(u, v, degrees)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_orientation_keeps_each_edge_once(graph):
    oriented = orient_csr(graph)
    assert oriented.num_edges == graph.num_undirected_edges
    undirected = {frozenset(e) for e in graph.iter_edges()}
    oriented_edges = list(oriented.iter_edges())
    assert {frozenset(e) for e in oriented_edges} == undirected
    # no edge stored in both directions
    as_tuples = set(oriented_edges)
    assert all((v, u) not in as_tuples for u, v in as_tuples)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_orientation_respects_degree_order(graph):
    oriented = orient_csr(graph)
    degrees = graph.degrees
    for u, v in oriented.iter_edges():
        assert precedes(u, v, degrees)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_orientation_is_acyclic(graph):
    """≺ is a strict total order, so the orientation can have no directed cycle."""
    oriented = orient_csr(graph)
    keys = degree_order_keys(graph.degrees)
    # topological consistency: every edge strictly increases the key
    for u, v in oriented.iter_edges():
        assert keys[u] < keys[v]


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_out_plus_in_degrees_equal_undirected_degrees(graph):
    oriented = orient_csr(graph)
    out_deg = oriented.degrees
    in_deg = np.zeros(graph.num_vertices, dtype=np.int64)
    if oriented.num_edges:
        np.add.at(in_deg, oriented.indices, 1)
    np.testing.assert_array_equal(out_deg + in_deg, graph.degrees)


@given(graph=random_graphs())
@settings(**SETTINGS)
def test_oriented_adjacency_stays_sorted_and_simple(graph):
    oriented = orient_csr(graph)
    oriented.check_sorted_adjacency()
    oriented.check_simple()
