"""Property tests: GraphDelta vs the full-recompute oracle.

The contract of :class:`~repro.analytics.delta.GraphDelta` is exact
equality with a from-scratch ``truss_decomposition`` of the mutated
graph -- not approximate, not "equivalent up to peel order".  The suite
drives random insert/delete batches (including no-op, duplicate, and
self-inverse batches) over arbitrary random graphs and the named graph
families, always with ``verify=True`` so the delta path re-checks itself
against the oracle inline, then pins the result fields again here.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analytics import GraphDelta, truss_decomposition
from repro.analytics.truss import canonical_edges
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    planar_grid,
    power_law_degree_graph,
    ring_graph,
    watts_strogatz,
)

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_batch(draw, max_vertices: int = 24, max_extra_edges: int = 90):
    """A random simple graph plus a random mutation batch over it.

    The batch mixes present and absent edges on both sides so no-op
    deletions/insertions, duplicates, and delete+insert overlaps all get
    generated.
    """
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    max_possible = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(max_extra_edges, max_possible)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    chosen = rng.choice(iu.shape[0], size=min(m, iu.shape[0]), replace=False)
    edges = np.stack([iu[chosen], iv[chosen]], axis=1)
    graph = CSRGraph.from_edgelist(EdgeList(edges, n))

    num_ins = draw(st.integers(min_value=0, max_value=8))
    num_del = draw(st.integers(min_value=0, max_value=8))
    pool = np.stack([iu, iv], axis=1)
    ins = pool[rng.integers(0, pool.shape[0], size=num_ins)]
    dels = pool[rng.integers(0, pool.shape[0], size=num_del)]
    # duplicates within a batch are part of the contract
    if num_ins and draw(st.booleans()):
        ins = np.concatenate([ins, ins[:1]])
    if num_del and draw(st.booleans()):
        dels = np.concatenate([dels, dels[:1]])
    return graph, ins, dels


def _check_against_oracle(applied):
    oracle = truss_decomposition(applied.graph)
    np.testing.assert_array_equal(applied.truss.edges, oracle.edges)
    np.testing.assert_array_equal(applied.truss.support, oracle.support)
    np.testing.assert_array_equal(applied.truss.trussness, oracle.trussness)
    assert applied.truss.num_vertices == oracle.num_vertices


@given(case=graph_and_batch())
@settings(**SETTINGS)
def test_random_batch_matches_full_recompute(case):
    graph, ins, dels = case
    prev = truss_decomposition(graph, keep_triangles=True)
    applied = GraphDelta(insertions=ins, deletions=dels).apply(
        graph, prev=prev, verify=True
    )
    _check_against_oracle(applied)


@given(case=graph_and_batch())
@settings(**SETTINGS)
def test_self_inverse_batch_round_trips(case):
    """delete(B) then insert(realised B) restores the graph exactly."""
    graph, _, dels = case
    prev = truss_decomposition(graph, keep_triangles=True)
    removed = GraphDelta(deletions=dels).apply(graph, prev=prev, verify=True)
    restored = GraphDelta(insertions=removed.deleted).apply(
        removed.graph, prev=removed.truss, supports=removed.sink, verify=True
    )
    np.testing.assert_array_equal(restored.truss.edges, prev.edges)
    np.testing.assert_array_equal(restored.truss.trussness, prev.trussness)
    np.testing.assert_array_equal(restored.truss.support, prev.support)


@given(case=graph_and_batch())
@settings(**SETTINGS)
def test_noop_batch_is_identity(case):
    """Inserting present edges and deleting absent ones changes nothing."""
    graph, _, _ = case
    present = canonical_edges(graph)
    n = graph.num_vertices
    key = present[:, 0] * np.int64(n) + present[:, 1] if present.shape[0] else None
    iu, iv = np.triu_indices(n, k=1)
    all_keys = iu * np.int64(n) + iv
    absent_mask = (
        ~np.isin(all_keys, key) if key is not None else np.ones_like(all_keys, bool)
    )
    absent = np.stack([iu[absent_mask], iv[absent_mask]], axis=1)

    prev = truss_decomposition(graph, keep_triangles=True)
    applied = GraphDelta(
        insertions=present[:4], deletions=absent[:4]
    ).apply(graph, prev=prev, verify=True)
    assert applied.touched_edges == 0
    assert applied.replayed_levels == 0
    np.testing.assert_array_equal(applied.truss.trussness, prev.trussness)
    np.testing.assert_array_equal(applied.truss.support, prev.support)


@pytest.mark.parametrize("seed", range(5))
def test_erdos_renyi_family(seed):
    rng = np.random.default_rng(seed)
    graph = CSRGraph.from_edgelist(
        erdos_renyi(int(rng.integers(20, 70)), float(rng.uniform(0.1, 0.3)), seed=seed)
    )
    edges = canonical_edges(graph)
    prev = truss_decomposition(graph, keep_triangles=True)
    pick = rng.choice(edges.shape[0], size=min(6, edges.shape[0]), replace=False)
    applied = GraphDelta(
        deletions=edges[pick], insertions=[(0, graph.num_vertices - 1)]
    ).apply(graph, prev=prev, verify=True)
    _check_against_oracle(applied)


@pytest.mark.parametrize("seed", range(3))
def test_power_law_family(seed):
    graph = CSRGraph.from_edgelist(
        power_law_degree_graph(
            200, exponent=2.2, min_degree=2, max_degree=30, seed=seed
        )
    )
    edges = canonical_edges(graph)
    rng = np.random.default_rng(seed)
    prev = truss_decomposition(graph, keep_triangles=True)
    pick = rng.choice(edges.shape[0], size=8, replace=False)
    applied = GraphDelta(deletions=edges[pick]).apply(graph, prev=prev, verify=True)
    _check_against_oracle(applied)


@pytest.mark.parametrize(
    "edges",
    [
        complete_graph(7),
        ring_graph(9),
        planar_grid(4, 5, diagonals=True),
        watts_strogatz(30, 4, 0.2, seed=1),
    ],
    ids=["complete", "ring", "grid", "watts_strogatz"],
)
def test_structured_families(edges):
    graph = CSRGraph.from_edgelist(edges)
    canon = canonical_edges(graph)
    prev = truss_decomposition(graph, keep_triangles=True)
    applied = GraphDelta(deletions=canon[::3]).apply(graph, prev=prev, verify=True)
    _check_against_oracle(applied)
    # and the inverse restores the family graph
    restored = GraphDelta(insertions=applied.deleted).apply(
        applied.graph, prev=applied.truss, supports=applied.sink, verify=True
    )
    np.testing.assert_array_equal(restored.truss.trussness, prev.trussness)
