"""Unit tests for the compiled-kernel dispatch layer.

The contract under test: selection (env var, config knob, explicit
activation), graceful degradation (unavailable backend -> numpy with a
RuntimeWarning; a single failing kernel -> dropped from the registry while
the rest of the tier stays on), probe caching, and the warm-JIT hygiene
guarantee that a compiled kernel's first and second calls return identical
results (compilation must affect wall clock only, never values).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import kernel_backend, kernels
from repro.core.config import PDTLConfig
from repro.errors import ConfigurationError

_COMPILED_OK, _COMPILED_DETAIL = kernel_backend.compiled_available()


@pytest.fixture(autouse=True)
def restore_dispatch_state():
    """Snapshot and restore every module-level knob the tests poke."""
    saved = (
        kernel_backend._requested,
        kernel_backend._resolved,
        dict(kernel_backend._probe_cache),
        dict(kernel_backend._registry_cache),
        set(kernel_backend._warned),
        dict(kernels._ACTIVE_IMPLS),
        kernels._BACKEND_READY,
    )
    yield
    (
        kernel_backend._requested,
        kernel_backend._resolved,
        probe,
        registry,
        warned,
        impls,
        ready,
    ) = saved
    kernel_backend._probe_cache.clear()
    kernel_backend._probe_cache.update(probe)
    kernel_backend._registry_cache.clear()
    kernel_backend._registry_cache.update(registry)
    kernel_backend._warned.clear()
    kernel_backend._warned.update(warned)
    kernels._ACTIVE_IMPLS.clear()
    kernels._ACTIVE_IMPLS.update(impls)
    kernels._BACKEND_READY = ready


class TestSelection:
    def test_numpy_always_available(self):
        assert kernel_backend.backend_available("numpy") == (True, "")

    def test_unknown_backend_probe(self):
        ok, detail = kernel_backend.backend_available("fortran")
        assert not ok and "fortran" in detail

    def test_activate_numpy_clears_registry(self):
        assert kernel_backend.activate("numpy") == "numpy"
        assert kernels._ACTIVE_IMPLS == {}
        assert kernel_backend.active_backend() == "numpy"
        assert kernel_backend.fused("mgt_block_scan") is None

    def test_activate_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            kernel_backend.activate("cython")
        with pytest.raises(ConfigurationError):
            kernel_backend.ensure("cython")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("KERNEL_BACKEND", "numpy")
        kernels._BACKEND_READY = False
        kernel_backend._requested = None
        kernel_backend._resolved = None
        assert kernel_backend.initialize_default() == "numpy"

    def test_invalid_env_var_warns_and_uses_auto(self, monkeypatch):
        monkeypatch.setenv("KERNEL_BACKEND", "turbo")
        kernels._BACKEND_READY = False
        kernel_backend._requested = None
        kernel_backend._resolved = None
        kernel_backend._warned.discard("env:turbo")
        with pytest.warns(RuntimeWarning, match="KERNEL_BACKEND"):
            resolved = kernel_backend.initialize_default()
        assert resolved in ("numpy",) + kernel_backend.COMPILED_BACKENDS

    def test_config_knob_validation(self):
        with pytest.raises(ConfigurationError, match="kernel_backend"):
            PDTLConfig(kernel_backend="cython")
        assert PDTLConfig(kernel_backend="NumPy").kernel_backend == "numpy"
        assert PDTLConfig().kernel_backend == "auto"

    def test_use_restores_previous_tier(self):
        before_request = kernel_backend._requested
        with kernel_backend.use("numpy") as active:
            assert active == "numpy"
            assert kernel_backend.active_backend() == "numpy"
        assert kernel_backend._requested == before_request


class TestGracefulFallback:
    def test_unavailable_backend_falls_back_with_warning(self, monkeypatch):
        def broken(name):
            raise ImportError(f"no module for {name}")

        monkeypatch.setattr(kernel_backend, "_load_backend", broken)
        kernel_backend._probe_cache.clear()
        kernel_backend._registry_cache.clear()
        kernel_backend._warned.discard("fallback:numba")
        with pytest.warns(RuntimeWarning, match="falling back to the numpy tier"):
            assert kernel_backend.activate("numba") == "numpy"
        assert kernels._ACTIVE_IMPLS == {}

    def test_auto_degrades_to_numpy_silently(self, monkeypatch):
        def broken(name):
            raise ImportError("nothing compiled here")

        monkeypatch.setattr(kernel_backend, "_load_backend", broken)
        kernel_backend._probe_cache.clear()
        kernel_backend._registry_cache.clear()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernel_backend.activate("auto") == "numpy"

    def test_probe_failure_is_cached(self, monkeypatch):
        calls = []

        def broken(name):
            calls.append(name)
            raise RuntimeError("boom")

        monkeypatch.setattr(kernel_backend, "_load_backend", broken)
        kernel_backend._probe_cache.clear()
        kernel_backend._registry_cache.clear()
        assert not kernel_backend.backend_available("cffi")[0]
        assert not kernel_backend.backend_available("cffi")[0]
        assert calls == ["cffi"]

    def test_compiled_available_reports_reasons(self, monkeypatch):
        def broken(name):
            raise ImportError(f"{name} missing")

        monkeypatch.setattr(kernel_backend, "_load_backend", broken)
        kernel_backend._probe_cache.clear()
        kernel_backend._registry_cache.clear()
        ok, detail = kernel_backend.compiled_available()
        assert not ok
        for name in kernel_backend.COMPILED_BACKENDS:
            assert name in detail


class TestPartialAvailability:
    def _registry_with_one_broken_kernel(self):
        registry = {
            # a correct implementation: the numpy twin itself
            "sorted_membership": kernels.NUMPY_IMPLS["sorted_membership"],
            # a kernel that cannot even run once
            "count_cone_range": lambda *args: (_ for _ in ()).throw(
                RuntimeError("jit exploded")
            ),
        }
        return registry

    def test_failing_kernel_is_dropped_others_stay(self, monkeypatch):
        monkeypatch.setattr(
            kernel_backend,
            "_load_backend",
            lambda name: self._registry_with_one_broken_kernel(),
        )
        kernel_backend._probe_cache.clear()
        kernel_backend._registry_cache.clear()
        assert kernel_backend.activate("cffi") == "cffi"
        assert "sorted_membership" in kernels._ACTIVE_IMPLS
        assert "count_cone_range" not in kernels._ACTIVE_IMPLS
        # dispatch for the dropped kernel silently uses the numpy body
        indptr = np.array([0, 2, 3, 3], dtype=np.int64)
        indices = np.array([1, 2, 2], dtype=np.int64)
        assert kernels.count_cone_range(indptr, indices) == 1

    def test_disagreeing_kernel_is_dropped(self, monkeypatch):
        def wrong_membership(haystack, queries):
            return np.ones(np.asarray(queries).shape[0], dtype=bool)

        monkeypatch.setattr(
            kernel_backend,
            "_load_backend",
            lambda name: {"sorted_membership": wrong_membership},
        )
        kernel_backend._probe_cache.clear()
        kernel_backend._registry_cache.clear()
        ok, detail = kernel_backend.backend_available("cffi")
        assert not ok  # its only kernel disagreed with the numpy twin
        assert "disagrees" in detail


@pytest.mark.skipif(not _COMPILED_OK, reason=f"no compiled backend: {_COMPILED_DETAIL}")
class TestCompiledTier:
    def test_activation_installs_fused_kernels(self):
        backend = kernel_backend.activate(_COMPILED_DETAIL)
        assert backend == _COMPILED_DETAIL
        for name in kernel_backend.FUSED_KERNELS:
            assert callable(kernel_backend.fused(name)), name

    def test_warmup_reports_kernel_names(self):
        kernel_backend.activate(_COMPILED_DETAIL)
        warmed = kernel_backend.warmup()
        assert "sorted_membership" in warmed
        assert "mgt_block_scan" in warmed

    def test_first_and_second_calls_identical(self):
        """Compilation must never leak into values: a freshly activated
        kernel's first call (which may JIT) and its second call return
        bit-identical results."""
        kernel_backend._registry_cache.pop(_COMPILED_DETAIL, None)
        kernel_backend._probe_cache.pop(_COMPILED_DETAIL, None)
        kernel_backend.activate(_COMPILED_DETAIL)
        rng = np.random.default_rng(11)
        haystack = np.unique(rng.integers(-50, 400, size=300))
        queries = np.sort(rng.integers(-50, 400, size=500))
        first = kernels.sorted_membership(haystack, queries)
        second = kernels.sorted_membership(haystack, queries)
        np.testing.assert_array_equal(first, second)

        indptr = np.array([0, 3, 5, 6, 6], dtype=np.int64)
        indices = np.array([1, 2, 3, 2, 3, 3], dtype=np.int64)
        first = kernels.triangle_range(indptr, indices, 0, 4, want_triples=True)
        second = kernels.triangle_range(indptr, indices, 0, 4, want_triples=True)
        for f, s in zip(first, second):
            np.testing.assert_array_equal(np.asarray(f), np.asarray(s))

    def test_use_context_switches_and_restores(self):
        kernel_backend.activate("numpy")
        assert kernels._ACTIVE_IMPLS == {}
        with kernel_backend.use(_COMPILED_DETAIL) as active:
            assert active == _COMPILED_DETAIL
            assert kernels._ACTIVE_IMPLS
        assert kernel_backend.active_backend() == "numpy"
        assert kernels._ACTIVE_IMPLS == {}
