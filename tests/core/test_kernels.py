"""Unit tests for the shared vectorised intersection kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.reference_impl import (
    count_cone_range_scalar,
    edge_intersections_scalar,
)
from repro.core import kernels
from repro.core.orientation import orient_csr
from repro.errors import PDTLError
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_degree_graph, rmat


@pytest.fixture(scope="module")
def oriented() -> CSRGraph:
    graph = CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=3))
    return orient_csr(graph)


class TestPackedKeys:
    def test_pack_is_monotone_in_pair_order(self):
        rng = np.random.default_rng(0)
        n = 97
        pairs = rng.integers(0, n, size=(500, 2), dtype=np.int64)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        keys = kernels.packed_keys(pairs[:, 0], pairs[:, 1], n)
        assert np.all(np.diff(keys[order]) >= 0)

    def test_csr_packed_keys_sorted_and_unique(self, oriented):
        keys = kernels.csr_packed_keys(oriented.indptr, oriented.indices)
        assert keys.shape[0] == oriented.num_edges
        assert np.all(np.diff(keys) > 0)  # simple graph: strictly increasing

    def test_csr_packed_keys_roundtrip(self, oriented):
        n = oriented.num_vertices
        keys = kernels.csr_packed_keys(oriented.indptr, oriented.indices)
        np.testing.assert_array_equal(keys % n, oriented.indices)
        np.testing.assert_array_equal(keys // n, oriented.edge_sources())

    def test_overflow_boundary(self):
        """``num_vertices`` beyond the int64 packing limit must raise, not wrap.

        At ``n = MAX_PACKABLE_VERTICES`` the largest key ``n**2 - 1`` still
        fits int64 and the packing stays monotone; at ``n + 1`` the products
        would silently wrap negative and break every sorted-key membership
        test built on them.
        """
        n = kernels.MAX_PACKABLE_VERTICES
        assert n * n - 1 <= np.iinfo(np.int64).max
        assert (n + 1) * (n + 1) - 1 > np.iinfo(np.int64).max
        top = np.array([n - 1], dtype=np.int64)
        keys = kernels.packed_keys(top, top, n)
        assert keys[0] == n * n - 1  # the extreme key, computed without wrap
        with pytest.raises(PDTLError, match="num_vertices"):
            kernels.packed_keys(top, top, n + 1)

    def test_overflow_message_names_the_limit(self):
        indices = np.array([0], dtype=np.int64)
        with pytest.raises(PDTLError, match=str(kernels.MAX_PACKABLE_VERTICES)):
            kernels.packed_keys(indices, indices, kernels.MAX_PACKABLE_VERTICES + 12345)


class TestSortedMembership:
    def test_matches_isin(self):
        rng = np.random.default_rng(1)
        haystack = np.unique(rng.integers(0, 1000, size=300))
        queries = rng.integers(0, 1000, size=500)
        np.testing.assert_array_equal(
            kernels.sorted_membership(haystack, queries),
            np.isin(queries, haystack),
        )

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        some = np.array([1, 2, 3], dtype=np.int64)
        assert kernels.sorted_membership(empty, some).sum() == 0
        assert kernels.sorted_membership(some, empty).shape == (0,)

    def test_query_beyond_last_element(self):
        haystack = np.array([1, 5, 9], dtype=np.int64)
        queries = np.array([9, 10, 100], dtype=np.int64)
        np.testing.assert_array_equal(
            kernels.sorted_membership(haystack, queries), [True, False, False]
        )


class TestSegmentGather:
    def test_matches_manual_concatenation(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 100, size=200)
        starts = np.array([0, 50, 10, 199], dtype=np.int64)
        lengths = np.array([5, 0, 7, 1], dtype=np.int64)
        values, owners = kernels.segment_gather(data, starts, lengths)
        expected = np.concatenate(
            [data[s : s + l] for s, l in zip(starts, lengths)]
        )
        np.testing.assert_array_equal(values, expected)
        np.testing.assert_array_equal(
            owners, np.repeat(np.arange(4), lengths)
        )

    def test_all_empty_segments(self):
        values, owners = kernels.segment_gather(
            np.arange(10), np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64)
        )
        assert values.shape == (0,)
        assert owners.shape == (0,)


class TestMergeIntersect:
    def test_merge_matches_numpy_sort(self):
        rng = np.random.default_rng(3)
        a = np.sort(rng.integers(0, 50, size=40))
        b = np.sort(rng.integers(0, 50, size=25))
        np.testing.assert_array_equal(
            kernels.merge_sorted(a, b), np.sort(np.concatenate([a, b]), kind="stable")
        )

    def test_merge_is_stable_on_ties(self):
        # with all-equal keys, a's elements must land before b's
        a = np.zeros(3, dtype=np.int64)
        b = np.zeros(2, dtype=np.int64)
        merged = kernels.merge_sorted(a, b)
        assert merged.shape == (5,)

    def test_merge_empty(self):
        a = np.array([1, 3], dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(kernels.merge_sorted(a, empty), a)
        np.testing.assert_array_equal(kernels.merge_sorted(empty, a), a)

    def test_intersect_matches_intersect1d(self):
        rng = np.random.default_rng(4)
        a = np.unique(rng.integers(0, 60, size=50))
        b = np.unique(rng.integers(0, 60, size=50))
        np.testing.assert_array_equal(
            kernels.intersect_sorted(a, b), np.intersect1d(a, b)
        )


class TestVertexBatches:
    def test_batches_cover_range_exactly(self, oriented):
        n = oriented.num_vertices
        ranges = list(kernels.iter_vertex_batches(oriented.indptr, 0, n, 64))
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (a, b), (c, _) in zip(ranges, ranges[1:]):
            assert b == c
            assert a < b

    def test_batch_entry_bound_respected(self, oriented):
        max_entries = 64
        for lo, hi in kernels.iter_vertex_batches(oriented.indptr, 0, oriented.num_vertices, max_entries):
            entries = int(oriented.indptr[hi] - oriented.indptr[lo])
            # a batch may exceed the bound only when it is a single vertex
            assert entries <= max_entries or hi - lo == 1

    def test_invalid_batch_entries(self, oriented):
        with pytest.raises(ValueError):
            list(kernels.iter_vertex_batches(oriented.indptr, 0, 1, 0))


class TestTriangleRange:
    def test_matches_scalar_reference_on_full_range(self, oriented):
        expected = count_cone_range_scalar(
            oriented.indptr, oriented.indices, 0, oriented.num_vertices
        )
        count, ops = kernels.triangle_range(
            oriented.indptr, oriented.indices, 0, oriented.num_vertices
        )
        assert count == expected
        assert ops >= oriented.num_edges

    def test_matches_scalar_reference_on_subranges(self, oriented):
        n = oriented.num_vertices
        for lo, hi in ((0, n // 3), (n // 3, n // 2), (n // 2, n)):
            expected = count_cone_range_scalar(oriented.indptr, oriented.indices, lo, hi)
            count, _ = kernels.triangle_range(oriented.indptr, oriented.indices, lo, hi)
            assert count == expected, (lo, hi)

    def test_count_independent_of_batching(self, oriented):
        full = kernels.count_cone_range(oriented.indptr, oriented.indices)
        for batch in (7, 64, 1 << 20):
            assert (
                kernels.count_cone_range(
                    oriented.indptr, oriented.indices, batch_entries=batch
                )
                == full
            )

    def test_triples_are_real_triangles(self, oriented):
        cones, vs, ws, _ = kernels.triangle_range(
            oriented.indptr, oriented.indices, 0, oriented.num_vertices, want_triples=True
        )
        count, _ = kernels.triangle_range(
            oriented.indptr, oriented.indices, 0, oriented.num_vertices
        )
        assert cones.shape[0] == count
        for u, v, w in zip(cones[:50], vs[:50], ws[:50]):
            assert oriented.has_edge(int(u), int(v))
            assert oriented.has_edge(int(u), int(w))
            assert oriented.has_edge(int(v), int(w))

    def test_empty_range(self, oriented):
        count, ops = kernels.triangle_range(oriented.indptr, oriented.indices, 0, 0)
        assert count == 0 and ops == 0


class TestEdgeIntersections:
    def test_matches_scalar_reference(self, oriented):
        us = oriented.edge_sources()
        vs = oriented.indices
        expected = edge_intersections_scalar(oriented.indptr, oriented.indices, us, vs)
        assert kernels.edge_intersections(oriented.indptr, oriented.indices, us, vs) == expected

    def test_per_edge_counts_sum_to_total(self, oriented):
        us = oriented.edge_sources()
        vs = oriented.indices
        per_edge = kernels.edge_intersections(
            oriented.indptr, oriented.indices, us, vs, per_edge=True
        )
        total = kernels.edge_intersections(oriented.indptr, oriented.indices, us, vs)
        assert int(per_edge.sum()) == total

    def test_precomputed_keys_equivalent(self, oriented):
        us = oriented.edge_sources()
        vs = oriented.indices
        keys = kernels.csr_packed_keys(oriented.indptr, oriented.indices)
        assert kernels.edge_intersections(
            oriented.indptr, oriented.indices, us, vs, csr_keys=keys
        ) == kernels.edge_intersections(oriented.indptr, oriented.indices, us, vs)


def test_power_law_graph_counts_match_reference():
    graph = CSRGraph.from_edgelist(
        power_law_degree_graph(400, exponent=2.3, min_degree=2, max_degree=50, seed=9)
    )
    oriented = orient_csr(graph)
    expected = count_cone_range_scalar(
        oriented.indptr, oriented.indices, 0, oriented.num_vertices
    )
    assert kernels.count_cone_range(oriented.indptr, oriented.indices) == expected
