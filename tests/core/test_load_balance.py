"""Unit tests for edge-range splitting (naive and load-balanced)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.load_balance import (
    EdgeRange,
    balanced_split,
    naive_split,
    ranges_cover_exactly,
    split_edges,
)
from repro.core.orientation import orient_csr
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


class TestNaiveSplit:
    def test_covers_exactly(self):
        ranges = naive_split(100, num_nodes=2, procs_per_node=3)
        assert len(ranges) == 6
        assert ranges_cover_exactly(ranges, 100)

    def test_sizes_differ_by_at_most_one(self):
        ranges = naive_split(100, num_nodes=1, procs_per_node=7)
        sizes = [r.num_edges for r in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_node_and_proc_assignment(self):
        ranges = naive_split(40, num_nodes=2, procs_per_node=2)
        assert [(r.node_index, r.proc_index) for r in ranges] == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]

    def test_more_processors_than_edges(self):
        ranges = naive_split(3, num_nodes=1, procs_per_node=8)
        assert ranges_cover_exactly(ranges, 3)
        assert sum(r.num_edges for r in ranges) == 3

    def test_zero_edges(self):
        ranges = naive_split(0, num_nodes=2, procs_per_node=2)
        assert ranges_cover_exactly(ranges, 0)

    def test_contains(self):
        r = EdgeRange(0, 0, 10, 20)
        assert 10 in r and 19 in r
        assert 20 not in r and 9 not in r


class TestBalancedSplit:
    @pytest.fixture
    def oriented_degrees(self):
        g = CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=0))
        oriented = orient_csr(g)
        out_degrees = oriented.degrees
        in_degrees = g.degrees - out_degrees
        return g, out_degrees, in_degrees

    def test_covers_exactly(self, oriented_degrees):
        g, out_deg, in_deg = oriented_degrees
        ranges = balanced_split(out_deg, in_deg, num_nodes=2, procs_per_node=4)
        assert ranges_cover_exactly(ranges, int(out_deg.sum()))

    def test_balances_in_degree_weight(self, oriented_degrees):
        g, out_deg, in_deg = oriented_degrees
        parts = 8
        ranges = balanced_split(out_deg, in_deg, num_nodes=1, procs_per_node=parts)
        # compute per-range weight (in-degree of the source vertex of each edge)
        offsets = np.concatenate([[0], np.cumsum(out_deg)])
        edge_weights = np.repeat(in_deg, out_deg).astype(np.float64)
        totals = [edge_weights[r.start : r.stop].sum() for r in ranges]
        mean = np.mean([t for t in totals if t > 0])
        # balanced split should keep every non-empty part within 3x of the mean
        assert max(totals) <= 3 * mean + 1

    def test_better_than_naive_on_skewed_input(self):
        # construct a pathological weight distribution: all in-degree mass on
        # the first few vertices
        out_degrees = np.full(100, 10, dtype=np.int64)
        in_degrees = np.zeros(100, dtype=np.int64)
        in_degrees[:5] = 1000
        balanced = balanced_split(out_degrees, in_degrees, 1, 4)
        naive = naive_split(int(out_degrees.sum()), 1, 4)
        edge_weights = np.repeat(in_degrees, out_degrees).astype(float)

        def max_weight(ranges):
            return max(edge_weights[r.start : r.stop].sum() for r in ranges)

        assert max_weight(balanced) < max_weight(naive)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            balanced_split(np.ones(3), np.ones(4), 1, 2)

    def test_zero_edges(self):
        ranges = balanced_split(np.zeros(5, dtype=np.int64), np.zeros(5, dtype=np.int64), 2, 2)
        assert ranges_cover_exactly(ranges, 0)

    def test_single_processor_gets_everything(self, oriented_degrees):
        _, out_deg, in_deg = oriented_degrees
        ranges = balanced_split(out_deg, in_deg, 1, 1)
        assert len(ranges) == 1
        assert ranges[0].start == 0
        assert ranges[0].stop == int(out_deg.sum())


class TestSplitEdgesDispatch:
    def test_dispatches_to_naive_without_degrees(self):
        ranges = split_edges(50, 1, 5, load_balanced=True)
        sizes = [r.num_edges for r in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_dispatches_to_balanced_with_degrees(self):
        out_degrees = np.array([10, 10, 10, 10], dtype=np.int64)
        in_degrees = np.array([100, 0, 0, 0], dtype=np.int64)
        balanced = split_edges(
            40, 1, 2, out_degrees=out_degrees, in_degrees=in_degrees, load_balanced=True
        )
        naive = split_edges(
            40, 1, 2, out_degrees=out_degrees, in_degrees=in_degrees, load_balanced=False
        )
        assert [r.num_edges for r in naive] == [20, 20]
        assert [r.num_edges for r in balanced] != [20, 20]

    def test_ranges_cover_exactly_helper(self):
        good = [EdgeRange(0, 0, 0, 5), EdgeRange(0, 1, 5, 9)]
        assert ranges_cover_exactly(good, 9)
        gap = [EdgeRange(0, 0, 0, 4), EdgeRange(0, 1, 5, 9)]
        assert not ranges_cover_exactly(gap, 9)
        short = [EdgeRange(0, 0, 0, 4)]
        assert not ranges_cover_exactly(short, 9)
