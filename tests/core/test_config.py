"""Unit tests for PDTLConfig."""

from __future__ import annotations

import pytest

from repro.core.config import PDTLConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = PDTLConfig()
        assert cfg.num_nodes == 1
        assert cfg.procs_per_node == 1
        assert cfg.total_processors == 1

    def test_memory_string_parsing(self):
        cfg = PDTLConfig(memory_per_proc="8MB")
        assert cfg.memory_per_proc == 8 * 1024 * 1024

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(num_nodes=0)

    def test_zero_procs_rejected(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(procs_per_node=0)

    def test_block_larger_than_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(memory_per_proc=1024, block_size=4096)

    def test_invalid_fill_fraction(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(memory_fill_fraction=1.0)
        with pytest.raises(ConfigurationError):
            PDTLConfig(memory_fill_fraction=0.0)

    def test_negative_memory_rejected(self):
        with pytest.raises((ConfigurationError, ValueError)):
            PDTLConfig(memory_per_proc=-5)

    def test_straggler_spec_normalised_from_dict(self):
        cfg = PDTLConfig(
            procs_per_node=4, scheduling="dynamic", straggler_spec={2: 3.0, 0: 1.5}
        )
        assert cfg.straggler_spec == ((0, 1.5), (2, 3.0))
        assert cfg.straggler_factors == {0: 1.5, 2: 3.0}

    def test_straggler_spec_requires_dynamic(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(procs_per_node=2, straggler_spec={0: 2.0})

    def test_straggler_spec_rejects_bad_factors_and_workers(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(procs_per_node=2, scheduling="dynamic", straggler_spec={0: 0.0})
        with pytest.raises(ConfigurationError):
            PDTLConfig(procs_per_node=2, scheduling="dynamic", straggler_spec={9: 2.0})
        with pytest.raises(ConfigurationError):
            PDTLConfig(
                procs_per_node=2,
                scheduling="dynamic",
                straggler_spec=[(0, 2.0), (0, 3.0)],
            )

    def test_host_jitter_must_be_non_negative(self):
        assert PDTLConfig(host_jitter_seconds=0.25).host_jitter_seconds == 0.25
        with pytest.raises(ConfigurationError):
            PDTLConfig(host_jitter_seconds=-0.1)

    def test_shm_flag_defaults_off_and_is_hashable(self):
        assert PDTLConfig().shm is False
        cfg = PDTLConfig(shm=True, scheduling="dynamic", straggler_spec={0: 2.0})
        hash(cfg)  # frozen config stays hashable with the new spec tuples


class TestDerivedQuantities:
    def test_total_processors_and_memory(self):
        cfg = PDTLConfig(num_nodes=3, procs_per_node=4, memory_per_proc=1024 * 1024)
        assert cfg.total_processors == 12
        assert cfg.total_memory == 12 * 1024 * 1024

    def test_window_edges(self):
        cfg = PDTLConfig(memory_per_proc=1024, block_size=512, memory_fill_fraction=0.5)
        assert cfg.window_edges == 64  # 512 bytes / 8

    def test_block_items(self):
        cfg = PDTLConfig(block_size=4096)
        assert cfg.block_items == 512

    def test_single_core_restriction(self):
        cfg = PDTLConfig(num_nodes=4, procs_per_node=8)
        single = cfg.single_core()
        assert single.num_nodes == 1
        assert single.procs_per_node == 1
        assert single.memory_per_proc == cfg.memory_per_proc

    def test_with_cores_nodes_memory(self):
        cfg = PDTLConfig()
        assert cfg.with_cores(8).procs_per_node == 8
        assert cfg.with_nodes(3).num_nodes == 3
        assert cfg.with_memory("2MB").memory_per_proc == 2 * 1024 * 1024

    def test_describe_mentions_parameters(self):
        text = PDTLConfig(num_nodes=2, procs_per_node=3).describe()
        assert "N=2" in text and "P=3" in text

    def test_frozen(self):
        cfg = PDTLConfig()
        with pytest.raises(AttributeError):
            cfg.num_nodes = 5  # type: ignore[misc]
