"""Unit tests for the modified MGT algorithm (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inmemory import forward_count, forward_list
from repro.core.config import PDTLConfig
from repro.core.mgt import MGTWorker, mgt_count
from repro.core.orientation import orient_graph
from repro.core.triangles import CountingSink, ListingSink
from repro.errors import ConfigurationError
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    planar_grid,
    ring_graph,
    rmat,
    watts_strogatz,
)


def oriented_on_disk(device, graph: CSRGraph, name: str = "g"):
    gf = write_graph(device, name, graph)
    return orient_graph(gf, output_name=f"{name}_oriented").oriented


@pytest.mark.parametrize(
    "edgelist,expected",
    [
        (complete_graph(4), 4),
        (complete_graph(6), 20),
        (ring_graph(3), 1),
        (ring_graph(8), 0),
        (EdgeList([(0, 1), (1, 2), (0, 2), (2, 3)]), 1),
        (planar_grid(4, 4, diagonals=True), 18),
    ],
    ids=["K4", "K6", "C3", "C8", "triangle+tail", "grid-diag"],
)
def test_known_triangle_counts(device, edgelist, expected):
    graph = CSRGraph.from_edgelist(edgelist)
    oriented = oriented_on_disk(device, graph)
    assert mgt_count(oriented).triangles == expected


class TestAgainstReference:
    @pytest.mark.parametrize(
        "edgelist",
        [
            rmat(7, edge_factor=8, seed=0),
            rmat(8, edge_factor=4, seed=1),
            erdos_renyi(120, p=0.08, seed=2),
            watts_strogatz(150, k=8, p=0.15, seed=3),
        ],
        ids=["rmat7", "rmat8", "er", "ws"],
    )
    def test_count_matches_forward_algorithm(self, device, edgelist):
        graph = CSRGraph.from_edgelist(edgelist)
        oriented = oriented_on_disk(device, graph)
        assert mgt_count(oriented).triangles == forward_count(graph)

    def test_listing_matches_reference_sets(self, device):
        graph = CSRGraph.from_edgelist(watts_strogatz(80, k=6, p=0.1, seed=5))
        oriented = oriented_on_disk(device, graph)
        sink = ListingSink()
        mgt_count(oriented, sink=sink)
        assert sink.vertex_sets() == forward_list(graph)

    def test_listed_triangles_respect_cone_pivot_order(self, device):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=6))
        oriented = oriented_on_disk(device, graph)
        sink = ListingSink()
        mgt_count(oriented, sink=sink)
        degrees = graph.degrees
        from repro.core.orientation import precedes

        for t in sink.triangles:
            assert precedes(t.cone, t.v, degrees)
            assert precedes(t.v, t.w, degrees)


class TestMemoryWindows:
    def test_small_memory_forces_multiple_iterations(self, device):
        graph = CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=7))
        oriented = oriented_on_disk(device, graph)
        # large memory: single window
        big = PDTLConfig(memory_per_proc=8 * 1024 * 1024, block_size=4096)
        result_big = mgt_count(oriented, big)
        assert result_big.iterations == 1
        # small memory: several windows, same count
        small = PDTLConfig(memory_per_proc=16 * 1024, block_size=512)
        result_small = mgt_count(oriented, small)
        assert result_small.iterations > 1
        assert result_small.triangles == result_big.triangles

    def test_iterations_match_ceiling_formula(self, device):
        graph = CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=8))
        oriented = oriented_on_disk(device, graph)
        config = PDTLConfig(memory_per_proc=32 * 1024, block_size=512)
        result = mgt_count(oriented, config)
        expected = -(-oriented.num_edges // config.window_edges)
        assert result.iterations == expected

    def test_io_grows_with_window_count(self, device):
        graph = CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=9))
        oriented = oriented_on_disk(device, graph)
        one_window = mgt_count(oriented, PDTLConfig(memory_per_proc=8 * 1024 * 1024))
        many_windows = mgt_count(
            oriented, PDTLConfig(memory_per_proc=16 * 1024, block_size=512)
        )
        assert (
            many_windows.io_stats.bytes_read
            > one_window.io_stats.bytes_read
        )

    def test_small_degree_assumption_enforced(self, device):
        # a star graph oriented has one vertex with huge out-degree...
        # actually the hub receives edges; use a complete graph with a tiny
        # memory budget so d*_max exceeds the window.
        graph = CSRGraph.from_edgelist(complete_graph(40))
        oriented = oriented_on_disk(device, graph)
        tiny = PDTLConfig(memory_per_proc=256, block_size=128)
        with pytest.raises(ConfigurationError):
            MGTWorker(oriented, tiny)

    def test_peak_memory_within_budget(self, device):
        graph = CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=10))
        oriented = oriented_on_disk(device, graph)
        config = PDTLConfig(memory_per_proc=128 * 1024, block_size=512)
        result = mgt_count(oriented, config)
        assert result.peak_memory_bytes <= config.memory_per_proc


class TestEdgeRanges:
    def test_ranges_partition_the_count(self, device):
        graph = CSRGraph.from_edgelist(rmat(8, edge_factor=6, seed=11))
        oriented = oriented_on_disk(device, graph)
        config = PDTLConfig(memory_per_proc=1024 * 1024)
        total = mgt_count(oriented, config).triangles

        splits = [0, oriented.num_edges // 3, 2 * oriented.num_edges // 3, oriented.num_edges]
        partial = 0
        for lo, hi in zip(splits[:-1], splits[1:]):
            worker = MGTWorker(oriented, config, range_start=lo, range_stop=hi)
            partial += worker.run().triangles
        assert partial == total

    def test_empty_range(self, device):
        graph = CSRGraph.from_edgelist(complete_graph(5))
        oriented = oriented_on_disk(device, graph)
        worker = MGTWorker(oriented, PDTLConfig(), range_start=3, range_stop=3)
        result = worker.run()
        assert result.triangles == 0
        assert result.iterations == 0

    def test_invalid_range_rejected(self, device):
        graph = CSRGraph.from_edgelist(complete_graph(5))
        oriented = oriented_on_disk(device, graph)
        with pytest.raises(ConfigurationError):
            MGTWorker(oriented, PDTLConfig(), range_start=5, range_stop=2)
        with pytest.raises(ConfigurationError):
            MGTWorker(oriented, PDTLConfig(), range_start=0, range_stop=10**9)

    def test_requires_oriented_graph(self, device):
        graph = CSRGraph.from_edgelist(complete_graph(5))
        gf = write_graph(device, "undirected", graph)
        with pytest.raises(ConfigurationError):
            MGTWorker(gf, PDTLConfig())


class TestDegenerateGraphs:
    def test_empty_graph(self, device):
        oriented = oriented_on_disk(device, CSRGraph.empty(4))
        assert mgt_count(oriented).triangles == 0

    def test_single_edge(self, device):
        graph = CSRGraph.from_edgelist(EdgeList([(0, 1)]))
        oriented = oriented_on_disk(device, graph)
        assert mgt_count(oriented).triangles == 0

    def test_isolated_vertices(self, device):
        graph = CSRGraph.from_edgelist(EdgeList([(0, 1), (1, 2), (0, 2)], num_vertices=10))
        oriented = oriented_on_disk(device, graph)
        assert mgt_count(oriented).triangles == 1

    def test_two_disjoint_triangles(self, device):
        graph = CSRGraph.from_edgelist(
            EdgeList([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        )
        oriented = oriented_on_disk(device, graph)
        assert mgt_count(oriented).triangles == 2


class TestResultAccounting:
    def test_cpu_and_io_seconds_nonnegative(self, device):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=12))
        oriented = oriented_on_disk(device, graph)
        result = mgt_count(oriented)
        assert result.cpu_seconds >= 0.0
        assert result.io_seconds >= 0.0
        assert result.io_stats.blocks_read > 0

    def test_edges_processed_matches_range(self, device):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=13))
        oriented = oriented_on_disk(device, graph)
        result = mgt_count(oriented)
        assert result.edges_processed == oriented.num_edges

    def test_intersections_counted(self, device):
        graph = CSRGraph.from_edgelist(complete_graph(8))
        oriented = oriented_on_disk(device, graph)
        result = mgt_count(oriented)
        assert result.intersections > 0

    def test_counting_sink_default(self, device):
        graph = CSRGraph.from_edgelist(complete_graph(5))
        oriented = oriented_on_disk(device, graph)
        sink = CountingSink()
        result = mgt_count(oriented, sink=sink)
        assert sink.count == result.triangles == 10
